"""Auditing a social process: stop-and-frisk outcomes (Section 4's use case).

The paper extends differential fairness from algorithms to *data*, "to
quantify bias in non-algorithmic (or black box) processes, e.g.
stop-and-frisk policing interactions". This example audits a synthetic
police-stop dataset with a **multiclass** outcome (no action / frisked /
arrested) over intersecting race and gender — the measurement is identical:
epsilon is the worst log probability ratio over all outcomes and group
pairs.

The synthetic counts are constructed so the marginal single-attribute view
understates the disparity at the intersections — the "fairness
gerrymandering" pattern differential fairness is designed to expose.

Run:  python examples/policing_audit.py
"""

from repro import dataset_edf, interpret_epsilon, subset_sweep
from repro.audit import markdown_report
from repro.data.generators import expand_cells_to_table
from repro.metrics import statistical_parity_subgroup_fairness

# (race, gender) -> counts of (no action, frisked, arrested) per 1000 stops.
# Margins are nearly balanced; the intersections are not.
STOP_CELLS = {
    ("W", "M"): [820, 150, 30],
    ("W", "F"): [905, 80, 15],
    ("B", "M"): [610, 310, 80],
    ("B", "F"): [840, 135, 25],
    ("L", "M"): [700, 240, 60],
    ("L", "F"): [870, 110, 20],
}

table = expand_cells_to_table(
    STOP_CELLS,
    attribute_names=["race", "gender"],
    outcome_name="outcome",
    outcome_levels=["no action", "frisked", "arrested"],
)
print(f"{table.n_rows:,} recorded stops, outcomes: "
      f"{sorted(table.value_counts('outcome').items())}\n")

# ---------------------------------------------------------------------
# The intersectional measurement.
# ---------------------------------------------------------------------
result = dataset_edf(table, protected=["race", "gender"], outcome="outcome")
print(result.to_text())
print()
print(interpret_epsilon(result.epsilon).to_text())
print()

# ---------------------------------------------------------------------
# Granularity matters: the sweep.
# ---------------------------------------------------------------------
sweep = subset_sweep(table, protected=["race", "gender"], outcome="outcome")
print(sweep.to_text())
print()
gap = sweep.full_epsilon - max(
    sweep.epsilon("race"), sweep.epsilon("gender")
)
print(
    f"the intersectional epsilon exceeds the worst single-attribute view "
    f"by {gap:.3f}:\nmeasuring race or gender alone understates the "
    f"disparity Black and Latino men face.\n"
)

# ---------------------------------------------------------------------
# The Kearns et al. comparison: mass-weighted subgroup violations.
# ---------------------------------------------------------------------
groups = list(zip(table.column("race").to_list(), table.column("gender").to_list()))
violations = statistical_parity_subgroup_fairness(
    table.column("outcome").to_list(), groups, positive="frisked"
)
print("statistical-parity subgroup fairness (frisk rate vs base rate):")
for violation in violations[:3]:
    print(
        f"  {violation.subgroup}: rate {violation.positive_rate:.3f} vs "
        f"base {violation.base_rate:.3f}, weighted violation "
        f"{violation.violation:.4f}"
    )
print()

# ---------------------------------------------------------------------
# A report an oversight body could file.
# ---------------------------------------------------------------------
report = markdown_report(
    table,
    protected=["race", "gender"],
    outcome="outcome",
    dataset_name="synthetic stop-and-frisk records",
    positive="no action",
)
print(report.split("## Related-work baselines")[0])
