"""The paper's Figure 2 worked example: a test-score threshold mechanism.

Two groups draw test scores from N(10, 1) and N(12, 1); applicants are
hired when the score reaches 10.5. The mechanism is deterministic, yet it
has a well-defined differential fairness because the randomness of the
*data* enters the definition — epsilon = 2.337, meaning one group is about
ten times as likely as the other to be rejected.

Run:  python examples/hiring_threshold.py
"""

from repro import gaussian_threshold_epsilon, interpret_epsilon, mechanism_epsilon
from repro.core.analytic import paper_worked_example
from repro.distributions import GroupGaussianScores
from repro.mechanisms import ScoreThresholdMechanism

# --- The exact configuration from the paper ------------------------------
example = paper_worked_example()
print(example.to_text())
print()
print(interpret_epsilon(example.epsilon).to_text())
print()

# --- The same measurement by Monte Carlo (Definition 3.1 directly) -------
scores = GroupGaussianScores.paper_worked_example()
mechanism = ScoreThresholdMechanism.paper_worked_example()
sampled = mechanism_epsilon(mechanism, scores, n_samples=200_000, seed=0, exact=False)
print(f"Monte-Carlo epsilon ({200_000:,} samples/group): {sampled.epsilon:.4f}")
print(f"analytic epsilon:                            {example.epsilon:.4f}")
print()

# --- What would fix it? Sweep the threshold ------------------------------
print("threshold sweep (fairness/selectivity trade-off):")
print(f"{'threshold':>10} {'P(hire|1)':>10} {'P(hire|2)':>10} {'epsilon':>8}")
for threshold in (9.0, 10.0, 10.5, 11.0, 12.0):
    swept = gaussian_threshold_epsilon(
        scores, ScoreThresholdMechanism(threshold)
    )
    print(
        f"{threshold:>10.1f} "
        f"{swept.probability((1,), 'yes'):>10.4f} "
        f"{swept.probability((2,), 'yes'):>10.4f} "
        f"{swept.epsilon:>8.4f}"
    )
print()
print(
    "No threshold is fair here: with unequal score distributions, a shared\n"
    "cut-off always treats the groups differently. The paper's position is\n"
    "that when the score gap itself reflects structural oppression, the\n"
    "mechanism — not the threshold — should change."
)
