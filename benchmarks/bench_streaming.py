"""Perf bench: windowed streaming updates vs full recompute.

The streaming audit subsystem's claim is that keeping epsilon current
over a sliding window costs O(touched cells) per ingestion batch — the
window table is never rebuilt. This bench pins that claim: a stream of
synthetic census-like rows is pushed through

* ``full_recompute`` — the one-shot path a cron job would run: on every
  batch, rebuild the window's :class:`Table`, recount the contingency
  tensor, re-estimate, re-measure (``dataset_edf``);
* ``streaming`` — :class:`repro.audit.stream.StreamingAuditor.observe``:
  scatter-add the batch, retract the evicted rows, re-estimate only the
  dirty groups, one batched epsilon call.

Both paths must report **bit-identical** epsilons after every batch (the
incremental path is exact, not approximate); the acceptance target is a
>= 10x speedup for windowed updates at a >= 10k-row window, recorded in
``BENCH_streaming.json`` at the repo root and enforced by a
``@pytest.mark.perf`` guard.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_streaming.py -q
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.audit.stream import StreamingAuditor
from repro.core.empirical import dataset_edf
from repro.tabular.table import Table

REPO_ROOT = Path(__file__).resolve().parent.parent
RECORD_PATH = REPO_ROOT / "BENCH_streaming.json"

PROTECTED = ["gender", "race", "nationality"]
OUTCOME = "income"
NAMES = [*PROTECTED, OUTCOME]
LEVELS = {
    "gender": ["Female", "Male"],
    "race": ["White", "Black", "Asian-Pac-Islander", "Other"],
    "nationality": ["United-States", "Other"],
    "income": ["<=50K", ">50K"],
}

# (window rows, rows per update batch, number of timed batches). The
# acceptance target applies at the >= 10k-row window scale; the batch
# size is a monitoring cadence (epsilon refreshed every 250 arrivals),
# where the baseline's per-batch window rebuild hurts most.
SCALES = [(10_000, 250, 40), (30_000, 1_000, 10)]
TARGET_SCALE = (10_000, 250, 40)
TARGET_SPEEDUP = 10.0

_RESULTS: dict[tuple[int, int, int], dict] = {}


def _stream(n_rows: int, seed: int = 20260728) -> list[tuple[str, str, str, str]]:
    """A deterministic drifting stream: group-dependent outcome rates."""
    rng = np.random.default_rng(seed)
    cells = [rng.integers(len(LEVELS[name]), size=n_rows) for name in PROTECTED]
    # Outcome probability drifts with time and depends on the group mix,
    # so every batch touches many cells and epsilon genuinely moves.
    base = 0.15 + 0.1 * cells[0] + 0.05 * cells[1]
    drift = 0.2 * np.sin(np.linspace(0.0, 6.0, n_rows))
    outcome = rng.random(n_rows) < np.clip(base + drift, 0.02, 0.98)
    return [
        (
            LEVELS["gender"][cells[0][row]],
            LEVELS["race"][cells[1][row]],
            LEVELS["nationality"][cells[2][row]],
            LEVELS["income"][int(outcome[row])],
        )
        for row in range(n_rows)
    ]


def _timed(callable_) -> float:
    start = time.perf_counter()
    callable_()
    return time.perf_counter() - start


def _full_recompute_epsilons(rows, window, batch, n_batches):
    """The baseline: rebuild the whole window per batch."""
    epsilons = []
    for index in range(n_batches):
        upto = window + (index + 1) * batch
        window_rows = rows[upto - window : upto]
        table = Table.from_rows(NAMES, window_rows)
        epsilons.append(
            dataset_edf(table, protected=PROTECTED, outcome=OUTCOME).epsilon
        )
    return epsilons


def _streaming_epsilons(auditor, rows, window, batch, n_batches):
    return [
        auditor.observe(rows[window + index * batch : window + (index + 1) * batch])
        for index in range(n_batches)
    ]


def _primed_auditor(rows, window) -> StreamingAuditor:
    auditor = StreamingAuditor(
        PROTECTED,
        OUTCOME,
        window=window,
        factor_levels=[LEVELS[name] for name in PROTECTED],
        outcome_levels=LEVELS[OUTCOME],
    )
    auditor.observe(rows[:window])
    return auditor


@pytest.mark.perf
@pytest.mark.parametrize("window,batch,n_batches", SCALES)
def test_windowed_updates_beat_full_recompute(window, batch, n_batches):
    rows = _stream(window + batch * n_batches)

    # Correctness first: the incremental epsilons are bit-identical to
    # rebuilding the window from scratch after every batch.
    streaming = _streaming_epsilons(
        _primed_auditor(rows, window), rows, window, batch, n_batches
    )
    recomputed = _full_recompute_epsilons(rows, window, batch, n_batches)
    assert streaming == recomputed

    full_seconds = min(
        _timed(lambda: _full_recompute_epsilons(rows, window, batch, n_batches))
        for _ in range(2)
    )
    # Priming (outside the timing) is re-done per repeat: observe() is
    # stateful, and each timed pass must replay the same batches.
    streaming_seconds = min(
        _timed(
            lambda auditor=_primed_auditor(rows, window): _streaming_epsilons(
                auditor, rows, window, batch, n_batches
            )
        )
        for _ in range(3)
    )

    entry = {
        "window_rows": window,
        "batch_rows": batch,
        "n_batches": n_batches,
        "full_recompute_seconds": full_seconds,
        "streaming_seconds": streaming_seconds,
        "speedup": full_seconds / streaming_seconds,
        "per_batch_streaming_ms": 1000.0 * streaming_seconds / n_batches,
    }
    _RESULTS[(window, batch, n_batches)] = entry

    assert entry["speedup"] > 1.0
    if (window, batch, n_batches) == TARGET_SCALE:
        assert entry["speedup"] >= TARGET_SPEEDUP, (
            f"acceptance target missed: {entry['speedup']:.1f}x < "
            f"{TARGET_SPEEDUP}x at window={window}"
        )


def test_zy_record_monitoring_table(record_table):
    """Render a windowed monitoring timeline into results/."""
    from repro.utils.formatting import render_table

    window, batch, n_batches = TARGET_SCALE
    rows = _stream(window + batch * n_batches)
    auditor = _primed_auditor(rows, window)
    timeline = [(window, auditor.epsilon())]
    for index in range(n_batches):
        epsilon = auditor.observe(
            rows[window + index * batch : window + (index + 1) * batch]
        )
        timeline.append((window + (index + 1) * batch, epsilon))
    record_table(
        "streaming_monitor",
        render_table(
            ["rows seen", "window epsilon"],
            timeline,
            digits=4,
            title=(
                f"Sliding-window differential fairness "
                f"(last {window} rows, batches of {batch})"
            ),
        ),
    )


def test_zz_write_speedup_record():
    """Runs last (file order): persist the trajectory for future PRs."""
    assert _RESULTS, "scale benchmarks did not run"
    record = {
        "benchmark": "bench_streaming",
        "workload": "sliding-window point-epsilon maintenance over a "
        "drifting synthetic census stream: StreamingAuditor.observe "
        "(scatter-add + retract + dirty-group re-estimation + one batched "
        "epsilon call) vs rebuilding the window Table and running "
        "dataset_edf per batch",
        "target": {
            "scale": dict(
                zip(("window_rows", "batch_rows", "n_batches"), TARGET_SCALE)
            ),
            "min_speedup": TARGET_SPEEDUP,
            "baseline": "full_recompute (Table.from_rows + "
            "ContingencyTable.from_table + dataset_edf on every batch)",
        },
        "scales": [_RESULTS[key] for key in sorted(_RESULTS)],
    }
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    target = next(
        entry
        for entry in record["scales"]
        if entry["window_rows"] == TARGET_SCALE[0]
        and entry["batch_rows"] == TARGET_SCALE[1]
    )
    assert target["speedup"] >= TARGET_SPEEDUP
