"""Table 3: differential fairness of logistic regression on Adult, by
which sensitive attributes were used as features.

Paper values (eps, eps - data_eps, error%): see PAPER_TABLE3. Absolute
epsilons on the synthetic features run ~0.2-0.3 above the paper (hard
thresholding compresses small-cell rates more than on the real data); the
*shape* is asserted here: error rates in the ~15% band, adding race raises
epsilon by roughly the paper's margin, withholding all sensitive features
is on the fairness/accuracy frontier, and race-containing feature sets
occupy the top of the epsilon ordering. EXPERIMENTS.md records the full
paper-vs-measured grid.
"""

import pytest

from repro.audit.feature_study import FeatureSelectionStudy
from repro.data.synthetic_adult import OUTCOME, PAPER_TABLE3, PROTECTED
from repro.utils.formatting import render_table

PAPER_ROW_ORDER = [
    (),
    ("nationality",),
    ("race",),
    ("gender",),
    ("gender", "nationality"),
    ("race", "nationality"),
    ("race", "gender"),
    ("race", "gender", "nationality"),
]


@pytest.fixture(scope="module")
def study(adult_full):
    train, test = adult_full
    return FeatureSelectionStudy(
        train, test, protected=PROTECTED, outcome=OUTCOME
    )


@pytest.fixture(scope="module")
def study_result(study):
    return study.run(PAPER_ROW_ORDER)


def test_table3_full_study(benchmark, record_table, study, study_result):
    """The complete eight-configuration experiment (timed once)."""
    result = benchmark.pedantic(
        study.run_configuration, args=((),), rounds=1, iterations=1
    )
    assert result.error_percent < 20.0

    rows = []
    for row in study_result.rows:
        paper_eps, paper_amp, paper_err = next(
            value
            for key, value in PAPER_TABLE3.items()
            if frozenset(key) == frozenset(row.sensitive_used)
        )
        rows.append(
            [
                row.label(),
                paper_eps,
                row.epsilon,
                paper_amp,
                row.amplification,
                paper_err,
                row.error_percent,
            ]
        )
    record_table(
        "table3_feature_study",
        render_table(
            [
                "Sensitive attrs used",
                "paper eps",
                "meas eps",
                "paper amp",
                "meas amp",
                "paper err%",
                "meas err%",
            ],
            rows,
            digits=3,
            title=(
                "Table 3: logistic regression on Adult "
                f"(test data eps = {study_result.data_epsilon:.3f}, paper 2.06)"
            ),
        ),
    )


def test_table3_error_band(benchmark, study_result):
    """All error rates sit in the paper's ~15% band."""
    errors = benchmark(
        lambda: [row.error_percent for row in study_result.rows]
    )
    for error in errors:
        assert 13.0 < error < 17.0


def test_table3_race_raises_epsilon(benchmark, study_result):
    """The paper's headline: using race increases the unfairness epsilon."""

    def race_gap():
        none = study_result.row(()).epsilon
        race = study_result.row(("race",)).epsilon
        return race - none

    gap = benchmark(race_gap)
    paper_gap = PAPER_TABLE3[("race",)][0] - PAPER_TABLE3[()][0]  # 0.51
    assert gap > 0.2
    assert gap == pytest.approx(paper_gap, abs=0.25)


def test_table3_epsilon_ordering(benchmark, study_result):
    """Race-containing feature sets occupy the top of the epsilon order,
    none/nationality the bottom — as in the paper."""

    def ordering():
        return sorted(
            study_result.rows, key=lambda row: row.epsilon
        )

    ordered = benchmark(ordering)
    bottom_two = {frozenset(row.sensitive_used) for row in ordered[:2]}
    assert bottom_two <= {
        frozenset(()),
        frozenset(("nationality",)),
        frozenset(("gender", "nationality")),
        frozenset(("gender",)),
    }
    top_three = [set(row.sensitive_used) for row in ordered[-3:]]
    for used in top_three:
        assert "race" in used


def test_table3_amplification_sign(benchmark, study_result):
    """Most configurations amplify the data's bias (Section 4.1)."""
    amplifying = benchmark(
        lambda: sum(row.amplification > 0 for row in study_result.rows)
    )
    assert amplifying >= 6
