"""Perf bench: the stacked multi-metric sweep vs row-level metric loops.

Section 7 of the paper compares differential fairness against the
related-work definitions; PR 8 routes all of them through one count-based
engine. This bench times producing **every registered fairness metric for
every non-empty attribute subset** (Table-2 coverage x metric plurality)
two ways at p = 4..6 binary attributes:

* ``row_loop`` — the historical ``repro.metrics`` style: per subset, per
  metric, project the raw rows, build one boolean mask per group with a
  Python list comprehension, and take ``flags[mask].mean()`` — the
  O(n * G) per-row path the metric modules used before the count-kernel
  port;
* ``engine`` — :func:`repro.core.sweep.metric_subset_sweep`: marginalise
  the count lattice once, NaN-pad the subsets into one ``(S, G, O)``
  stack, and run each registered kernel once over the whole stack. No
  row is ever touched.

The engine's values are asserted **bit-identical** to the row loop for
every (subset, metric) cell first; speedups land in
``BENCH_metrics.json`` at the repo root. The acceptance target is >= 10x
at p = 6 against the row loop.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_metrics.py -q
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.metrics import DEFAULT_LEVELING_ALPHA, registered_metrics
from repro.core.subsets import all_nonempty_subsets
from repro.core.sweep import metric_subset_sweep
from repro.tabular.crosstab import ContingencyTable
from repro.tabular.table import Table

pytestmark = pytest.mark.perf

REPO_ROOT = Path(__file__).resolve().parent.parent
RECORD_PATH = REPO_ROOT / "BENCH_metrics.json"

# (n_attributes, n_rows); binary attributes, two outcomes. The target is
# the acceptance criterion: >= 10x at p = 6 against the row-level loop.
SCALES = [(4, 1200), (5, 1200), (6, 1500)]
TARGET_SCALE = (6, 1500)
TARGET_SPEEDUP = 10.0

_RESULTS: dict[tuple[int, int], dict] = {}


def _dataset(n_attributes: int, n_rows: int) -> tuple[list[tuple], Table]:
    rng = np.random.default_rng(20260808)
    names = [f"a{index}" for index in range(n_attributes)]
    rows = [
        tuple(str(rng.integers(2)) for _ in names)
        + ("pos" if rng.random() < 0.25 + 0.5 * rng.random() else "neg",)
        for _ in range(n_rows)
    ]
    return rows, Table.from_rows([*names, "y"], rows)


# ----------------------------------------------------------------------
# The historical row-level path: one mask per group per metric.
# ----------------------------------------------------------------------
def _mask_rates(outcomes, groups, positive):
    flags = np.asarray(
        [1.0 if value == positive else 0.0 for value in outcomes]
    )
    levels = sorted(set(groups), key=str)
    return [
        float(flags[np.asarray([g == level for g in groups])].mean())
        for level in levels
    ]


def _row_loop_metrics(outcomes, groups, outcome_levels):
    """All seven registered metrics, each re-masking the rows."""
    positive = outcome_levels[-1]
    values = {}

    rates = _mask_rates(outcomes, groups, positive)
    values["demographic_parity_difference"] = max(rates) - min(rates)

    rates = _mask_rates(outcomes, groups, positive)
    high = max(rates)
    values["demographic_parity_ratio"] = (
        1.0 if high == 0.0 else min(rates) / high
    )

    rates = _mask_rates(outcomes, groups, positive)
    sides = []
    for side_high, side_low in (
        (max(rates), min(rates)),
        (1.0 - min(rates), 1.0 - max(rates)),
    ):
        if side_high == 0.0:
            continue
        sides.append(
            math.inf
            if side_low == 0.0
            else float(np.log(np.float64(side_high) / np.float64(side_low)))
        )
    values["demographic_parity_epsilon"] = max(sides) if sides else 0.0

    flags = np.asarray(
        [1.0 if value == positive else 0.0 for value in outcomes]
    )
    base = float(flags.mean())
    worst = -math.inf
    for level in sorted(set(groups), key=str):
        mask = np.asarray([g == level for g in groups])
        weight = float(mask.sum() / len(groups))
        worst = max(worst, weight * abs(float(flags[mask].mean()) - base))
    values["subgroup_fairness"] = worst

    per_outcome_rates = [
        _mask_rates(outcomes, groups, level) for level in outcome_levels
    ]
    values["worst_case_gap"] = max(
        max(rates) - min(rates) for rates in per_outcome_rates
    )
    values["worst_case_ratio"] = min(
        1.0 if max(rates) == 0.0 else min(rates) / max(rates)
        for rates in per_outcome_rates
    )

    rates = _mask_rates(outcomes, groups, positive)
    alpha = DEFAULT_LEVELING_ALPHA
    values["alpha_intersectional"] = alpha * (max(rates) - min(rates)) + (
        1.0 - alpha
    ) * (1.0 - min(rates))
    return values


def _row_loop_sweep(rows, names, outcome_levels):
    outcomes = [row[-1] for row in rows]
    results = {}
    for subset in all_nonempty_subsets(names):
        indices = [names.index(name) for name in subset]
        groups = [tuple(row[i] for i in indices) for row in rows]
        results[subset] = _row_loop_metrics(outcomes, groups, outcome_levels)
    return results


def _time(callable_, repeats: int = 3) -> float:
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.parametrize("n_attributes,n_rows", SCALES)
def test_engine_beats_the_row_loop(n_attributes, n_rows):
    rows, table = _dataset(n_attributes, n_rows)
    names = [f"a{index}" for index in range(n_attributes)]
    contingency = ContingencyTable.from_table(table, names, "y")

    # Correctness first: every (subset, metric) cell bit-identical.
    sweep = metric_subset_sweep(contingency)
    reference = _row_loop_sweep(rows, names, contingency.outcome_levels)
    assert set(sweep.table) == set(reference)
    for subset, expected in reference.items():
        for metric in registered_metrics():
            engine_value = sweep.value(subset, metric)
            assert engine_value == expected[metric], (subset, metric)

    row_loop_seconds = _time(
        lambda: _row_loop_sweep(rows, names, contingency.outcome_levels),
        repeats=1,
    )
    engine_seconds = _time(lambda: metric_subset_sweep(contingency))

    entry = {
        "n_attributes": n_attributes,
        "n_subsets": 2**n_attributes - 1,
        "n_rows": n_rows,
        "n_metrics": len(registered_metrics()),
        "row_loop_seconds": row_loop_seconds,
        "engine_seconds": engine_seconds,
        "speedup": row_loop_seconds / engine_seconds,
    }
    _RESULTS[(n_attributes, n_rows)] = entry

    assert entry["speedup"] > 1.0
    if (n_attributes, n_rows) == TARGET_SCALE:
        assert entry["speedup"] >= TARGET_SPEEDUP, (
            f"acceptance target missed: {entry['speedup']:.1f}x < "
            f"{TARGET_SPEEDUP}x at {TARGET_SCALE}"
        )


def test_zy_record_metric_table(record_table):
    """Render the target-scale multi-metric sweep table into results/."""
    _, table = _dataset(*TARGET_SCALE)
    names = [f"a{index}" for index in range(TARGET_SCALE[0])]
    sweep = metric_subset_sweep(table, names, "y")
    record_table("metric_subset_sweep", sweep.to_text())


def test_zz_write_speedup_record():
    """Runs last (file order): persist the trajectory for future PRs."""
    assert _RESULTS, "scale benchmarks did not run"
    record = {
        "benchmark": "bench_metrics",
        "workload": "every registered fairness metric for every non-empty "
        "attribute subset: per-subset per-metric row-level mask loops vs "
        "one stacked count-kernel pass over the marginal lattice "
        "(metric_subset_sweep)",
        "target": {
            "scale": dict(zip(("n_attributes", "n_rows"), TARGET_SCALE)),
            "min_speedup": TARGET_SPEEDUP,
            "baseline": "row_loop (per subset, per metric: one boolean "
            "mask per group via Python list comprehension, "
            "flags[mask].mean() per rate — the pre-port repro.metrics "
            "style)",
        },
        "scales": [_RESULTS[key] for key in sorted(_RESULTS)],
    }
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    target = next(
        entry
        for entry in record["scales"]
        if (entry["n_attributes"], entry["n_rows"]) == TARGET_SCALE
    )
    assert target["speedup"] >= TARGET_SPEEDUP
