"""Perf bench: telemetry overhead on the monitoring hot path.

PR 10 instruments ``Monitor.observe`` (stage histograms, row/batch
counters, per-rule timings). The contract is that this bookkeeping is
effectively free: an instrumented monitor must ingest within 10% of an
identical monitor whose instruments are the no-op
:class:`repro.obs.metrics.NullMetricsRegistry`.

Both paths run *without* a durable store or WAL — the pure-compute
observe loop is the worst case for the overhead ratio, since fsync time
would otherwise mask it. Repetitions are interleaved (A/B/A/B...) and
the minimum per path is compared, so machine noise cancels instead of
landing on one side.

Micro costs of the primitives themselves (counter ``inc``, histogram
``observe``, one trace span) are recorded for the trajectory, with no
threshold.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_obs.py -q
"""

from __future__ import annotations

import io
import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.monitor.registry import Monitor, MonitorConfig
from repro.monitor.rules import EpsilonThresholdRule
from repro.obs.metrics import MetricsRegistry, NullMetricsRegistry
from repro.obs.trace import TraceSink, Tracer

REPO_ROOT = Path(__file__).resolve().parent.parent
RECORD_PATH = REPO_ROOT / "BENCH_obs.json"

PROTECTED = ("gender", "race")
OUTCOME = "hired"
LEVELS = {
    "gender": ("Female", "Male"),
    "race": ("White", "Black", "Asian-Pac-Islander", "Other"),
    "hired": ("no", "yes"),
}

BATCH_ROWS = 1_000
N_BATCHES = 25
REPETITIONS = 5
MAX_OVERHEAD_RATIO = 1.10

_RESULTS: dict[str, dict] = {}


def _batches(seed: int = 20260808) -> list[list[tuple[str, str, str]]]:
    rng = np.random.default_rng(seed)
    n_rows = BATCH_ROWS * N_BATCHES
    gender = rng.integers(2, size=n_rows)
    race = rng.integers(4, size=n_rows)
    hired = rng.random(n_rows) < np.clip(0.2 + 0.1 * gender, 0.02, 0.98)
    rows = [
        (
            LEVELS["gender"][gender[row]],
            LEVELS["race"][race[row]],
            LEVELS["hired"][int(hired[row])],
        )
        for row in range(n_rows)
    ]
    return [
        rows[start : start + BATCH_ROWS]
        for start in range(0, n_rows, BATCH_ROWS)
    ]


def _make_monitor(metrics) -> Monitor:
    config = MonitorConfig(
        name="bench",
        protected=PROTECTED,
        outcome=OUTCOME,
        alpha=1.0,
        factor_levels=tuple(LEVELS[column] for column in PROTECTED),
        outcome_levels=LEVELS[OUTCOME],
        rules=(EpsilonThresholdRule(10.0),),  # armed, never fires
    )
    return Monitor(config, metrics=metrics)


def _time_ingest(metrics, batches) -> float:
    monitor = _make_monitor(metrics)
    start = time.perf_counter()
    for batch in batches:
        monitor.observe(batch)
    return time.perf_counter() - start


@pytest.mark.perf
def test_observe_instrumentation_overhead():
    batches = _batches()

    # Telemetry must not change results: identical epsilon either way.
    instrumented_check = _make_monitor(MetricsRegistry())
    null_check = _make_monitor(NullMetricsRegistry())
    for batch in batches[:3]:
        assert (
            instrumented_check.observe(batch).epsilon
            == null_check.observe(batch).epsilon
        )

    instrumented = []
    baseline = []
    for _ in range(REPETITIONS):
        instrumented.append(_time_ingest(MetricsRegistry(), batches))
        baseline.append(_time_ingest(NullMetricsRegistry(), batches))
    best_instrumented = min(instrumented)
    best_baseline = min(baseline)
    ratio = best_instrumented / best_baseline

    rows = BATCH_ROWS * N_BATCHES
    _RESULTS["observe_overhead"] = {
        "batch_rows": BATCH_ROWS,
        "n_batches": N_BATCHES,
        "repetitions": REPETITIONS,
        "instrumented_seconds": best_instrumented,
        "baseline_seconds": best_baseline,
        "instrumented_rows_per_sec": rows / best_instrumented,
        "baseline_rows_per_sec": rows / best_baseline,
        "overhead_ratio": ratio,
        "max_overhead_ratio": MAX_OVERHEAD_RATIO,
    }
    assert ratio <= MAX_OVERHEAD_RATIO, (
        f"instrumented Monitor.observe is {ratio:.3f}x the uninstrumented "
        f"baseline (budget {MAX_OVERHEAD_RATIO:.2f}x): "
        f"{best_instrumented:.4f}s vs {best_baseline:.4f}s"
    )


@pytest.mark.perf
def test_primitive_costs_recorded():
    iterations = 200_000
    registry = MetricsRegistry()
    counter = registry.counter("bench_total")
    histogram = registry.histogram("bench_seconds")

    start = time.perf_counter()
    for _ in range(iterations):
        counter.inc()
    counter_ns = (time.perf_counter() - start) / iterations * 1e9

    start = time.perf_counter()
    for _ in range(iterations):
        histogram.observe(0.001)
    histogram_ns = (time.perf_counter() - start) / iterations * 1e9

    span_iterations = 20_000
    tracer = Tracer(TraceSink(io.StringIO(), max_events=span_iterations))
    start = time.perf_counter()
    for _ in range(span_iterations):
        with tracer.span("bench"):
            pass
    span_ns = (time.perf_counter() - start) / span_iterations * 1e9

    _RESULTS["primitives"] = {
        "counter_inc_ns": counter_ns,
        "histogram_observe_ns": histogram_ns,
        "span_ns": span_ns,
    }
    # Sanity only: a counter update is sub-microsecond territory; if it
    # ever costs more than 50µs something is catastrophically wrong.
    assert counter_ns < 50_000


def test_zz_obs_overhead_record():
    """Runs last (file order): persist the trajectory for future PRs."""
    assert "observe_overhead" in _RESULTS, "overhead benchmark did not run"
    record = {
        "benchmark": "bench_obs",
        "workload": "Monitor.observe over 25x1k-row synthetic batches "
        "(cumulative, alpha=1.0, threshold rule armed, no store/WAL), "
        "full MetricsRegistry instrumentation vs NullMetricsRegistry "
        "baseline; interleaved repetitions, min-of-5 compared",
        "target": {
            "path": "observe_overhead",
            "max_overhead_ratio": MAX_OVERHEAD_RATIO,
        },
    }
    record.update(_RESULTS)
    RECORD_PATH.write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )
    assert _RESULTS["observe_overhead"]["overhead_ratio"] <= MAX_OVERHEAD_RATIO
