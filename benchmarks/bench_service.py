"""Perf bench: monitoring-service ingest throughput, bit-identity first.

The monitoring subsystem's claim is that serving-layer bookkeeping — the
registry's per-monitor locking, the durable audit-history append, and
rule evaluation — does not eat the streaming engine's budget. Two paths
are measured over the same synthetic census-like stream:

* ``registry`` — the in-process hot path a co-located producer uses:
  :meth:`repro.monitor.registry.Monitor.observe` per batch, with the
  durable (fsynced) history store attached and an alert rule armed.
  The acceptance target is sustained ingest of >= 10k rows/sec,
  recorded in ``BENCH_service.json`` and enforced by a
  ``@pytest.mark.perf`` guard.
* ``http`` — the full loopback round trip: JSON-encode each batch, POST
  it to ``/monitors/{name}/observe`` on a live
  :class:`~repro.monitor.service.MonitorService`, parse the response.
  Recorded for the trajectory (no hard threshold: loopback latency is
  hardware noise), together with the overhead ratio vs the registry
  path.

Bit-identity is asserted **unconditionally** on both paths before any
timing: the epsilon reported after every batch — and the final
``/report`` — equals :func:`repro.core.empirical.dataset_edf` on the
concatenated rows.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_service.py -q
"""

from __future__ import annotations

import json
import time
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.core.empirical import dataset_edf
from repro.monitor.registry import MonitorRegistry
from repro.monitor.rules import EpsilonThresholdRule
from repro.monitor.service import MonitorService
from repro.monitor.store import AuditHistoryStore
from repro.tabular.table import Table

REPO_ROOT = Path(__file__).resolve().parent.parent
RECORD_PATH = REPO_ROOT / "BENCH_service.json"

PROTECTED = ["gender", "race", "nationality"]
OUTCOME = "income"
NAMES = [*PROTECTED, OUTCOME]
LEVELS = {
    "gender": ["Female", "Male"],
    "race": ["White", "Black", "Asian-Pac-Islander", "Other"],
    "nationality": ["United-States", "Other"],
    "income": ["<=50K", ">50K"],
}

BATCH_ROWS = 1_000
N_BATCHES = 60  # registry path: 60k rows timed
HTTP_BATCHES = 15  # loopback path: enough to amortise connection setup
TARGET_ROWS_PER_SEC = 10_000.0

_RESULTS: dict[str, dict] = {}


def _stream(n_rows: int, seed: int = 20260728):
    rng = np.random.default_rng(seed)
    cells = [rng.integers(len(LEVELS[name]), size=n_rows) for name in PROTECTED]
    base = 0.2 + 0.1 * cells[0] + 0.04 * cells[1]
    outcome = rng.random(n_rows) < np.clip(base, 0.02, 0.98)
    return [
        (
            LEVELS["gender"][cells[0][row]],
            LEVELS["race"][cells[1][row]],
            LEVELS["nationality"][cells[2][row]],
            LEVELS["income"][int(outcome[row])],
        )
        for row in range(n_rows)
    ]


def _offline_epsilon(rows) -> float:
    return dataset_edf(
        Table.from_rows(NAMES, rows),
        protected=PROTECTED,
        outcome=OUTCOME,
        estimator=1.0,
    ).epsilon


def _make_monitor(tmp_path, name: str):
    registry = MonitorRegistry(
        AuditHistoryStore(tmp_path / f"history-{name}")
    )
    monitor = registry.create(
        name,
        PROTECTED,
        OUTCOME,
        alpha=1.0,
        factor_levels=[LEVELS[column] for column in PROTECTED],
        outcome_levels=LEVELS[OUTCOME],
        rules=[EpsilonThresholdRule(10.0)],  # armed, rarely fires
    )
    return registry, monitor


@pytest.mark.perf
def test_registry_ingest_throughput(tmp_path):
    rows = _stream(BATCH_ROWS * N_BATCHES)
    batches = [
        rows[start : start + BATCH_ROWS]
        for start in range(0, len(rows), BATCH_ROWS)
    ]

    # Correctness first: every per-batch epsilon is bit-identical to the
    # offline audit of the rows ingested so far.
    _, checker = _make_monitor(tmp_path, "check")
    for index, batch in enumerate(batches):
        result = checker.observe(batch)
        assert result.epsilon == _offline_epsilon(
            rows[: (index + 1) * BATCH_ROWS]
        )

    _, monitor = _make_monitor(tmp_path, "timed")
    start = time.perf_counter()
    for batch in batches:
        monitor.observe(batch)
    elapsed = time.perf_counter() - start
    assert monitor.report().epsilon == _offline_epsilon(rows)

    rows_per_sec = len(rows) / elapsed
    _RESULTS["registry"] = {
        "path": "in-process registry (Monitor.observe, durable store, "
        "threshold rule armed)",
        "batch_rows": BATCH_ROWS,
        "n_batches": N_BATCHES,
        "rows": len(rows),
        "seconds": elapsed,
        "rows_per_sec": rows_per_sec,
        "per_batch_ms": 1000.0 * elapsed / N_BATCHES,
    }
    assert rows_per_sec >= TARGET_ROWS_PER_SEC, (
        f"acceptance target missed: {rows_per_sec:,.0f} rows/sec < "
        f"{TARGET_ROWS_PER_SEC:,.0f} through the registry path"
    )


@pytest.mark.perf
@pytest.mark.service
def test_http_ingest_throughput(tmp_path):
    rows = _stream(BATCH_ROWS * HTTP_BATCHES)
    batches = [
        [list(row) for row in rows[start : start + BATCH_ROWS]]
        for start in range(0, len(rows), BATCH_ROWS)
    ]
    registry = MonitorRegistry.open(tmp_path / "data")
    with MonitorService(registry) as service:
        request = urllib.request.Request(
            service.url + "/monitors",
            data=json.dumps(
                {
                    "name": "timed",
                    "protected": PROTECTED,
                    "outcome": OUTCOME,
                    "alpha": 1.0,
                    "factor_levels": [
                        LEVELS[column] for column in PROTECTED
                    ],
                    "outcome_levels": LEVELS[OUTCOME],
                }
            ).encode(),
        )
        assert urllib.request.urlopen(request).status == 201

        start = time.perf_counter()
        for batch in batches:
            request = urllib.request.Request(
                service.url + "/monitors/timed/observe",
                data=json.dumps({"rows": batch}).encode(),
            )
            with urllib.request.urlopen(request) as response:
                assert response.status == 200
                json.loads(response.read())
        elapsed = time.perf_counter() - start

        with urllib.request.urlopen(
            service.url + "/monitors/timed/report"
        ) as response:
            report = json.loads(response.read())
    assert report["epsilon"] == _offline_epsilon(rows)

    _RESULTS["http"] = {
        "path": "end-to-end HTTP loopback (JSON encode + POST /observe + "
        "response parse per batch)",
        "batch_rows": BATCH_ROWS,
        "n_batches": HTTP_BATCHES,
        "rows": len(rows),
        "seconds": elapsed,
        "rows_per_sec": len(rows) / elapsed,
        "per_batch_ms": 1000.0 * elapsed / HTTP_BATCHES,
    }


def test_zz_write_throughput_record():
    """Runs last (file order): persist the trajectory for future PRs."""
    assert "registry" in _RESULTS, "throughput benchmarks did not run"
    registry = _RESULTS["registry"]
    http = _RESULTS.get("http")
    record = {
        "benchmark": "bench_service",
        "workload": "fairness monitoring service ingest: 4-attribute "
        "synthetic census rows in 1k-row batches into one monitor "
        "(cumulative, alpha=1.0, durable history store, alert rule "
        "armed); bit-identity with dataset_edf asserted per batch "
        "before timing",
        "target": {
            "path": "registry",
            "min_rows_per_sec": TARGET_ROWS_PER_SEC,
        },
        "paths": [entry for entry in (registry, http) if entry is not None],
    }
    if http is not None:
        record["http_overhead_ratio"] = (
            registry["rows_per_sec"] / http["rows_per_sec"]
        )
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    assert registry["rows_per_sec"] >= TARGET_ROWS_PER_SEC
