"""Ablation: constructions of Θ (Section 3 of the paper).

The definition permits Θ to be a point estimate, a set of posterior
samples, or a credible region. This bench compares the resulting epsilon
on the synthetic Adult data at two sample sizes: the sup over sampled Θ is
conservative, and the gap closes as the data grows.
"""

import numpy as np
import pytest

from repro.core.bayesian import epsilon_over_sampled_theta, posterior_epsilon
from repro.core.empirical import dataset_edf
from repro.data.synthetic_adult import OUTCOME, PROTECTED
from repro.tabular.crosstab import crosstab
from repro.utils.formatting import render_table


@pytest.fixture(scope="module")
def contingencies(adult_bare_train):
    full = crosstab(adult_bare_train, list(PROTECTED), OUTCOME)
    rng = np.random.default_rng(0)
    small_table = adult_bare_train.take(
        rng.choice(adult_bare_train.n_rows, size=2000, replace=False)
    )
    small = crosstab(small_table, list(PROTECTED), OUTCOME)
    return {"N=2,000": small, "N=32,561": full}


def test_theta_constructions(benchmark, record_table, contingencies):
    def run():
        rows = []
        for name, contingency in contingencies.items():
            point = dataset_edf(contingency, estimator=1.0).epsilon
            posterior = posterior_epsilon(
                contingency, alpha=1.0, n_samples=300, seed=0,
                quantile_levels=(0.05, 0.5, 0.95),
            )
            sup = epsilon_over_sampled_theta(
                contingency, alpha=1.0, n_samples=100, seed=1
            )
            rows.append(
                [
                    name,
                    point,
                    posterior.median,
                    posterior.quantiles[0.95],
                    sup,
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "ablation_theta",
        render_table(
            [
                "data size",
                "point Θ={θ̂}",
                "posterior median",
                "posterior q95",
                "sup over 100 sampled θ",
            ],
            rows,
            digits=4,
            title="Ablation: Θ as point estimate vs posterior samples "
            "(alpha = 1)",
        ),
    )
    for name, point, median, q95, sup in rows:
        # The sup over sampled Θ is conservative relative to the point.
        assert sup >= point - 0.05
        assert q95 >= median
    # Uncertainty shrinks with data: the q95-median gap narrows.
    small_gap = rows[0][3] - rows[0][2]
    large_gap = rows[1][3] - rows[1][2]
    assert large_gap < small_gap


def test_posterior_sampling_cost(benchmark, contingencies):
    """Cost of 100 posterior draws of epsilon on the full data."""
    contingency = contingencies["N=32,561"]
    result = benchmark.pedantic(
        epsilon_over_sampled_theta,
        args=(contingency,),
        kwargs={"alpha": 1.0, "n_samples": 100, "seed": 0},
        rounds=3,
        iterations=1,
    )
    assert result > 0
