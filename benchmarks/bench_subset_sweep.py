"""Perf bench: the one-pass subset-sweep engine vs per-subset loops.

Table 2 of the paper sweeps epsilon-EDF over every non-empty subset of the
protected attributes; the Bayesian companion paper asks for posterior
uncertainty on each. This bench times three ways of producing the full
posterior sweep at p = 4..6 binary attributes:

* ``seed_loop`` — the seed-style implementation: one Monte Carlo run per
  subset with Python loops per draw, per group (``rng.dirichlet``), and
  per outcome (the same historical baseline style as
  ``bench_batch_epsilon.py``);
* ``batched_loop`` — one :func:`posterior_epsilon` call per subset using
  today's PR-1 fused kernel (each subset redraws its own posterior);
* ``engine`` — :func:`posterior_subset_sweep`: one shared gamma draw
  marginalised to every subset through the memoized lattice.

The point sweep (looped ``edf_from_contingency`` vs the batched engine) is
timed too, and the engine's point results are asserted bit-identical to
the loop. Speedups land in ``BENCH_subset_sweep.json`` at the repo root,
alongside ``BENCH_batch_epsilon.json``, so future PRs can track the
trajectory. The acceptance target is >= 10x on the posterior sweep at the
largest scale against the seed-style per-subset loop; the ratio against
the already-batched per-subset loop is recorded as well.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_subset_sweep.py -q
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.bayesian import posterior_epsilon
from repro.core.empirical import edf_from_contingency
from repro.core.subsets import all_nonempty_subsets, subset_sweep
from repro.core.sweep import posterior_subset_sweep
from repro.tabular.crosstab import ContingencyTable

REPO_ROOT = Path(__file__).resolve().parent.parent
RECORD_PATH = REPO_ROOT / "BENCH_subset_sweep.json"

# (n_attributes, n_draws); binary attributes, two outcomes. The target is
# the acceptance criterion: >= 10x on the posterior sweep at p = 6 (>= 4
# attributes, >= 500 draws) against the seed-style per-subset loop.
SCALES = [(4, 500), (5, 500), (6, 500)]
TARGET_SCALE = (6, 500)
TARGET_SPEEDUP = 10.0

_RESULTS: dict[tuple[int, int], dict] = {}


def _contingency(n_attributes: int) -> ContingencyTable:
    rng = np.random.default_rng(20260728)
    counts = rng.integers(1, 80, size=(2,) * n_attributes + (2,)).astype(float)
    return ContingencyTable(
        counts,
        [f"a{index}" for index in range(n_attributes)],
        [("0", "1")] * n_attributes,
        "y",
        ("neg", "pos"),
    )


def _collapsed_cells(contingency: ContingencyTable, subset: tuple[str, ...]) -> int:
    """Intersectional cells aggregated into one cell of ``subset``."""
    collapsed = 1
    for axis, name in enumerate(contingency.factor_names):
        if name not in subset:
            collapsed *= len(contingency.factor_levels[axis])
    return collapsed


# ----------------------------------------------------------------------
# Point sweep: looped per-subset estimator calls vs the one-pass engine.
# ----------------------------------------------------------------------
def _looped_point_sweep(contingency: ContingencyTable, estimator=None):
    results = {}
    for subset in all_nonempty_subsets(contingency.factor_names):
        marginal = contingency.marginalize(list(subset))
        results[subset] = edf_from_contingency(marginal, estimator)
    return results


# ----------------------------------------------------------------------
# Posterior sweep baselines.
# ----------------------------------------------------------------------
def _seed_style_epsilon(matrix: np.ndarray) -> float:
    """The seed implementation's per-outcome Python loop (one draw)."""
    populated = ~np.isnan(matrix).any(axis=1)
    indices = np.flatnonzero(populated)
    if indices.size < 2:
        return 0.0
    sub = matrix[indices]
    best = 0.0
    seen = False
    for column in range(matrix.shape[1]):
        values = sub[:, column]
        if not (values > 0).any():
            continue
        p_high = float(values.max())
        p_low = float(values.min())
        eps = math.inf if p_low == 0.0 else math.log(p_high) - math.log(p_low)
        if not seen or eps > best:
            best = eps
            seen = True
    return best


def _seed_loop_posterior_sweep(
    contingency: ContingencyTable, alpha: float, n_draws: int, seed: int
):
    """Seed-style per-subset Monte Carlo: loops per draw, group, outcome."""
    rng = np.random.default_rng(seed)
    out = {}
    for subset in all_nonempty_subsets(contingency.factor_names):
        marginal = contingency.marginalize(list(subset))
        counts = marginal.group_outcome_matrix()[0]
        concentration = _collapsed_cells(contingency, subset) * alpha
        epsilons = np.empty(n_draws)
        for draw in range(n_draws):
            matrix = np.full(counts.shape, np.nan)
            for group, row in enumerate(counts):
                if row.sum() > 0:
                    matrix[group] = rng.dirichlet(row + concentration)
            epsilons[draw] = _seed_style_epsilon(matrix)
        out[subset] = epsilons
    return out


def _batched_loop_posterior_sweep(
    contingency: ContingencyTable, alpha: float, n_draws: int, seed: int
):
    """Per-subset :func:`posterior_epsilon` with today's fused kernel."""
    rng = np.random.default_rng(seed)
    out = {}
    for subset in all_nonempty_subsets(contingency.factor_names):
        marginal = contingency.marginalize(list(subset))
        out[subset] = posterior_epsilon(
            marginal,
            alpha=_collapsed_cells(contingency, subset) * alpha,
            n_samples=n_draws,
            seed=rng,
        )
    return out


def _time(callable_, repeats: int = 3) -> float:
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.parametrize("n_attributes,n_draws", SCALES)
def test_engine_beats_per_subset_loops(n_attributes, n_draws):
    contingency = _contingency(n_attributes)

    # Correctness first: point results bit-identical, posterior means agree.
    looped_points = _looped_point_sweep(contingency)
    engine_sweep = subset_sweep(contingency)
    for subset, reference in looped_points.items():
        result = engine_sweep.results[subset]
        assert result.epsilon == reference.epsilon
        assert np.array_equal(
            result.probabilities, reference.probabilities, equal_nan=True
        )
    engine_posterior = posterior_subset_sweep(
        contingency, alpha=1.0, n_samples=n_draws, seed=1
    )
    batched = _batched_loop_posterior_sweep(contingency, 1.0, n_draws, seed=2)
    for subset, summary in batched.items():
        engine_summary = engine_posterior.summaries[subset]
        spread = max(summary.quantiles[0.95] - summary.quantiles[0.05], 1e-6)
        assert abs(engine_summary.mean - summary.mean) < spread

    point_looped_seconds = _time(lambda: _looped_point_sweep(contingency))
    point_engine_seconds = _time(lambda: subset_sweep(contingency))

    seed_loop_seconds = _time(
        lambda: _seed_loop_posterior_sweep(contingency, 1.0, n_draws, seed=1),
        repeats=1,
    )
    batched_loop_seconds = _time(
        lambda: _batched_loop_posterior_sweep(contingency, 1.0, n_draws, seed=1),
        repeats=2,
    )
    engine_seconds = _time(
        lambda: posterior_subset_sweep(
            contingency, alpha=1.0, n_samples=n_draws, seed=1
        )
    )

    entry = {
        "n_attributes": n_attributes,
        "n_subsets": 2**n_attributes - 1,
        "n_draws": n_draws,
        "point": {
            "looped_seconds": point_looped_seconds,
            "engine_seconds": point_engine_seconds,
            "speedup": point_looped_seconds / point_engine_seconds,
        },
        "posterior": {
            "seed_loop_seconds": seed_loop_seconds,
            "batched_loop_seconds": batched_loop_seconds,
            "engine_seconds": engine_seconds,
            "speedup_vs_seed_loop": seed_loop_seconds / engine_seconds,
            "speedup_vs_batched_loop": batched_loop_seconds / engine_seconds,
        },
    }
    _RESULTS[(n_attributes, n_draws)] = entry

    assert entry["point"]["speedup"] > 1.0
    assert entry["posterior"]["speedup_vs_batched_loop"] > 1.0
    assert entry["posterior"]["speedup_vs_seed_loop"] > 1.0
    if (n_attributes, n_draws) == TARGET_SCALE:
        speedup = entry["posterior"]["speedup_vs_seed_loop"]
        assert speedup >= TARGET_SPEEDUP, (
            f"acceptance target missed: {speedup:.1f}x < {TARGET_SPEEDUP}x "
            f"at {TARGET_SCALE}"
        )


def test_zy_record_posterior_table(record_table):
    """Render the target-scale posterior sweep table into results/."""
    contingency = _contingency(TARGET_SCALE[0])
    sweep = posterior_subset_sweep(
        contingency, alpha=1.0, n_samples=TARGET_SCALE[1], seed=0
    )
    record_table("subset_sweep_posterior", sweep.to_text())


def test_zz_write_speedup_record():
    """Runs last (file order): persist the trajectory for future PRs."""
    assert _RESULTS, "scale benchmarks did not run"
    record = {
        "benchmark": "bench_subset_sweep",
        "workload": "full Table-2 posterior sweep: per-subset posterior "
        "epsilon distributions, seed-style loops / per-subset batched "
        "kernel / one-pass shared-draw engine (posterior_subset_sweep)",
        "target": {
            "scale": dict(zip(("n_attributes", "n_draws"), TARGET_SCALE)),
            "min_speedup": TARGET_SPEEDUP,
            "baseline": "seed_loop (per-subset Monte Carlo with per-draw/"
            "per-group/per-outcome Python loops, as in bench_batch_epsilon)",
        },
        "scales": [_RESULTS[key] for key in sorted(_RESULTS)],
    }
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    target = next(
        entry
        for entry in record["scales"]
        if (entry["n_attributes"], entry["n_draws"]) == TARGET_SCALE
    )
    assert target["posterior"]["speedup_vs_seed_loop"] >= TARGET_SPEEDUP
