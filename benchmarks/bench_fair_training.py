"""Extension bench: the paper's future-work proposal (Section 8) — use
differential fairness as a regulariser "to automatically balance the
trade-off between fairness and accuracy".

Sweeps the fairness weight of :class:`FairLogisticRegression` on a
subsample of the synthetic Adult data and reports the epsilon/accuracy
frontier, plus the post-processing alternative (per-group mixing toward
the base rate).
"""

import numpy as np
import pytest

from repro.core.empirical import dataset_edf
from repro.core.estimators import DirichletEstimator
from repro.data.synthetic_adult import OUTCOME, POSITIVE, PROTECTED
from repro.learn.fair_logistic import FairLogisticRegression
from repro.learn.metrics import error_rate
from repro.learn.postprocess import GroupMixingPostprocessor
from repro.learn.preprocessing import TableVectorizer
from repro.tabular.column import Column
from repro.utils.formatting import render_table

WEIGHTS = (0.0, 0.05, 0.2, 1.0, 5.0)


@pytest.fixture(scope="module")
def subsampled(adult_full):
    train, test = adult_full
    rng = np.random.default_rng(0)
    train_small = train.take(rng.choice(train.n_rows, 8000, replace=False))
    test_small = test.take(rng.choice(test.n_rows, 6000, replace=False))
    return train_small, test_small


def _prediction_epsilon(test, predictions):
    audit = test.select(list(PROTECTED)).with_column(
        Column.categorical(
            "pred", list(predictions), levels=["<=50K", ">50K"]
        )
    )
    return dataset_edf(
        audit, list(PROTECTED), "pred", DirichletEstimator(1.0)
    ).epsilon


def test_fairness_weight_sweep(benchmark, record_table, subsampled):
    train, test = subsampled
    vectorizer = TableVectorizer(exclude=[OUTCOME, *PROTECTED]).fit(train)
    X_train = vectorizer.transform(train)
    X_test = vectorizer.transform(test)
    y_train = train.column(OUTCOME).to_list()
    y_test = test.column(OUTCOME).to_list()
    groups = list(
        zip(*(train.column(name).to_list() for name in PROTECTED))
    )

    def sweep():
        rows = []
        for weight in WEIGHTS:
            model = FairLogisticRegression(
                fairness_weight=weight, l2=1e-4, max_iter=200
            ).fit(X_train, y_train, groups=groups)
            predictions = model.predict(X_test)
            rows.append(
                [
                    weight,
                    _prediction_epsilon(test, predictions),
                    error_rate(y_test, predictions, percent=True),
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_table(
        "fair_training_tradeoff",
        render_table(
            ["fairness weight λ", "epsilon (test)", "error %"],
            rows,
            digits=3,
            title="DF-regularised logistic regression: fairness/accuracy "
            "frontier (Section 8 future work)",
        ),
    )
    # The frontier: heavy regularisation clearly reduces epsilon...
    assert rows[-1][1] < rows[0][1] - 0.3
    # ...and costs some accuracy.
    assert rows[-1][2] >= rows[0][2] - 0.2


def test_group_threshold_mitigation(benchmark, record_table, subsampled):
    """Third mitigation: per-group thresholds on the classifier's scores
    (the differential-fairness answer to Sec 7.1's 'threshold tests')."""
    from repro.learn.group_thresholds import GroupThresholdPostprocessor

    train, test = subsampled
    vectorizer = TableVectorizer(exclude=[OUTCOME, *PROTECTED]).fit(train)
    model = FairLogisticRegression(fairness_weight=0.0, l2=1e-4).fit(
        vectorizer.transform(train),
        train.column(OUTCOME).to_list(),
        groups=list(zip(*(train.column(n).to_list() for n in PROTECTED))),
    )
    scores = model.predict_proba(vectorizer.transform(test))[:, 1]
    y_test = [
        1 if label == POSITIVE else 0
        for label in test.column(OUTCOME).to_list()
    ]
    groups = list(zip(*(test.column(n).to_list() for n in PROTECTED)))
    post = GroupThresholdPostprocessor(positive=1).fit(scores, y_test, groups)

    def solve_budgets():
        rows = []
        for budget in (2.0, 1.0, 0.5):
            solution = post.solve(budget)
            rows.append([budget, solution.epsilon, solution.accuracy * 100])
        return rows

    rows = benchmark.pedantic(solve_budgets, rounds=1, iterations=1)
    for budget, achieved, accuracy in rows:
        assert achieved <= budget + 1e-9
    accuracies = [row[2] for row in rows]
    assert accuracies == sorted(accuracies, reverse=True)  # tighter = costlier
    record_table(
        "fair_group_thresholds",
        render_table(
            ["epsilon budget", "achieved epsilon", "accuracy %"],
            rows,
            digits=3,
            title="Per-group threshold mitigation (accuracy-optimal under "
            "an epsilon budget)",
        ),
    )


def test_postprocessing_alternative(benchmark, record_table, subsampled):
    """Mixing toward the base rate reaches any epsilon target exactly."""
    train, test = subsampled
    vectorizer = TableVectorizer(exclude=[OUTCOME, *PROTECTED]).fit(train)
    model = FairLogisticRegression(fairness_weight=0.0, l2=1e-4).fit(
        vectorizer.transform(train),
        train.column(OUTCOME).to_list(),
        groups=list(zip(*(train.column(n).to_list() for n in PROTECTED))),
    )
    predictions = list(model.predict(vectorizer.transform(test)))
    groups = list(zip(*(test.column(n).to_list() for n in PROTECTED)))
    post = GroupMixingPostprocessor(positive=POSITIVE).fit(predictions, groups)

    def solve_targets():
        rows = []
        for target in (1.5, 1.0, 0.5):
            t = post.solve_mixing(target)
            rows.append([target, t, post.epsilon_at(t)])
        return rows

    rows = benchmark(solve_targets)
    for target, t, achieved in rows:
        assert achieved <= target + 1e-6
        assert 0.0 <= t <= 1.0
    record_table(
        "fair_postprocessing",
        render_table(
            ["target epsilon", "mixing weight t", "achieved epsilon"],
            rows,
            digits=4,
            title="Post-processing: per-group mixing toward the base rate",
        ),
    )
