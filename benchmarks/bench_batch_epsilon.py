"""Perf bench: the batch epsilon kernel vs the historical per-draw loops.

Compares the seed implementation of the Monte Carlo posterior-epsilon path
(one ``rng.dirichlet`` call per group per draw, one
``epsilon_from_probabilities`` call with a per-outcome Python loop per
draw) against the fused pipeline (one ``standard_gamma`` call + one
``epsilon_batch`` call) at three scales, and records a machine-readable
speedup trajectory in ``BENCH_batch_epsilon.json`` at the repo root so
future PRs can track the perf trend.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_batch_epsilon.py -q
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.bayesian import posterior_epsilon_samples
from repro.distributions.dirichlet import GroupOutcomePosterior

REPO_ROOT = Path(__file__).resolve().parent.parent
RECORD_PATH = REPO_ROOT / "BENCH_batch_epsilon.json"

# (n_draws, n_groups, n_outcomes); the middle scale is the acceptance
# target: >= 20x on 1000 draws x 32 groups x 2 outcomes.
SCALES = [
    (200, 8, 2),
    (1000, 32, 2),
    (1000, 64, 4),
]
TARGET_SCALE = (1000, 32, 2)
TARGET_SPEEDUP = 20.0

_RESULTS: dict[tuple[int, int, int], dict] = {}


def _random_counts(n_groups: int, n_outcomes: int) -> np.ndarray:
    rng = np.random.default_rng(20260728)
    return rng.integers(5, 200, size=(n_groups, n_outcomes)).astype(float)


# ----------------------------------------------------------------------
# The seed implementation, reproduced verbatim in spirit: Python loops per
# draw, per group, and per outcome.
# ----------------------------------------------------------------------
def _looped_epsilon(matrix: np.ndarray) -> float:
    populated = ~np.isnan(matrix).any(axis=1)
    indices = np.flatnonzero(populated)
    if indices.size < 2:
        return 0.0
    sub = matrix[indices]
    best = 0.0
    seen = False
    for column in range(matrix.shape[1]):
        values = sub[:, column]
        if not (values > 0).any():
            continue
        p_high = float(values.max())
        p_low = float(values.min())
        eps = math.inf if p_low == 0.0 else math.log(p_high) - math.log(p_low)
        if not seen or eps > best:
            best = eps
            seen = True
    return best


def _looped_sample_epsilons(
    counts: np.ndarray, alpha: float, n_draws: int, seed: int
) -> np.ndarray:
    rng = np.random.default_rng(seed)
    epsilons = np.empty(n_draws)
    for draw in range(n_draws):
        matrix = np.full(counts.shape, np.nan)
        for group, row in enumerate(counts):
            if row.sum() > 0:
                matrix[group] = rng.dirichlet(row + alpha)
        epsilons[draw] = _looped_epsilon(matrix)
    return epsilons


def _batched_sample_epsilons(
    counts: np.ndarray, alpha: float, n_draws: int, seed: int
) -> np.ndarray:
    return posterior_epsilon_samples(
        counts, alpha=alpha, n_samples=n_draws, seed=seed
    )


def _time(callable_, repeats: int = 3) -> float:
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.parametrize("n_draws,n_groups,n_outcomes", SCALES)
def test_batched_beats_looped(benchmark, n_draws, n_groups, n_outcomes):
    counts = _random_counts(n_groups, n_outcomes)

    looped = _looped_sample_epsilons(counts, 1.0, n_draws, seed=1)
    batched = _batched_sample_epsilons(counts, 1.0, n_draws, seed=1)
    # Different bit-stream consumption, same posterior: distributions agree.
    assert batched.shape == looped.shape
    assert abs(batched.mean() - looped.mean()) < 5.0 * looped.std() / math.sqrt(
        n_draws
    ) + 1e-9

    looped_seconds = _time(
        lambda: _looped_sample_epsilons(counts, 1.0, n_draws, seed=1),
        repeats=1 if n_draws * n_groups > 10_000 else 2,
    )
    benchmark(_batched_sample_epsilons, counts, 1.0, n_draws, 1)
    batched_seconds = benchmark.stats.stats.min
    speedup = looped_seconds / batched_seconds
    benchmark.extra_info["looped_seconds"] = looped_seconds
    benchmark.extra_info["speedup"] = speedup

    _RESULTS[(n_draws, n_groups, n_outcomes)] = {
        "n_draws": n_draws,
        "n_groups": n_groups,
        "n_outcomes": n_outcomes,
        "looped_seconds": looped_seconds,
        "batched_seconds": batched_seconds,
        "speedup": speedup,
    }

    assert speedup > 1.0
    if (n_draws, n_groups, n_outcomes) == TARGET_SCALE:
        assert speedup >= TARGET_SPEEDUP, (
            f"acceptance target missed: {speedup:.1f}x < {TARGET_SPEEDUP}x "
            f"at {TARGET_SCALE}"
        )


def test_zz_write_speedup_record():
    """Runs last (file order): persist the trajectory for future PRs."""
    assert _RESULTS, "scale benchmarks did not run"
    record = {
        "benchmark": "bench_batch_epsilon",
        "workload": "posterior_epsilon_samples: Dirichlet posterior draws "
        "-> epsilon, looped (per draw/group/outcome) vs batched kernel",
        "target": {
            "scale": dict(
                zip(("n_draws", "n_groups", "n_outcomes"), TARGET_SCALE)
            ),
            "min_speedup": TARGET_SPEEDUP,
        },
        "scales": [
            _RESULTS[key] for key in sorted(_RESULTS)
        ],
    }
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    target = next(
        entry
        for entry in record["scales"]
        if (entry["n_draws"], entry["n_groups"], entry["n_outcomes"])
        == TARGET_SCALE
    )
    assert target["speedup"] >= TARGET_SPEEDUP
