"""Perf bench: WAL-on vs WAL-off ingest, acked throughput + ack latency.

PR 6's durability contract says every acknowledged observe was fsync'd
to the write-ahead log *before* it touched the auditor, so a restart
replays it rather than losing it. The question this bench answers is
what that guarantee costs on the hot path. Three paths over the same
synthetic census-like stream:

* ``wal_off`` — the registry ingest path with the WAL disabled
  (``wal_enabled=False``): the pre-PR-6 baseline.
* ``wal_on`` — the full durable path: WAL append + fsync before apply
  before ack, one monitor, sequential batches. Every batch's ack
  latency is sampled; the record keeps the p50/p99 and the acked
  throughput. The acceptance target is >= 50k acked rows/sec,
  enforced by a ``@pytest.mark.perf`` guard.
* ``wal_on_concurrent`` — four monitors ingesting in parallel threads,
  each on its own WAL: the fleet-shaped load where fsyncs from
  different shards overlap. Recorded for the trajectory (aggregate
  acked rows/sec), no hard threshold.

Bit-identity is asserted **unconditionally** before any timing: the
epsilon reported with the WAL on equals the WAL-off epsilon equals
:func:`repro.core.empirical.dataset_edf` on the concatenated rows —
durability must not perturb the statistics.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_wal.py -q
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.empirical import dataset_edf
from repro.monitor.registry import MonitorRegistry
from repro.tabular.table import Table

REPO_ROOT = Path(__file__).resolve().parent.parent
RECORD_PATH = REPO_ROOT / "BENCH_wal.json"

PROTECTED = ["gender", "race", "nationality"]
OUTCOME = "income"
NAMES = [*PROTECTED, OUTCOME]
LEVELS = {
    "gender": ["Female", "Male"],
    "race": ["White", "Black", "Asian-Pac-Islander", "Other"],
    "nationality": ["United-States", "Other"],
    "income": ["<=50K", ">50K"],
}

BATCH_ROWS = 1_000
N_BATCHES = 60  # sequential paths: 60k rows timed
N_SHARDS = 4
SHARD_BATCHES = 15  # concurrent path: 4 x 15k rows
TARGET_ROWS_PER_SEC = 50_000.0

_RESULTS: dict[str, dict] = {}


def _stream(n_rows: int, seed: int = 20260808):
    rng = np.random.default_rng(seed)
    cells = [rng.integers(len(LEVELS[name]), size=n_rows) for name in PROTECTED]
    base = 0.2 + 0.1 * cells[0] + 0.04 * cells[1]
    outcome = rng.random(n_rows) < np.clip(base, 0.02, 0.98)
    return [
        (
            LEVELS["gender"][cells[0][row]],
            LEVELS["race"][cells[1][row]],
            LEVELS["nationality"][cells[2][row]],
            LEVELS["income"][int(outcome[row])],
        )
        for row in range(n_rows)
    ]


def _batches(rows):
    return [
        rows[start : start + BATCH_ROWS]
        for start in range(0, len(rows), BATCH_ROWS)
    ]


def _offline_epsilon(rows) -> float:
    return dataset_edf(
        Table.from_rows(NAMES, rows),
        protected=PROTECTED,
        outcome=OUTCOME,
        estimator=1.0,
    ).epsilon


def _open_registry(directory, *, wal: bool) -> MonitorRegistry:
    return MonitorRegistry.open(directory, wal_enabled=wal)


def _create(registry: MonitorRegistry, name: str):
    return registry.create(
        name,
        PROTECTED,
        OUTCOME,
        alpha=1.0,
        factor_levels=[LEVELS[column] for column in PROTECTED],
        outcome_levels=LEVELS[OUTCOME],
    )


@pytest.mark.perf
def test_wal_ingest_throughput_and_ack_latency(tmp_path):
    rows = _stream(BATCH_ROWS * N_BATCHES)
    batches = _batches(rows)
    offline = _offline_epsilon(rows)

    # Correctness first: the WAL must not perturb the statistics, and a
    # cold reopen must land on the same state it acknowledged.
    check = _open_registry(tmp_path / "check", wal=True)
    _create(check, "m")
    for batch in batches:
        check.observe("m", batch)
    assert check.get("m").epsilon() == offline
    check.close()
    reopened = _open_registry(tmp_path / "check", wal=True)
    assert reopened.get("m").epsilon() == offline
    assert reopened.get("m").batches == N_BATCHES
    reopened.close()

    off = _open_registry(tmp_path / "off", wal=False)
    _create(off, "m")
    start = time.perf_counter()
    for batch in batches:
        off.observe("m", batch)
    off_elapsed = time.perf_counter() - start
    assert off.get("m").epsilon() == offline
    off.close()

    on = _open_registry(tmp_path / "on", wal=True)
    _create(on, "m")
    ack_latencies = []
    start = time.perf_counter()
    for batch in batches:
        before = time.perf_counter()
        on.observe("m", batch)
        ack_latencies.append(time.perf_counter() - before)
    on_elapsed = time.perf_counter() - start
    assert on.get("m").epsilon() == offline
    on.close()

    latencies_ms = 1000.0 * np.asarray(ack_latencies)
    on_rows_per_sec = len(rows) / on_elapsed
    _RESULTS["wal_off"] = {
        "path": "registry ingest, WAL disabled (pre-durability baseline)",
        "batch_rows": BATCH_ROWS,
        "n_batches": N_BATCHES,
        "rows": len(rows),
        "seconds": off_elapsed,
        "rows_per_sec": len(rows) / off_elapsed,
    }
    _RESULTS["wal_on"] = {
        "path": "registry ingest, WAL append + fsync before apply "
        "before ack",
        "batch_rows": BATCH_ROWS,
        "n_batches": N_BATCHES,
        "rows": len(rows),
        "seconds": on_elapsed,
        "rows_per_sec": on_rows_per_sec,
        "ack_latency_ms": {
            "p50": float(np.percentile(latencies_ms, 50)),
            "p99": float(np.percentile(latencies_ms, 99)),
            "max": float(latencies_ms.max()),
        },
    }
    assert on_rows_per_sec >= TARGET_ROWS_PER_SEC, (
        f"acceptance target missed: {on_rows_per_sec:,.0f} acked rows/sec "
        f"< {TARGET_ROWS_PER_SEC:,.0f} with the WAL on"
    )


@pytest.mark.perf
def test_wal_concurrent_shard_ingest(tmp_path):
    rows = _stream(BATCH_ROWS * SHARD_BATCHES * N_SHARDS, seed=20260809)
    per_shard = [
        _batches(
            rows[
                shard * BATCH_ROWS * SHARD_BATCHES : (shard + 1)
                * BATCH_ROWS
                * SHARD_BATCHES
            ]
        )
        for shard in range(N_SHARDS)
    ]
    registry = _open_registry(tmp_path / "fleet", wal=True)
    for shard in range(N_SHARDS):
        _create(registry, f"shard{shard}")
    barrier = threading.Barrier(N_SHARDS)
    errors: list[BaseException] = []

    def ingest(shard: int):
        try:
            barrier.wait()
            for batch in per_shard[shard]:
                registry.observe(f"shard{shard}", batch)
        except BaseException as error:  # noqa: BLE001 - reraised below
            errors.append(error)

    threads = [
        threading.Thread(target=ingest, args=(shard,))
        for shard in range(N_SHARDS)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    for shard in range(N_SHARDS):
        monitor = registry.get(f"shard{shard}")
        assert monitor.batches == SHARD_BATCHES
        assert monitor.epsilon() == _offline_epsilon(
            rows[
                shard * BATCH_ROWS * SHARD_BATCHES : (shard + 1)
                * BATCH_ROWS
                * SHARD_BATCHES
            ]
        )
    registry.close()

    _RESULTS["wal_on_concurrent"] = {
        "path": f"{N_SHARDS} monitors ingesting in parallel threads, "
        "one WAL per shard (overlapping fsyncs)",
        "batch_rows": BATCH_ROWS,
        "n_batches": SHARD_BATCHES * N_SHARDS,
        "rows": len(rows),
        "seconds": elapsed,
        "rows_per_sec": len(rows) / elapsed,
    }


def test_zz_write_throughput_record():
    """Runs last (file order): persist the trajectory for future PRs."""
    assert "wal_on" in _RESULTS, "WAL benchmarks did not run"
    on = _RESULTS["wal_on"]
    off = _RESULTS.get("wal_off")
    concurrent = _RESULTS.get("wal_on_concurrent")
    record = {
        "benchmark": "bench_wal",
        "workload": "durable monitor ingest: 4-attribute synthetic census "
        "rows in 1k-row batches; WAL append + fsync before apply before "
        "ack vs the WAL-off baseline; bit-identity with dataset_edf and "
        "a cold-reopen replay asserted before timing",
        "target": {
            "path": "wal_on",
            "min_rows_per_sec": TARGET_ROWS_PER_SEC,
        },
        "paths": [
            entry for entry in (off, on, concurrent) if entry is not None
        ],
    }
    if off is not None:
        record["wal_overhead_ratio"] = (
            off["rows_per_sec"] / on["rows_per_sec"]
        )
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    assert on["rows_per_sec"] >= TARGET_ROWS_PER_SEC
