"""Table 1 / Section 5.1: the Simpson's paradox admissions example.

Paper values: epsilon = 1.511 for Gender x Race; marginal epsilons 0.2329
(Gender) and 0.8667 (Race); Theorem 3.1 bound 2 * 1.511 = 3.022.
"""

import pytest

from repro.core.empirical import edf_from_contingency
from repro.core.subsets import subset_sweep
from repro.data.kidney import (
    PAPER_TABLE1_BOUND,
    PAPER_TABLE1_EPSILONS,
    admissions_contingency,
    admissions_table,
)
from repro.utils.formatting import render_table


def test_table1_intersectional_epsilon(benchmark, record_table):
    contingency = admissions_contingency()
    result = benchmark(edf_from_contingency, contingency)
    assert result.epsilon == pytest.approx(1.511, abs=5e-4)

    matrix, labels = contingency.group_outcome_matrix()
    rows = []
    for label, row in zip(labels, matrix):
        total = row.sum()
        rows.append([*label, int(row[0]), int(total), row[0] / total])
    table_text = render_table(
        ["gender", "race", "admitted", "total", "P(admit)"],
        rows,
        digits=4,
        title="Probability of Being Admitted to University X (Table 1)",
    )
    record_table(
        "table1_simpsons_paradox",
        "\n".join(
            [
                table_text,
                "",
                f"paper epsilon (Gender x Race): 1.511",
                f"measured:                      {result.epsilon:.4f}",
                f"witness: {result.witness.describe(('gender', 'race'))}",
            ]
        ),
    )


def test_table1_subset_sweep(benchmark, record_table):
    """The marginal epsilons and the Theorem 3.1 bound."""
    contingency = admissions_contingency()
    sweep = benchmark(subset_sweep, contingency)

    for subset, target in PAPER_TABLE1_EPSILONS.items():
        assert sweep.epsilon(subset) == pytest.approx(target, abs=5e-4)
    assert sweep.theorem_bound() == pytest.approx(PAPER_TABLE1_BOUND, abs=1e-3)
    assert sweep.theorem_violations() == []

    rows = [
        [", ".join(subset), target, sweep.epsilon(subset)]
        for subset, target in PAPER_TABLE1_EPSILONS.items()
    ]
    record_table(
        "table1_epsilons",
        render_table(
            ["protected attributes", "paper", "measured"],
            rows,
            digits=4,
            title=(
                "Simpson's paradox epsilons "
                f"(Theorem 3.1 bound = {sweep.theorem_bound():.3f})"
            ),
        ),
    )


def test_table1_row_level_pipeline(benchmark):
    """End-to-end from a 700-row table instead of pre-aggregated counts."""
    from repro.core.empirical import dataset_edf

    table = admissions_table()
    result = benchmark(
        dataset_edf, table, ["gender", "race"], "admitted"
    )
    assert result.epsilon == pytest.approx(1.511, abs=5e-4)
