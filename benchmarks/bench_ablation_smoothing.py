"""Ablation: Equation 6 (plug-in) vs Equation 7 (Dirichlet smoothing).

The paper notes "In practice, we may wish to apply a Dirichlet prior for
smoothing" and uses alpha = 1 for Table 3. This bench sweeps alpha on the
synthetic Adult training set and on a sparsified subsample to show what
the prior buys: finite epsilons under sparsity at the cost of shrinkage.
"""

import math

import numpy as np
import pytest

from repro.core.empirical import dataset_edf
from repro.core.estimators import DirichletEstimator, MLEEstimator
from repro.data.synthetic_adult import OUTCOME, PROTECTED
from repro.utils.formatting import render_table

ALPHAS = (0.01, 0.1, 0.5, 1.0, 5.0, 50.0, 1e6)


def test_alpha_sweep_full_data(benchmark, record_table, adult_bare_train):
    """Smoothing monotonically shrinks epsilon on well-populated data."""

    def sweep():
        rows = []
        mle = dataset_edf(
            adult_bare_train, list(PROTECTED), OUTCOME, MLEEstimator()
        ).epsilon
        rows.append(["0 (Eq. 6)", mle])
        for alpha in ALPHAS:
            eps = dataset_edf(
                adult_bare_train,
                list(PROTECTED),
                OUTCOME,
                DirichletEstimator(alpha),
            ).epsilon
            rows.append([str(alpha), eps])
        return rows

    rows = benchmark(sweep)
    epsilons = [row[1] for row in rows]
    assert epsilons == sorted(epsilons, reverse=True)  # monotone shrinkage
    # Shrinkage is gentle while alpha << cell sizes (the paper's alpha = 1
    # barely moves the 32k-row measurement) and total in the limit.
    assert epsilons[1] > 2.0
    assert epsilons[-1] < 0.1

    record_table(
        "ablation_smoothing_full",
        render_table(
            ["alpha", "epsilon (train, full intersection)"],
            rows,
            digits=4,
            title="Ablation: Dirichlet smoothing on 32,561 rows",
        ),
    )


def test_alpha_rescues_sparse_data(benchmark, record_table, adult_bare_train):
    """On a tiny subsample the plug-in estimator degenerates to infinity;
    Eq. 7 keeps epsilon finite — the reason the paper smooths Table 3."""
    rng = np.random.default_rng(0)
    subsample = adult_bare_train.take(
        rng.choice(adult_bare_train.n_rows, size=300, replace=False)
    )

    def measure():
        mle = dataset_edf(subsample, list(PROTECTED), OUTCOME).epsilon
        smoothed = dataset_edf(
            subsample, list(PROTECTED), OUTCOME, DirichletEstimator(1.0)
        ).epsilon
        return mle, smoothed

    mle, smoothed = benchmark(measure)
    assert math.isinf(mle)
    assert math.isfinite(smoothed)

    record_table(
        "ablation_smoothing_sparse",
        "\n".join(
            [
                "Ablation: sparsity (300-row subsample, 16 cells)",
                f"Eq. 6 plug-in epsilon:          {mle}",
                f"Eq. 7 epsilon (alpha = 1):      {smoothed:.4f}",
            ]
        ),
    )


@pytest.mark.parametrize("alpha", [0.5, 1.0, 2.0])
def test_smoothed_estimator_cost(benchmark, adult_bare_train, alpha):
    """Smoothing adds no measurable cost over the plug-in estimator."""
    result = benchmark(
        dataset_edf,
        adult_bare_train,
        list(PROTECTED),
        OUTCOME,
        DirichletEstimator(alpha),
    )
    assert math.isfinite(result.epsilon)
