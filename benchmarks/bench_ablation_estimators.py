"""Ablation: the three estimators of P(y | s) under data sparsity.

Section 4 of the paper offers three routes to the group-conditional
outcome probabilities: the plug-in Equation 6, the Dirichlet-smoothed
Equation 7, and (for high-dimensional protected attributes) "more complex
models". This bench measures all three on progressively smaller subsamples
of the synthetic Adult data and reports how well each tracks the
full-population epsilon.
"""

import math

import numpy as np
import pytest

from repro.core.empirical import dataset_edf, edf_from_contingency
from repro.core.estimators import DirichletEstimator
from repro.core.model_based import model_based_edf
from repro.data.synthetic_adult import OUTCOME, PROTECTED
from repro.tabular.crosstab import crosstab
from repro.utils.formatting import render_table

SUBSAMPLE_SIZES = (32561, 4000, 1000, 300)


@pytest.fixture(scope="module")
def subsample_contingencies(adult_bare_train):
    rng = np.random.default_rng(7)
    out = {}
    for size in SUBSAMPLE_SIZES:
        if size >= adult_bare_train.n_rows:
            table = adult_bare_train
        else:
            table = adult_bare_train.take(
                rng.choice(adult_bare_train.n_rows, size=size, replace=False)
            )
        out[size] = crosstab(table, list(PROTECTED), OUTCOME)
    return out


def test_estimator_sparsity_comparison(
    benchmark, record_table, subsample_contingencies, adult_bare_train
):
    population_epsilon = dataset_edf(
        adult_bare_train, list(PROTECTED), OUTCOME
    ).epsilon

    def run():
        rows = []
        for size, contingency in subsample_contingencies.items():
            plugin = edf_from_contingency(contingency).epsilon
            smoothed = edf_from_contingency(
                contingency, DirichletEstimator(1.0)
            ).epsilon
            pooled = model_based_edf(contingency).epsilon
            rows.append([f"{size:,}", plugin, smoothed, pooled])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "ablation_estimators",
        render_table(
            [
                "subsample rows",
                "Eq. 6 plug-in",
                "Eq. 7 (alpha=1)",
                "model-based (main effects)",
            ],
            rows,
            digits=4,
            title=(
                "Estimator comparison under sparsity "
                f"(population epsilon = {population_epsilon:.4f})"
            ),
        ),
    )
    # Full data: all three in the same neighbourhood.
    full = rows[0]
    assert full[1] == pytest.approx(population_epsilon, abs=1e-9)
    assert abs(full[2] - population_epsilon) < 0.15
    # Smallest subsample: the plug-in blows up or is wildly noisy, while
    # the model-based estimate stays finite.
    smallest = rows[-1]
    assert math.isinf(smallest[1]) or abs(smallest[1] - population_epsilon) > 0.3
    assert math.isfinite(smallest[3])


def test_model_based_cost(benchmark, subsample_contingencies):
    """Fitting the pooled logistic model on the full contingency table."""
    contingency = subsample_contingencies[32561]
    result = benchmark(model_based_edf, contingency)
    assert math.isfinite(result.epsilon)
