"""Section 3.2/3.3: the privacy interpretation and epsilon calibration.

In-text numbers: randomized response with fair coins is ln(3)-DP (~1.0986);
an eps-DF mechanism admits at most an exp(eps) disparity in expected
utility; the high-privacy regime is eps < 1.
"""

import math

import numpy as np
import pytest

from repro.core.epsilon import epsilon_from_probabilities
from repro.core.interpretation import (
    RANDOMIZED_RESPONSE_EPSILON,
    interpret_epsilon,
)
from repro.core.privacy import posterior_odds_interval, privacy_violations
from repro.mechanisms.randomized_response import RandomizedResponse
from repro.utils.formatting import render_table


def test_randomized_response_epsilon(benchmark, record_table):
    rr = RandomizedResponse()
    epsilon = benchmark(rr.epsilon)
    assert epsilon == pytest.approx(math.log(3))
    assert epsilon == pytest.approx(RANDOMIZED_RESPONSE_EPSILON)

    rows = []
    for truth_probability in (0.0, 0.25, 0.5, 0.75, 0.9):
        mechanism = RandomizedResponse(truth_probability)
        interp = interpret_epsilon(mechanism.epsilon())
        rows.append(
            [
                truth_probability,
                mechanism.epsilon(),
                interp.regime.value,
                interp.utility_factor,
            ]
        )
    record_table(
        "privacy_randomized_response",
        render_table(
            ["P(truthful)", "epsilon", "regime", "exp(eps)"],
            rows,
            digits=4,
            title="Randomized response calibration (Section 3.3); fair coin "
            "= ln(3) ≈ 1.0986",
        ),
    )


def test_privacy_guarantee_verification(benchmark, record_table):
    """Mechanically verify Equation 4 on a large random instance."""
    rng = np.random.default_rng(0)
    raw = rng.uniform(0.05, 1.0, size=(64, 4))
    probs = raw / raw.sum(axis=1, keepdims=True)
    prior = rng.dirichlet(np.ones(64))
    result = epsilon_from_probabilities(probs, validate=False)

    violations = benchmark(privacy_violations, result, prior)
    assert violations == []

    low, high = posterior_odds_interval(result.epsilon, prior_odds=1.0)
    record_table(
        "privacy_equation4",
        "\n".join(
            [
                "Equation 4 verification (64 groups x 4 outcomes, random θ)",
                f"measured epsilon: {result.epsilon:.4f}",
                f"posterior/prior odds interval at prior odds 1: "
                f"({low:.4f}, {high:.4f})",
                f"violations: {len(violations)} (expected 0)",
            ]
        ),
    )


def test_epsilon_computation_scaling_width(benchmark):
    """Raw epsilon computation on a wide probability matrix."""
    rng = np.random.default_rng(1)
    raw = rng.uniform(0.01, 1.0, size=(4096, 8))
    probs = raw / raw.sum(axis=1, keepdims=True)
    result = benchmark(epsilon_from_probabilities, probs, validate=False)
    assert result.epsilon > 0
