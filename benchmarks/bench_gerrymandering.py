"""Ablation: what each fairness definition detects.

The motivating comparison of the paper's Sections 1 and 7: marginal
demographic parity can be satisfied while the intersections are targeted
("fairness gerrymandering"); equalized odds can be satisfied while the
outcome distribution is arbitrarily inequitable. Differential fairness at
the intersection catches both.
"""

import math

import pytest

from repro.core.conditional import conditional_edf
from repro.core.empirical import dataset_edf
from repro.core.subsets import subset_sweep
from repro.data.generators import expand_cells_to_table
from repro.metrics.demographic_parity import demographic_parity_difference
from repro.tabular.table import Table
from repro.utils.formatting import render_table


def gerrymandered_table() -> Table:
    """Marginal approval rates equal (0.4 everywhere); intersections 3x apart."""
    cells = {
        ("F", "X"): [40, 60],
        ("F", "Y"): [80, 20],
        ("M", "X"): [80, 20],
        ("M", "Y"): [40, 60],
    }
    return expand_cells_to_table(
        cells,
        attribute_names=["gender", "race"],
        outcome_name="approved",
        outcome_levels=["no", "yes"],
    )


def oracle_table() -> Table:
    """Perfect predictions over a 9:1 base-rate disparity."""
    rows = (
        [("a", "1", "1")] * 90 + [("a", "0", "0")] * 10
        + [("b", "1", "1")] * 10 + [("b", "0", "0")] * 90
    )
    return Table.from_rows(["group", "label", "pred"], rows)


def test_detection_matrix(benchmark, record_table):
    """One table: which definition flags which failure mode."""
    gerrymandered = gerrymandered_table()
    oracle = oracle_table()

    def measure():
        # Gerrymandering scenario.
        approvals = gerrymandered.column("approved").to_list()
        marginal_dp = max(
            demographic_parity_difference(
                approvals, gerrymandered.column(attr).to_list(), "yes"
            )
            for attr in ("gender", "race")
        )
        intersectional = dataset_edf(
            gerrymandered, protected=["gender", "race"], outcome="approved"
        ).epsilon
        # Oracle scenario.
        oracle_conditional = conditional_edf(
            oracle, "group", "pred", given="label"
        ).epsilon
        oracle_unconditional = dataset_edf(
            oracle, protected="group", outcome="pred"
        ).epsilon
        return (
            marginal_dp,
            intersectional,
            oracle_conditional,
            oracle_unconditional,
        )

    marginal_dp, intersectional, oracle_cond, oracle_uncond = benchmark(measure)

    # Gerrymandering: marginal parity is blind, intersectional DF is not.
    assert marginal_dp == pytest.approx(0.0, abs=1e-12)
    assert intersectional == pytest.approx(math.log(3))
    # Oracle: equalized-odds-style conditional DF is blind to base-rate
    # disparity, unconditional DF is not.
    assert oracle_cond == pytest.approx(0.0)
    assert oracle_uncond > 2.0

    record_table(
        "gerrymandering_detection",
        render_table(
            ["scenario", "definition", "measurement", "flags it?"],
            [
                [
                    "subset targeting",
                    "marginal demographic parity",
                    marginal_dp,
                    "no",
                ],
                [
                    "subset targeting",
                    "intersectional DF epsilon",
                    intersectional,
                    "yes",
                ],
                [
                    "base-rate disparity",
                    "conditional DF (equalized odds)",
                    oracle_cond,
                    "no",
                ],
                [
                    "base-rate disparity",
                    "unconditional DF epsilon",
                    oracle_uncond,
                    "yes",
                ],
            ],
            digits=4,
            title="What each definition detects (Sections 1 and 7)",
        ),
    )


def test_three_way_gerrymander_sweep_cost(benchmark):
    """Cost of the full sweep that exposes a depth-3 gerrymander."""
    cells = {}
    for g in ("F", "M"):
        for r in ("X", "Y"):
            for n in ("U", "V"):
                parity = (g == "M") ^ (r == "Y") ^ (n == "V")
                rate = 0.6 if parity else 0.2
                cells[(g, r, n)] = [int(100 * (1 - rate)), int(100 * rate)]
    table = expand_cells_to_table(
        cells,
        attribute_names=["gender", "race", "nation"],
        outcome_name="approved",
        outcome_levels=["no", "yes"],
    )
    sweep = benchmark(
        subset_sweep, table, ["gender", "race", "nation"], "approved"
    )
    assert sweep.full_epsilon == pytest.approx(math.log(3))
    assert all(
        sweep.epsilon(subset) == pytest.approx(0.0, abs=1e-12)
        for subset in (
            ("gender",), ("race",), ("nation",),
            ("gender", "race"), ("gender", "nation"), ("race", "nation"),
        )
    )
