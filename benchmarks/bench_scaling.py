"""Ablation: the "lightweight" claim (Section 1).

The paper argues differential fairness needs no causal model or latent
risk model — it is counting. This bench quantifies that: epsilon
measurement cost scales linearly in rows and stays in milliseconds for
census-scale data, and the full 2^p subset sweep is cheap because every
subset marginalises one tensor.
"""

import numpy as np
import pytest

from repro.core.empirical import dataset_edf
from repro.core.subsets import subset_sweep
from repro.data.generators import sample_outcome_table
from repro.tabular.crosstab import crosstab
from repro.utils.formatting import render_table


def synthetic_population(n_rows: int, n_attributes: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    levels = ["u", "v"]
    cells = {}
    rates = {}
    import itertools

    for combo in itertools.product(levels, repeat=n_attributes):
        cells[combo] = n_rows // (2**n_attributes)
        rates[combo] = float(rng.uniform(0.1, 0.6))
    names = [f"s{i}" for i in range(n_attributes)]
    return sample_outcome_table(cells, rates, names, seed=rng), names


@pytest.mark.parametrize("n_rows", [1_000, 10_000, 100_000])
def test_edf_scaling_in_rows(benchmark, n_rows):
    table, names = synthetic_population(n_rows, 3)
    result = benchmark(dataset_edf, table, names, "outcome")
    assert result.epsilon >= 0


@pytest.mark.parametrize("n_attributes", [2, 4, 6])
def test_sweep_scaling_in_attributes(benchmark, n_attributes):
    """2^p - 1 subsets, all served by marginalising one count tensor."""
    table, names = synthetic_population(20_000, n_attributes)
    sweep = benchmark(subset_sweep, table, names, "outcome")
    assert len(sweep.results) == 2**n_attributes - 1


def test_crosstab_dominates_cost(benchmark, record_table):
    """The single O(n) counting pass is the whole cost; epsilon from the
    tensor is microseconds."""
    table, names = synthetic_population(100_000, 3)

    contingency = crosstab(table, names, "outcome")
    timing = benchmark(lambda: dataset_edf(contingency))
    assert timing.epsilon >= 0

    record_table(
        "scaling_summary",
        render_table(
            ["stage", "cost"],
            [
                ["counting pass over rows", "O(n), one pass (see bench timings)"],
                ["epsilon from tensor", "O(groups x outcomes)"],
                ["full 2^p subset sweep", "p marginalisations of one tensor"],
            ],
            title="Scaling structure of the measurement (Section 1's "
            "'lightweight' claim)",
        ),
    )
