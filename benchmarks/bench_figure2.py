"""Figure 2: the Gaussian-threshold worked example.

Paper values: P(yes | group) = (0.3085, 0.9332), log-ratio table
(±1.107 for yes, ±2.337 for no), epsilon = 2.337, probability ratios
bounded within (0.0966, 10.35).
"""

import math

import pytest

from repro.core.analytic import gaussian_threshold_epsilon, paper_worked_example
from repro.core.mechanism import mechanism_epsilon
from repro.distributions.gaussian import GroupGaussianScores
from repro.mechanisms.threshold import ScoreThresholdMechanism

PAPER_EPSILON = 2.337


def test_figure2_analytic(benchmark, record_table):
    """Closed-form reproduction; benchmarks the analytic epsilon."""
    scores = GroupGaussianScores.paper_worked_example()
    mechanism = ScoreThresholdMechanism.paper_worked_example()

    result = benchmark(gaussian_threshold_epsilon, scores, mechanism)

    assert result.epsilon == pytest.approx(PAPER_EPSILON, abs=5e-4)
    assert result.probability((1,), "yes") == pytest.approx(0.3085, abs=5e-5)
    assert result.probability((2,), "yes") == pytest.approx(0.9332, abs=5e-5)

    example = paper_worked_example()
    lines = [
        example.to_text(),
        "",
        f"paper epsilon:    {PAPER_EPSILON}",
        f"measured epsilon: {example.epsilon:.4f}",
    ]
    record_table("figure2_worked_example", "\n".join(lines))


def test_figure2_monte_carlo(benchmark, record_table):
    """Monte-Carlo cross-check of the closed form (Definition 3.1 path)."""
    scores = GroupGaussianScores.paper_worked_example()
    mechanism = ScoreThresholdMechanism.paper_worked_example()

    result = benchmark.pedantic(
        mechanism_epsilon,
        args=(mechanism, scores),
        kwargs={"n_samples": 100_000, "seed": 0, "exact": False},
        rounds=3,
        iterations=1,
    )
    assert result.epsilon == pytest.approx(PAPER_EPSILON, abs=0.05)
    record_table(
        "figure2_monte_carlo",
        "\n".join(
            [
                "Monte-Carlo estimate of the Figure 2 epsilon",
                f"n_samples = 100000 per group",
                f"paper (analytic): {PAPER_EPSILON}",
                f"measured (MC):    {result.epsilon:.4f}",
            ]
        ),
    )


def test_figure2_epsilon_ratio_bounds(benchmark):
    """The (0.0966, 10.35) bound pair printed in the figure."""
    example = paper_worked_example()

    def bounds():
        return math.exp(-example.epsilon), math.exp(example.epsilon)

    low, high = benchmark(bounds)
    assert low == pytest.approx(0.0966, abs=5e-5)
    assert high == pytest.approx(10.35, abs=5e-3)
