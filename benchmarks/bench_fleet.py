"""Perf bench: sharded-fleet ingest throughput + kill-one-shard recovery.

PR 7 turns the single durable service into a process-per-shard fleet
behind a hash router and a self-healing supervisor. Two questions this
bench answers, recorded in ``BENCH_fleet.json``:

* ``fleet_ingest`` — acked rows/sec through the full stack (client →
  router → owning shard → WAL fsync → ack) with one feeder thread per
  shard driving its own monitor. Bit-identity is asserted **before**
  timing: each monitor's reported epsilon equals
  :func:`repro.core.empirical.dataset_edf` on its rows. The throughput
  guard only fires on machines with ``cpu_count >= 4`` — below that the
  shard workers, router threads, and feeders contend for cores and the
  number measures the scheduler, not the fleet.
* ``kill_recovery`` — the robustness number: SIGKILL one shard while
  every feeder is mid-stream, and measure wall-clock from the kill to
  that shard's next *acked* batch (supervisor detects the exit, breaker
  opens, restart, WAL replay, ack). The guard on this one is
  unconditional: self-healing that takes longer than
  ``MAX_RECOVERY_SECONDS`` is a regression on any machine.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_fleet.py -q
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.empirical import dataset_edf
from repro.monitor.client import MonitorClient
from repro.monitor.fleet import FleetSupervisor, SupervisorPolicy
from repro.monitor.routing import FleetRouter, shard_for
from repro.tabular.table import Table

REPO_ROOT = Path(__file__).resolve().parent.parent
RECORD_PATH = REPO_ROOT / "BENCH_fleet.json"

PROTECTED = ["gender", "race"]
OUTCOME = "hired"
NAMES = [*PROTECTED, OUTCOME]

N_SHARDS = 2
BATCH_ROWS = 500
BATCHES_PER_SHARD = 20  # 2 x 10k rows timed
TARGET_ROWS_PER_SEC = 4_000.0  # guarded only when cpu_count >= 4
MAX_RECOVERY_SECONDS = 15.0  # guarded unconditionally

POLICY = SupervisorPolicy(
    probe_interval=0.1,
    probe_timeout=5.0,
    failure_threshold=3,
    recovery_probes=1,
    backoff_base=0.1,
    backoff_cap=2.0,
)

_RESULTS: dict[str, dict] = {}


def _stream(n_rows: int, seed: int):
    rng = np.random.default_rng(seed)
    return [
        (
            f"g{rng.integers(2)}",
            f"r{rng.integers(3)}",
            f"y{rng.integers(2)}",
        )
        for _ in range(n_rows)
    ]


def _offline_epsilon(rows) -> float:
    return dataset_edf(
        Table.from_rows(NAMES, rows),
        protected=PROTECTED,
        outcome=OUTCOME,
        estimator=1.0,
    ).epsilon


def _shard_names() -> list[str]:
    """One monitor name per shard, so feeders saturate every worker."""
    found: dict[int, str] = {}
    index = 0
    while len(found) < N_SHARDS:
        name = f"bench{index}"
        found.setdefault(shard_for(name, N_SHARDS), name)
        index += 1
    return [found[shard] for shard in range(N_SHARDS)]


def _observe_until_acked(client, name, rows, *, batch_id, deadline=60.0):
    deadline_at = time.monotonic() + deadline
    while True:
        try:
            return client.observe(name, rows, batch_id=batch_id)
        except Exception:  # noqa: BLE001 - shard mid-restart
            if time.monotonic() >= deadline_at:
                raise
            time.sleep(0.05)


@pytest.mark.perf
@pytest.mark.fleet
def test_fleet_ingest_throughput(tmp_path):
    names = _shard_names()
    per_shard = [
        [
            _stream(BATCH_ROWS, seed=1000 * shard + index)
            for index in range(BATCHES_PER_SHARD)
        ]
        for shard in range(N_SHARDS)
    ]
    with FleetSupervisor(tmp_path / "fleet", N_SHARDS, policy=POLICY) as fleet:
        with FleetRouter(fleet) as router:
            clients = [
                MonitorClient(router.url, retries=8)
                for _ in range(N_SHARDS)
            ]
            for name in names:
                clients[0].create(
                    {
                        "name": name,
                        "protected": PROTECTED,
                        "outcome": OUTCOME,
                        "alpha": 1.0,
                    }
                )
            barrier = threading.Barrier(N_SHARDS)
            errors: list[BaseException] = []

            def feed(shard: int):
                try:
                    barrier.wait()
                    for index, batch in enumerate(per_shard[shard]):
                        clients[shard].observe(
                            names[shard],
                            [list(row) for row in batch],
                            batch_id=f"bench-{shard}-{index}",
                        )
                except BaseException as error:  # noqa: BLE001 - reraised
                    errors.append(error)

            threads = [
                threading.Thread(target=feed, args=(shard,))
                for shard in range(N_SHARDS)
            ]
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - start
            if errors:
                raise errors[0]
            # Correctness before the number is trusted: every shard's
            # epsilon is bit-identical to the offline audit of its rows.
            for shard, name in enumerate(names):
                report = clients[shard].report(name)
                flat = [row for batch in per_shard[shard] for row in batch]
                assert report["epsilon"] == _offline_epsilon(flat)
                assert report["rows_seen"] == len(flat)
        fleet.stop()

    total_rows = N_SHARDS * BATCHES_PER_SHARD * BATCH_ROWS
    rows_per_sec = total_rows / elapsed
    _RESULTS["fleet_ingest"] = {
        "path": f"{N_SHARDS} feeder threads -> router -> "
        f"{N_SHARDS} shard worker processes (WAL fsync per batch)",
        "n_shards": N_SHARDS,
        "batch_rows": BATCH_ROWS,
        "n_batches": N_SHARDS * BATCHES_PER_SHARD,
        "rows": total_rows,
        "seconds": elapsed,
        "rows_per_sec": rows_per_sec,
        "cpu_count": os.cpu_count(),
    }
    if (os.cpu_count() or 0) >= 4:
        assert rows_per_sec >= TARGET_ROWS_PER_SEC, (
            f"fleet ingest regressed: {rows_per_sec:,.0f} acked rows/sec "
            f"< {TARGET_ROWS_PER_SEC:,.0f} through the router"
        )


@pytest.mark.perf
@pytest.mark.fleet
def test_kill_one_shard_recovery_time(tmp_path):
    names = _shard_names()
    target = 0
    with FleetSupervisor(tmp_path / "fleet", N_SHARDS, policy=POLICY) as fleet:
        with FleetRouter(fleet) as router:
            client = MonitorClient(router.url, retries=8)
            for name in names:
                client.create(
                    {
                        "name": name,
                        "protected": PROTECTED,
                        "outcome": OUTCOME,
                        "alpha": 1.0,
                    }
                )
            # Warm the target shard with real load so the restart has
            # WAL segments to replay.
            warm = [
                _stream(BATCH_ROWS, seed=500 + index) for index in range(5)
            ]
            for index, batch in enumerate(warm):
                client.observe(
                    names[target],
                    [list(row) for row in batch],
                    batch_id=f"warm-{index}",
                )
            killed_pid = fleet.kill_shard(target)
            assert killed_pid is not None
            kill_at = time.perf_counter()
            recovery_batch = _stream(BATCH_ROWS, seed=999)
            ack = _observe_until_acked(
                client,
                names[target],
                [list(row) for row in recovery_batch],
                batch_id="post-kill",
                deadline=MAX_RECOVERY_SECONDS + 30.0,
            )
            recovery_seconds = time.perf_counter() - kill_at
            assert ack["duplicate"] is False
            # Nothing acked was lost across the kill: the replayed WAL
            # carries all five warm batches plus the recovery batch.
            report = client.report(names[target])
            flat = [row for batch in warm for row in batch]
            flat += recovery_batch
            assert report["rows_seen"] == len(flat)
            assert report["epsilon"] == _offline_epsilon(flat)
            generation = fleet.shard_supervisor(target).generation
        fleet.stop()

    _RESULTS["kill_recovery"] = {
        "path": "SIGKILL one shard under load; wall-clock to the next "
        "acked batch on that shard (detect + breaker + restart + WAL "
        "replay)",
        "n_shards": N_SHARDS,
        "warm_batches": len(warm),
        "recovery_seconds": recovery_seconds,
        "shard_generation_after": generation,
        "cpu_count": os.cpu_count(),
    }
    assert recovery_seconds <= MAX_RECOVERY_SECONDS, (
        f"self-healing regressed: {recovery_seconds:.1f}s from SIGKILL "
        f"to the next acked batch > {MAX_RECOVERY_SECONDS:g}s"
    )


def test_zz_write_fleet_record():
    """Runs last (file order): persist the trajectory for future PRs."""
    assert "kill_recovery" in _RESULTS, "fleet benchmarks did not run"
    record = {
        "benchmark": "bench_fleet",
        "workload": "process-per-shard fleet behind the hash router: "
        "per-shard feeder threads ingesting 500-row batches with "
        "idempotency keys; bit-identity with dataset_edf asserted "
        "before timing; one shard SIGKILLed under load for the "
        "recovery number",
        "targets": {
            "fleet_ingest": {
                "min_rows_per_sec": TARGET_ROWS_PER_SEC,
                "guarded_when": "cpu_count >= 4",
            },
            "kill_recovery": {
                "max_recovery_seconds": MAX_RECOVERY_SECONDS,
                "guarded_when": "always",
            },
        },
        "paths": [
            _RESULTS[key]
            for key in ("fleet_ingest", "kill_recovery")
            if key in _RESULTS
        ],
    }
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    assert _RESULTS["kill_recovery"]["recovery_seconds"] <= MAX_RECOVERY_SECONDS
