"""Table 2: epsilon-EDF of the (synthetic) Adult training set for every
subset of {race, gender, nationality}.

Paper values: 0.219, 0.930, 1.03, 1.16, 1.21, 1.76, 2.14. The synthetic
cells are calibrated to the real Adult margins, so the measured values
match to the printed precision (see DESIGN.md).
"""

import pytest

from repro.core.empirical import dataset_edf
from repro.core.estimators import DirichletEstimator
from repro.core.subsets import subset_sweep
from repro.data.synthetic_adult import (
    OUTCOME,
    PAPER_TABLE2,
    PAPER_TEST_SMOOTHED_EPSILON,
    PROTECTED,
)
from repro.utils.formatting import render_table

PAPER_ROW_ORDER = [
    ("nationality",),
    ("race",),
    ("gender",),
    ("gender", "nationality"),
    ("race", "nationality"),
    ("race", "gender"),
    ("race", "gender", "nationality"),
]


def test_table2_subset_sweep(benchmark, record_table, adult_bare_train):
    """The full Table 2 computation: one crosstab + 7 marginalisations."""
    sweep = benchmark(
        subset_sweep,
        adult_bare_train,
        list(PROTECTED),
        OUTCOME,
    )
    rows = []
    for subset in PAPER_ROW_ORDER:
        target = PAPER_TABLE2[subset]
        measured = sweep.epsilon(subset)
        assert measured == pytest.approx(target, abs=0.005), subset
        rows.append([", ".join(subset), target, measured])
    assert sweep.theorem_violations() == []
    assert sweep.monotonicity_violations() == []

    record_table(
        "table2_adult_edf",
        render_table(
            ["Protected attributes", "paper eps-EDF", "measured eps-EDF"],
            rows,
            digits=4,
            title="Table 2: empirical differential fairness of the Adult "
            "training set (N = 32,561)",
        ),
    )


def test_table2_full_intersection_only(benchmark, adult_bare_train):
    """Timing of a single EDF measurement on the full intersection."""
    result = benchmark(
        dataset_edf, adult_bare_train, list(PROTECTED), OUTCOME
    )
    assert result.epsilon == pytest.approx(2.14, abs=0.005)


def test_table2_test_split_smoothed(benchmark, record_table, adult_bare_test):
    """The Table 3 caption's companion number: test data is 2.06-DF."""
    result = benchmark(
        dataset_edf,
        adult_bare_test,
        list(PROTECTED),
        OUTCOME,
        DirichletEstimator(1.0),
    )
    assert result.epsilon == pytest.approx(
        PAPER_TEST_SMOOTHED_EPSILON, abs=0.005
    )
    record_table(
        "table2_test_split",
        "\n".join(
            [
                "Smoothed (alpha = 1) EDF of the Adult test split",
                f"paper:    {PAPER_TEST_SMOOTHED_EPSILON}",
                f"measured: {result.epsilon:.4f}",
            ]
        ),
    )
