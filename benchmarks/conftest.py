"""Shared fixtures and reporting helpers for the benchmark harness.

Every bench regenerates one of the paper's tables or figures, asserts the
reproduction tolerance, records the rendered table under ``results/``, and
times the core computation with pytest-benchmark. Run with ``-s`` to see
the tables inline; they are always written to ``results/`` regardless.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.data.synthetic_adult import SyntheticAdult

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def record_table():
    """Callable fixture: write a rendered table to results/<name>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n--- {name} (saved to {path}) ---")
        print(text)

    return _record


@pytest.fixture(scope="session")
def adult_bare_train():
    """Synthetic Adult training split, protected attributes + income only."""
    return SyntheticAdult(seed=0, features=False).train()


@pytest.fixture(scope="session")
def adult_bare_test():
    return SyntheticAdult(seed=0, features=False).test()


@pytest.fixture(scope="session")
def adult_full():
    """Full-featured synthetic Adult train/test pair (Table 3)."""
    generator = SyntheticAdult(seed=0, features=True)
    return generator.train(), generator.test()
