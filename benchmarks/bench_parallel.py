"""Perf bench: multi-process sharded ingest vs the serial pass.

The execution engine's claim is twofold. *Correctness*: a
:class:`repro.engine.backends.ProcessPoolBackend` ingest — byte-range
shards of the CSV parsed by worker processes, tree-merged at the
coordinator — is **bit-identical** to :class:`SerialBackend` (same
count integers, same epsilon, same posterior summaries per seed); that
part is asserted unconditionally, on every machine. *Throughput*: CSV
parsing dominates ingestion and parallelises embarrassingly, so K
workers on K free cores approach a K-fold speedup; the acceptance
target is **>= 3x at 4 workers** on a >= 1M-row stream.

The speedup is physical parallelism, so the perf guard only asserts the
target when the hardware can express it (``os.cpu_count() >= 4``);
below that the measured numbers are still recorded — honestly — in
``BENCH_parallel.json`` along with the core count that produced them.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_parallel.py -q
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.audit.auditor import FairnessAuditor
from repro.engine.backends import (
    ContingencySpec,
    CsvSource,
    ProcessPoolBackend,
    SerialBackend,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
RECORD_PATH = REPO_ROOT / "BENCH_parallel.json"

N_ROWS = 1_000_000
WORKER_COUNTS = [2, 4]
TARGET_WORKERS = 4
TARGET_SPEEDUP = 3.0

PROTECTED = ("gender", "race", "nationality")
OUTCOME = "income"
LEVELS = {
    "gender": ["Female", "Male"],
    "race": ["White", "Black", "Asian-Pac-Islander", "Other"],
    "nationality": ["United-States", "Other"],
    "income": ["<=50K", ">50K"],
}

_RESULTS: dict[str, dict] = {}


@pytest.fixture(scope="module")
def million_row_csv(tmp_path_factory):
    """A >= 1M-row synthetic census-like stream written once per run."""
    rng = np.random.default_rng(20260728)
    cells = [
        rng.integers(len(LEVELS[name]), size=N_ROWS) for name in PROTECTED
    ]
    base = 0.15 + 0.1 * cells[0] + 0.05 * cells[1]
    outcome = (rng.random(N_ROWS) < np.clip(base, 0.02, 0.98)).astype(int)
    columns = [
        np.array(LEVELS[name], dtype=object)[codes]
        for name, codes in zip(PROTECTED, cells)
    ]
    columns.append(np.array(LEVELS[OUTCOME], dtype=object)[outcome])
    path = tmp_path_factory.mktemp("parallel") / "stream.csv"
    with path.open("w", encoding="utf-8") as handle:
        handle.write(",".join([*PROTECTED, OUTCOME]) + "\n")
        handle.writelines(
            ",".join(row) + "\n" for row in zip(*columns)
        )
    return path


def _epsilon(accumulator) -> float:
    auditor = FairnessAuditor(PROTECTED, OUTCOME)
    return auditor.audit_contingency(accumulator.snapshot()).epsilon


def _timed_build(backend, source, spec):
    start = time.perf_counter()
    accumulator = backend.build(source, spec)
    return time.perf_counter() - start, accumulator


@pytest.mark.perf
def test_pool_ingest_is_bit_identical_and_timed(million_row_csv):
    source = CsvSource(str(million_row_csv), columns=(*PROTECTED, OUTCOME))
    spec = ContingencySpec(
        PROTECTED,
        OUTCOME,
        tuple(tuple(LEVELS[name]) for name in PROTECTED),
        tuple(LEVELS[OUTCOME]),
    )
    serial_seconds, serial = _timed_build(SerialBackend(), source, spec)
    serial_epsilon = _epsilon(serial)
    _RESULTS["serial"] = {
        "workers": 1,
        "seconds": serial_seconds,
        "epsilon": serial_epsilon,
        "rows": serial.n_rows,
    }
    assert serial.n_rows == N_ROWS

    for workers in WORKER_COUNTS:
        pool_seconds, pooled = _timed_build(
            ProcessPoolBackend(workers), source, spec
        )
        # Correctness first, on every machine: identical integers in,
        # identical epsilon out.
        assert pooled.n_rows == serial.n_rows
        assert np.array_equal(
            pooled.snapshot().counts, serial.snapshot().counts
        )
        assert _epsilon(pooled) == serial_epsilon
        _RESULTS[f"pool{workers}"] = {
            "workers": workers,
            "seconds": pool_seconds,
            "epsilon": serial_epsilon,
            "rows": pooled.n_rows,
            "speedup_vs_serial": serial_seconds / pool_seconds,
        }


def test_pool_posterior_summaries_match_per_seed(million_row_csv):
    """Posterior audit of the merged counts matches the serial one bitwise."""
    source = CsvSource(
        str(million_row_csv), columns=(*PROTECTED, OUTCOME), chunk_rows=65536
    )
    auditor = FairnessAuditor(PROTECTED, OUTCOME, posterior_samples=50, seed=9)
    serial = auditor.audit_csv(source)
    pooled = auditor.audit_csv(source, backend=ProcessPoolBackend(2))
    assert pooled.posterior.mean == serial.posterior.mean
    assert pooled.posterior.quantiles == serial.posterior.quantiles
    assert pooled.to_text() == serial.to_text()


@pytest.mark.perf
def test_zz_speedup_guard_and_record(million_row_csv):
    """Runs last (file order): persist the record, then enforce the target."""
    assert "serial" in _RESULTS, "timed ingest did not run"
    record = {
        "benchmark": "bench_parallel",
        "workload": "cumulative contingency ingest of a synthetic census "
        "CSV stream: ProcessPoolBackend (byte-range shards parsed by "
        "worker processes, StreamingContingency states tree-merged at the "
        "coordinator) vs SerialBackend (one ordered chunk loop), "
        "bit-identical epsilon asserted before timing",
        "n_rows": N_ROWS,
        "cpu_count": os.cpu_count(),
        "target": {
            "workers": TARGET_WORKERS,
            "min_speedup": TARGET_SPEEDUP,
            "note": "physical parallelism: asserted only when "
            "cpu_count >= target workers",
        },
        "results": [_RESULTS[key] for key in sorted(_RESULTS)],
    }
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    cores = os.cpu_count() or 1
    if cores < TARGET_WORKERS:
        pytest.skip(
            f"speedup target needs >= {TARGET_WORKERS} cores, machine has "
            f"{cores}; bit-identity was still asserted and the measured "
            "timings were recorded"
        )
    speedup = _RESULTS[f"pool{TARGET_WORKERS}"]["speedup_vs_serial"]
    assert speedup >= TARGET_SPEEDUP, (
        f"acceptance target missed: {speedup:.2f}x < {TARGET_SPEEDUP}x at "
        f"{TARGET_WORKERS} workers"
    )
