"""Perf bench: pipelined shared-memory ingest and the columnar cache.

The execution engine's claim is threefold. *Correctness*: every
:class:`repro.engine.backends.ProcessPoolBackend` mode — blocking or
pipelined, queue or shared-memory transport, parsed CSV or ``.rccol``
column cache — is **bit-identical** to :class:`SerialBackend` (same
count integers, same epsilon, same posterior summaries per seed); that
part is asserted unconditionally, on every machine. *Parallel
throughput*: CSV parsing dominates ingestion and parallelises
embarrassingly, and the pipelined coordinator (bounded in-flight
window, count tensors returned through a shared-memory ring instead of
the pickled result queue) removes the merge barrier, so K workers on K
free cores approach a K-fold speedup; the acceptance target is
**>= 3x at 4 workers** on a >= 1M-row stream. *Warm re-audits*: once
the column cache exists, re-auditing the unchanged file skips CSV
parsing entirely — mmap'd code arrays straight into the count kernel —
with an acceptance target of **>= 10x over the cold parse**, asserted
on every machine (it is an I/O-shape win, not a core-count win).

The parallel speedup is physical parallelism, so that guard only
asserts the target when the hardware can express it
(``os.cpu_count() >= 4``); below that the measured numbers are still
recorded — honestly — in ``BENCH_parallel.json`` along with the core
count that produced them. The warm-cache guard is never gated.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_parallel.py -q
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.audit.auditor import FairnessAuditor
from repro.engine.backends import (
    ContingencySpec,
    CsvSource,
    ProcessPoolBackend,
    SerialBackend,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
RECORD_PATH = REPO_ROOT / "BENCH_parallel.json"

N_ROWS = 1_000_000
WORKER_COUNTS = [2, 4]
TARGET_WORKERS = 4
TARGET_SPEEDUP = 3.0
WARM_CACHE_TARGET_SPEEDUP = 10.0

PROTECTED = ("gender", "race", "nationality")
OUTCOME = "income"
LEVELS = {
    "gender": ["Female", "Male"],
    "race": ["White", "Black", "Asian-Pac-Islander", "Other"],
    "nationality": ["United-States", "Other"],
    "income": ["<=50K", ">50K"],
}

_RESULTS: dict[str, dict] = {}


@pytest.fixture(scope="module")
def million_row_csv(tmp_path_factory):
    """A >= 1M-row synthetic census-like stream written once per run."""
    rng = np.random.default_rng(20260728)
    cells = [
        rng.integers(len(LEVELS[name]), size=N_ROWS) for name in PROTECTED
    ]
    base = 0.15 + 0.1 * cells[0] + 0.05 * cells[1]
    outcome = (rng.random(N_ROWS) < np.clip(base, 0.02, 0.98)).astype(int)
    columns = [
        np.array(LEVELS[name], dtype=object)[codes]
        for name, codes in zip(PROTECTED, cells)
    ]
    columns.append(np.array(LEVELS[OUTCOME], dtype=object)[outcome])
    path = tmp_path_factory.mktemp("parallel") / "stream.csv"
    with path.open("w", encoding="utf-8") as handle:
        handle.write(",".join([*PROTECTED, OUTCOME]) + "\n")
        handle.writelines(
            ",".join(row) + "\n" for row in zip(*columns)
        )
    return path


def _spec() -> ContingencySpec:
    return ContingencySpec(
        PROTECTED,
        OUTCOME,
        tuple(tuple(LEVELS[name]) for name in PROTECTED),
        tuple(LEVELS[OUTCOME]),
    )


def _source(path, cache=None) -> CsvSource:
    return CsvSource(
        str(path),
        columns=(*PROTECTED, OUTCOME),
        column_cache=None if cache is None else str(cache),
    )


def _epsilon(accumulator) -> float:
    auditor = FairnessAuditor(PROTECTED, OUTCOME)
    return auditor.audit_contingency(accumulator.snapshot()).epsilon


def _timed_build(backend, source, spec):
    start = time.perf_counter()
    accumulator = backend.build(source, spec)
    return time.perf_counter() - start, accumulator


def _record(key: str, seconds: float, accumulator, serial_row, **extra):
    """Assert bit-identity against the serial baseline, then record."""
    assert accumulator.n_rows == serial_row["rows"]
    assert np.array_equal(
        accumulator.snapshot().counts, serial_row["_counts"]
    )
    assert _epsilon(accumulator) == serial_row["epsilon"]
    _RESULTS[key] = {
        "seconds": seconds,
        "epsilon": serial_row["epsilon"],
        "rows": accumulator.n_rows,
        "speedup_vs_serial_cold": serial_row["seconds"] / seconds,
        **extra,
    }


@pytest.mark.perf
def test_pool_ingest_is_bit_identical_and_timed(million_row_csv):
    source = _source(million_row_csv)
    spec = _spec()
    serial_seconds, serial = _timed_build(SerialBackend(), source, spec)
    assert serial.n_rows == N_ROWS
    _RESULTS["serial_cold"] = {
        "workers": 1,
        "cache": "cold (CSV parse)",
        "seconds": serial_seconds,
        "epsilon": _epsilon(serial),
        "rows": serial.n_rows,
        "_counts": serial.snapshot().counts,
    }
    serial_row = _RESULTS["serial_cold"]

    # The PR-4 blocking coordinator (one shard per worker, full barrier,
    # pickled result queue): the baseline the pipelined engine replaces.
    with ProcessPoolBackend(
        TARGET_WORKERS, pipelined=False, use_shared_memory=False
    ) as backend:
        seconds, pooled = _timed_build(backend, source, spec)
    _record(
        f"pool{TARGET_WORKERS}_blocking",
        seconds,
        pooled,
        serial_row,
        workers=TARGET_WORKERS,
        mode="blocking barrier, queue transport",
        cache="cold (CSV parse)",
    )

    # The pipelined shared-memory engine, at each worker count.
    for workers in WORKER_COUNTS:
        with ProcessPoolBackend(workers) as backend:
            seconds, pooled = _timed_build(backend, source, spec)
        _record(
            f"pool{workers}_pipelined",
            seconds,
            pooled,
            serial_row,
            workers=workers,
            mode="pipelined window, shared-memory ring transport",
            cache="cold (CSV parse)",
        )


@pytest.mark.perf
def test_column_cache_cold_build_and_warm_reaudit(million_row_csv, tmp_path):
    assert "serial_cold" in _RESULTS, "timed serial ingest did not run"
    serial_row = _RESULTS["serial_cold"]
    spec = _spec()
    cache_path = tmp_path / "stream.rccol"

    # Cold: first cached run pays the parse PLUS the cache write.
    seconds, built = _timed_build(
        SerialBackend(), _source(million_row_csv, cache_path), spec
    )
    assert cache_path.exists()
    _record(
        "serial_cache_cold_build",
        seconds,
        built,
        serial_row,
        workers=1,
        cache="cold (parse + .rccol build)",
    )

    # Warm: every later audit of the unchanged file skips parsing.
    seconds, warmed = _timed_build(
        SerialBackend(), _source(million_row_csv, cache_path), spec
    )
    _record(
        "serial_cache_warm",
        seconds,
        warmed,
        serial_row,
        workers=1,
        cache="warm (mmap .rccol)",
    )

    # Warm + pipelined pool: workers read mmap row ranges, no parsing.
    with ProcessPoolBackend(TARGET_WORKERS) as backend:
        seconds, pooled = _timed_build(
            backend, _source(million_row_csv, cache_path), spec
        )
    _record(
        f"pool{TARGET_WORKERS}_cache_warm",
        seconds,
        pooled,
        serial_row,
        workers=TARGET_WORKERS,
        mode="pipelined window, shared-memory ring transport",
        cache="warm (mmap .rccol)",
    )


def test_pool_posterior_summaries_match_per_seed(million_row_csv, tmp_path):
    """Posterior audit of the merged counts matches the serial one bitwise."""
    source = CsvSource(
        str(million_row_csv), columns=(*PROTECTED, OUTCOME), chunk_rows=65536
    )
    auditor = FairnessAuditor(PROTECTED, OUTCOME, posterior_samples=50, seed=9)
    serial = auditor.audit_csv(source)
    with ProcessPoolBackend(2) as backend:
        pooled = auditor.audit_csv(source, backend=backend)
    cached = auditor.audit_csv(
        str(million_row_csv), column_cache=tmp_path / "posterior.rccol"
    )
    for candidate in (pooled, cached):
        assert candidate.posterior.mean == serial.posterior.mean
        assert candidate.posterior.quantiles == serial.posterior.quantiles
        assert candidate.to_text() == serial.to_text()


@pytest.mark.perf
def test_zz_speedup_guards_and_record(million_row_csv):
    """Runs last (file order): persist the record, then enforce targets."""
    assert "serial_cold" in _RESULTS, "timed ingest did not run"
    results = {
        key: {k: v for k, v in row.items() if not k.startswith("_")}
        for key, row in sorted(_RESULTS.items())
    }
    record = {
        "benchmark": "bench_parallel",
        "workload": "cumulative contingency ingest of a synthetic census "
        "CSV stream. Modes: SerialBackend (one ordered chunk loop); "
        "ProcessPoolBackend blocking (one shard per worker, full barrier, "
        "pickled result queue — the engine this PR replaces); "
        "ProcessPoolBackend pipelined (bounded in-flight window, count "
        "tensors returned through a CRC-validated shared-memory ring); "
        "and both serial and pipelined over a warm .rccol column cache "
        "(mmap'd factorised codes, no CSV parsing). Bit-identical counts "
        "and epsilon asserted against the serial pass before every "
        "timing is recorded.",
        "n_rows": N_ROWS,
        "cpu_count": os.cpu_count(),
        "targets": {
            "parallel": {
                "workers": TARGET_WORKERS,
                "min_speedup": TARGET_SPEEDUP,
                "note": "pipelined pool vs cold serial parse; physical "
                "parallelism: asserted only when cpu_count >= target "
                "workers",
            },
            "warm_cache": {
                "min_speedup": WARM_CACHE_TARGET_SPEEDUP,
                "note": "warm-cache serial re-audit vs cold serial parse; "
                "asserted unconditionally on every machine",
            },
        },
        "results": results,
    }
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")

    # Warm-cache guard: ungated. Skipping the parse must pay for itself
    # regardless of core count.
    warm = results["serial_cache_warm"]["speedup_vs_serial_cold"]
    assert warm >= WARM_CACHE_TARGET_SPEEDUP, (
        f"warm-cache re-audit target missed: {warm:.2f}x < "
        f"{WARM_CACHE_TARGET_SPEEDUP}x over the cold parse"
    )

    # Parallel guard: hardware-gated.
    cores = os.cpu_count() or 1
    if cores < TARGET_WORKERS:
        pytest.skip(
            f"parallel speedup target needs >= {TARGET_WORKERS} cores, "
            f"machine has {cores}; bit-identity and the warm-cache target "
            "were still asserted and the measured timings were recorded"
        )
    speedup = results[f"pool{TARGET_WORKERS}_pipelined"][
        "speedup_vs_serial_cold"
    ]
    assert speedup >= TARGET_SPEEDUP, (
        f"acceptance target missed: {speedup:.2f}x < {TARGET_SPEEDUP}x at "
        f"{TARGET_WORKERS} workers"
    )
