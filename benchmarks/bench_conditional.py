"""Extension bench: conditional (equalized-odds-style) differential
fairness — the Section 7.1 future-work definition.

Measures the Table 3 classifier both unconditionally (the paper's Table 3
number) and conditionally on the true label, showing the two definitions
disagree exactly where the related-work section says they should: a
classifier can have matched error profiles while distributing outcomes
very unequally, and vice versa.
"""

import numpy as np
import pytest

from repro.core.conditional import conditional_edf
from repro.core.empirical import dataset_edf
from repro.core.estimators import DirichletEstimator
from repro.data.synthetic_adult import OUTCOME, PROTECTED
from repro.learn.logistic_regression import LogisticRegression
from repro.learn.preprocessing import TableVectorizer
from repro.tabular.column import Column
from repro.tabular.table import Table
from repro.utils.formatting import render_table


@pytest.fixture(scope="module")
def audited_predictions(adult_full):
    """Test table with a prediction column from the 'none' classifier."""
    train, test = adult_full
    rng = np.random.default_rng(0)
    train = train.take(rng.choice(train.n_rows, size=8000, replace=False))
    vectorizer = TableVectorizer(exclude=[OUTCOME, *PROTECTED]).fit(train)
    model = LogisticRegression(l2=1e-4).fit(
        vectorizer.transform(train), train.column(OUTCOME).to_list()
    )
    predictions = model.predict(vectorizer.transform(test))
    return test.with_column(
        Column.categorical(
            "prediction", predictions.tolist(), levels=["<=50K", ">50K"]
        )
    )


def test_conditional_vs_unconditional(benchmark, record_table, audited_predictions):
    table = audited_predictions
    estimator = DirichletEstimator(1.0)

    conditional = benchmark(
        conditional_edf,
        table,
        list(PROTECTED),
        "prediction",
        OUTCOME,
        estimator,
    )
    unconditional = dataset_edf(
        table, list(PROTECTED), "prediction", estimator
    )

    rows = [
        ["unconditional (Def 3.1 / Table 3)", unconditional.epsilon],
        [
            f"conditional on {OUTCOME} = <=50K",
            conditional.result("<=50K").epsilon,
        ],
        [
            f"conditional on {OUTCOME} = >50K",
            conditional.result(">50K").epsilon,
        ],
        ["conditional epsilon (max over labels)", conditional.epsilon],
    ]
    record_table(
        "conditional_df",
        render_table(
            ["measurement", "epsilon"],
            rows,
            digits=4,
            title="Conditional (equalized-odds-style) differential fairness "
            "— Section 7.1 extension",
        ),
    )
    assert conditional.epsilon > 0
    assert unconditional.epsilon > 0


def test_perfect_predictor_separates_the_definitions(benchmark, record_table):
    """An oracle classifier: conditionally perfectly fair, unconditionally
    as unfair as the data itself — the crux of the parity-vs-odds debate
    in the paper's related work."""
    rows = (
        [("a", "1", "1")] * 90 + [("a", "0", "0")] * 10
        + [("b", "1", "1")] * 10 + [("b", "0", "0")] * 90
    )
    table = Table.from_rows(["group", "label", "pred"], rows)

    def measure():
        conditional = conditional_edf(table, "group", "pred", given="label")
        unconditional = dataset_edf(table, protected="group", outcome="pred")
        return conditional.epsilon, unconditional.epsilon

    conditional_eps, unconditional_eps = benchmark(measure)
    assert conditional_eps == pytest.approx(0.0)
    assert unconditional_eps > 2.0
    record_table(
        "conditional_df_oracle",
        "\n".join(
            [
                "Oracle classifier on data with a 9:1 base-rate disparity:",
                f"conditional epsilon (equalized-odds-style): "
                f"{conditional_eps:.4f}",
                f"unconditional epsilon (differential fairness): "
                f"{unconditional_eps:.4f}",
                "",
                "Matching error profiles does not distribute outcomes "
                "equitably — the paper's critique of equalized odds "
                "as 'a relatively weak notion of fairness from a civil "
                "rights perspective'.",
            ]
        ),
    )
