"""Tests for the calibrated synthetic Adult data — the Table 2 numbers."""

import numpy as np
import pytest

from repro.core.empirical import dataset_edf
from repro.core.estimators import DirichletEstimator
from repro.core.subsets import subset_sweep
from repro.data.calibration import (
    REAL_TRAIN_MARGINS,
    cells_epsilon,
    marginalize_cells,
    verify_margins,
)
from repro.data.synthetic_adult import (
    FROZEN_TEST_CELLS,
    FROZEN_TRAIN_CELLS,
    OUTCOME,
    PAPER_TABLE2,
    PAPER_TEST_SMOOTHED_EPSILON,
    PROTECTED,
    SyntheticAdult,
)
from repro.tabular.crosstab import crosstab


class TestFrozenCells:
    def test_train_margins_are_real_adult(self):
        """The frozen training cells reproduce every documented margin of
        the real Adult training split exactly."""
        verify_margins(FROZEN_TRAIN_CELLS, REAL_TRAIN_MARGINS)

    def test_train_total(self):
        assert sum(n for n, _ in FROZEN_TRAIN_CELLS.values()) == 32561
        assert sum(k for _, k in FROZEN_TRAIN_CELLS.values()) == 7841

    def test_test_total(self):
        assert sum(n for n, _ in FROZEN_TEST_CELLS.values()) == 16281

    def test_all_sixteen_cells_present(self):
        assert len(FROZEN_TRAIN_CELLS) == 16
        assert len(FROZEN_TEST_CELLS) == 16

    def test_positives_bounded_by_members(self):
        for cells in (FROZEN_TRAIN_CELLS, FROZEN_TEST_CELLS):
            for key, (members, positives) in cells.items():
                assert 0 <= positives <= members, key

    @pytest.mark.parametrize("subset,target", list(PAPER_TABLE2.items()))
    def test_table2_epsilons(self, subset, target):
        axes = {"gender": 0, "race": 1, "nationality": 2}
        keep = [axes[name] for name in subset]
        epsilon = cells_epsilon(marginalize_cells(FROZEN_TRAIN_CELLS, keep))
        assert epsilon == pytest.approx(target, abs=0.005)

    def test_test_smoothed_epsilon(self):
        epsilon = cells_epsilon(FROZEN_TEST_CELLS, alpha=1.0)
        assert epsilon == pytest.approx(PAPER_TEST_SMOOTHED_EPSILON, abs=0.005)


class TestGeneratedTables:
    @pytest.fixture(scope="class")
    def bare(self) -> SyntheticAdult:
        return SyntheticAdult(seed=0, features=False)

    def test_row_counts(self, bare):
        assert bare.train().n_rows == 32561
        assert bare.test().n_rows == 16281

    def test_contingency_matches_frozen(self, bare):
        contingency = crosstab(bare.train(), list(PROTECTED), OUTCOME)
        for key, (members, positives) in FROZEN_TRAIN_CELLS.items():
            assert contingency.cell(key, ">50K") == positives
            assert contingency.cell(key, "<=50K") == members - positives

    def test_sweep_matches_paper_table2(self, bare):
        sweep = subset_sweep(
            bare.train(), protected=list(PROTECTED), outcome=OUTCOME
        )
        for subset, target in PAPER_TABLE2.items():
            assert sweep.epsilon(subset) == pytest.approx(target, abs=0.005)

    def test_test_split_smoothed_epsilon(self, bare):
        result = dataset_edf(
            bare.test(),
            protected=list(PROTECTED),
            outcome=OUTCOME,
            estimator=DirichletEstimator(1.0),
        )
        assert result.epsilon == pytest.approx(2.06, abs=0.005)

    def test_deterministic_given_seed(self):
        first = SyntheticAdult(seed=3, features=False).train()
        second = SyntheticAdult(seed=3, features=False).train()
        assert first.to_dict() == second.to_dict()

    def test_seed_changes_shuffle_not_counts(self, bare):
        other = SyntheticAdult(seed=99, features=False).train()
        contingency = crosstab(other, list(PROTECTED), OUTCOME)
        for key, (members, positives) in FROZEN_TRAIN_CELLS.items():
            assert contingency.cell(key, ">50K") == positives


class TestFeatureGeneration:
    @pytest.fixture(scope="class")
    def train(self):
        return SyntheticAdult(seed=0, features=True).train()

    def test_has_adult_schema(self, train):
        assert train.column_names == [
            "age", "workclass", "fnlwgt", "education", "education_num",
            "marital_status", "occupation", "relationship", "race", "gender",
            "capital_gain", "capital_loss", "hours_per_week", "nationality",
            "income",
        ]

    def test_numeric_ranges(self, train):
        age = train.column("age").values
        assert age.min() >= 17 and age.max() <= 90
        hours = train.column("hours_per_week").values
        assert hours.min() >= 1 and hours.max() <= 99
        edu = train.column("education_num").values
        assert edu.min() >= 1 and edu.max() <= 16

    def test_education_label_consistent_with_num(self, train):
        from repro.data.census_features import EDUCATION_LEVELS

        nums = train.column("education_num").values.astype(int)
        labels = train.column("education").to_list()
        for num, label in list(zip(nums, labels))[:500]:
            assert EDUCATION_LEVELS[num - 1] == label

    def test_features_correlate_with_income(self, train):
        """The label signal exists: positives have more education."""
        positives = train.where("income", ">50K")
        negatives = train.where("income", "<=50K")
        gap = (
            positives.column("education_num").values.mean()
            - negatives.column("education_num").values.mean()
        )
        assert gap > 1.0

    def test_married_rate_higher_for_positives(self, train):
        positives = train.where("income", ">50K")
        negatives = train.where("income", "<=50K")
        married = lambda t: np.mean(
            t.column("marital_status").equals_mask("Married-civ-spouse")
        )
        assert married(positives) > married(negatives) + 0.2

    def test_capital_gain_mostly_zero(self, train):
        gains = train.column("capital_gain").values
        assert (gains == 0).mean() > 0.8
        assert gains.max() <= 99999

    def test_relationship_consistent_with_gender(self, train):
        husbands = train.where("relationship", "Husband")
        assert set(husbands.column("gender").to_list()) == {"Male"}
        wives = train.where("relationship", "Wife")
        assert set(wives.column("gender").to_list()) == {"Female"}

    def test_protected_counts_unaffected_by_features(self, train):
        contingency = crosstab(train, list(PROTECTED), OUTCOME)
        key = ("Male", "White", "United-States")
        assert contingency.cell(key, ">50K") == FROZEN_TRAIN_CELLS[key][1]
