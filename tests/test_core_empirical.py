"""Tests for repro.core.empirical (dataset EDF, Definitions 4.1/4.2)."""

import math

import pytest

from repro.core.empirical import dataset_edf, edf_from_contingency
from repro.core.estimators import DirichletEstimator
from repro.exceptions import ValidationError
from repro.tabular.crosstab import ContingencyTable, crosstab
from repro.tabular.table import Table


class TestDatasetEdf:
    def test_known_value(self, hiring_table):
        result = dataset_edf(
            hiring_table, protected=["gender", "race"], outcome="hired"
        )
        # Rates: 0.75, 0.25, 0.5, 0.5 -> eps = log(0.75/0.25) = log 3.
        assert result.epsilon == pytest.approx(math.log(3))

    def test_single_protected_string(self, hiring_table):
        result = dataset_edf(hiring_table, protected="gender", outcome="hired")
        # Gender A: 4/8, B: 4/8 -> perfectly fair marginally.
        assert result.epsilon == 0.0

    def test_accepts_contingency_directly(self, hiring_table):
        contingency = crosstab(hiring_table, ["gender", "race"], "hired")
        assert dataset_edf(contingency).epsilon == pytest.approx(math.log(3))

    def test_contingency_with_names_rejected(self, hiring_table):
        contingency = crosstab(hiring_table, ["gender"], "hired")
        with pytest.raises(ValidationError):
            dataset_edf(contingency, protected=["gender"], outcome="hired")

    def test_table_requires_names(self, hiring_table):
        with pytest.raises(ValidationError):
            dataset_edf(hiring_table)

    def test_smoothed_differs_from_mle(self, hiring_table):
        raw = dataset_edf(
            hiring_table, protected=["gender", "race"], outcome="hired"
        )
        smoothed = dataset_edf(
            hiring_table,
            protected=["gender", "race"],
            outcome="hired",
            estimator=DirichletEstimator(1.0),
        )
        assert smoothed.epsilon < raw.epsilon  # shrinkage toward uniform

    def test_alpha_shorthand(self, hiring_table):
        explicit = dataset_edf(
            hiring_table,
            protected=["gender", "race"],
            outcome="hired",
            estimator=DirichletEstimator(1.0),
        )
        shorthand = dataset_edf(
            hiring_table,
            protected=["gender", "race"],
            outcome="hired",
            estimator=1.0,
        )
        assert shorthand.epsilon == explicit.epsilon

    def test_result_metadata(self, hiring_table):
        result = dataset_edf(
            hiring_table, protected=["gender", "race"], outcome="hired"
        )
        assert result.attribute_names == ("gender", "race")
        assert result.outcome_levels == ("no", "yes")
        assert result.group_mass.sum() == 16

    def test_zero_count_outcome_gives_inf(self):
        table = Table.from_dict(
            {"g": ["a", "a", "b", "b"], "y": ["no", "no", "yes", "no"]}
        )
        result = dataset_edf(table, protected="g", outcome="y")
        assert result.epsilon == math.inf

    def test_smoothing_rescues_zero_counts(self):
        table = Table.from_dict(
            {"g": ["a", "a", "b", "b"], "y": ["no", "no", "yes", "no"]}
        )
        result = dataset_edf(table, protected="g", outcome="y", estimator=1.0)
        assert math.isfinite(result.epsilon)


class TestEdfFromContingency:
    def test_counts_scale_invariance(self, hiring_table):
        """Epsilon depends only on the rates, not the sample size."""
        contingency = crosstab(hiring_table, ["gender", "race"], "hired")
        scaled = contingency.scale(1000.0)
        assert edf_from_contingency(scaled).epsilon == pytest.approx(
            edf_from_contingency(contingency).epsilon
        )

    def test_empty_groups_excluded(self):
        contingency = ContingencyTable.from_group_counts(
            {("a",): [5, 5], ("b",): [0, 0], ("c",): [2, 8]},
            factor_names=["g"],
            outcome_name="y",
            outcome_levels=["no", "yes"],
        )
        result = edf_from_contingency(contingency)
        # The "no" outcome dominates: log(0.5 / 0.2).
        assert result.epsilon == pytest.approx(math.log(0.5 / 0.2))
        assert ("b",) not in result.populated_groups()
