"""Tests for the CLI and the markdown report renderer."""

import io

import pytest

from repro.audit.auditor import FairnessAuditor
from repro.audit.report import (
    markdown_report,
    render_classifier_report,
    render_dataset_report,
)
from repro.cli import main
from repro.tabular.csv_io import write_csv
from repro.tabular.table import Table


@pytest.fixture
def csv_file(tmp_path, hiring_table):
    path = tmp_path / "hiring.csv"
    write_csv(hiring_table, path)
    return str(path)


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestCliAudit:
    def test_plain_audit(self, csv_file):
        code, output = run_cli(
            ["audit", csv_file, "--protected", "gender,race", "--outcome", "hired"]
        )
        assert code == 0
        assert "epsilon" in output.lower()
        assert "gender, race" in output

    def test_smoothed_audit(self, csv_file):
        code, output = run_cli(
            [
                "audit", csv_file,
                "--protected", "gender,race",
                "--outcome", "hired",
                "--alpha", "1.0",
            ]
        )
        assert code == 0
        assert "Dirichlet" in output

    def test_markdown_audit(self, csv_file):
        code, output = run_cli(
            [
                "audit", csv_file,
                "--protected", "gender,race",
                "--outcome", "hired",
                "--markdown",
            ]
        )
        assert code == 0
        assert output.startswith("# Differential fairness report")
        assert "| protected attributes |" in output
        assert "Related-work baselines" in output

    def test_posterior_samples(self, csv_file):
        code, output = run_cli(
            [
                "audit", csv_file,
                "--protected", "gender",
                "--outcome", "hired",
                "--posterior-samples", "25",
            ]
        )
        assert code == 0
        assert "posterior epsilon" in output

    def test_missing_file(self):
        code, _ = run_cli(
            ["audit", "/nonexistent.csv", "--protected", "a", "--outcome", "b"]
        )
        assert code == 1

    def test_unknown_column(self, csv_file):
        code, _ = run_cli(
            ["audit", csv_file, "--protected", "ghost", "--outcome", "hired"]
        )
        assert code == 1

    def test_empty_protected(self, csv_file):
        code, _ = run_cli(
            ["audit", csv_file, "--protected", " , ", "--outcome", "hired"]
        )
        assert code == 2


class TestCliAuditStream:
    def test_stream_matches_one_shot_final_report(self, csv_file):
        """Cumulative audit-stream ends on the same report as plain audit."""
        _, one_shot = run_cli(
            ["audit", csv_file, "--protected", "gender,race", "--outcome", "hired"]
        )
        code, streamed = run_cli(
            [
                "audit-stream", csv_file,
                "--protected", "gender,race",
                "--outcome", "hired",
                "--chunk-rows", "5",
            ]
        )
        assert code == 0
        assert streamed.endswith(one_shot)
        assert streamed.startswith("chunk 1:")

    def test_windowed_trace(self, csv_file):
        code, output = run_cli(
            [
                "audit-stream", csv_file,
                "--protected", "gender",
                "--outcome", "hired",
                "--chunk-rows", "4",
                "--window", "8",
            ]
        )
        assert code == 0
        assert "(window 8/8)" in output

    def test_cumulative_trace_labels_total(self, csv_file):
        code, output = run_cli(
            [
                "audit-stream", csv_file,
                "--protected", "gender",
                "--outcome", "hired",
                "--chunk-rows", "7",
            ]
        )
        assert code == 0
        assert "(total 7)" in output
        assert "(total 14)" in output

    def test_markdown_report(self, csv_file):
        code, output = run_cli(
            [
                "audit-stream", csv_file,
                "--protected", "gender,race",
                "--outcome", "hired",
                "--window", "10",
                "--markdown",
            ]
        )
        assert code == 0
        assert "# Differential fairness report (last 10 rows)" in output

    def test_missing_file(self):
        code, _ = run_cli(
            ["audit-stream", "/nonexistent.csv", "--protected", "a", "--outcome", "b"]
        )
        assert code == 1

    def test_unknown_column(self, csv_file):
        code, _ = run_cli(
            ["audit-stream", csv_file, "--protected", "ghost", "--outcome", "hired"]
        )
        assert code == 1

    def test_empty_protected(self, csv_file):
        code, _ = run_cli(
            ["audit-stream", csv_file, "--protected", " , ", "--outcome", "hired"]
        )
        assert code == 2

    def test_negative_window(self, csv_file):
        code, _ = run_cli(
            [
                "audit-stream", csv_file,
                "--protected", "gender",
                "--outcome", "hired",
                "--window", "-1",
            ]
        )
        assert code == 2


class TestStreamFlagValidation:
    """--workers/--window (and checkpoint flag) combinations are rejected
    up front with a message naming the flags, not by a deep engine error."""

    BASE = ["--protected", "gender", "--outcome", "hired"]

    @pytest.mark.parametrize(
        "ordering",
        [
            ["--workers", "2", "--window", "8"],
            ["--window", "8", "--workers", "2"],
        ],
        ids=["workers-first", "window-first"],
    )
    def test_workers_with_window_rejected_in_both_orders(
        self, csv_file, ordering, capsys
    ):
        code, output = run_cli(["audit-stream", csv_file, *self.BASE, *ordering])
        assert code == 2  # usage error, not the engine's exit code 1
        assert output == ""  # nothing ran: rejected before ingestion
        error = capsys.readouterr().err
        assert "--workers" in error and "--window" in error
        assert "row order" in error

    def test_workers_alone_and_window_alone_still_work(self, csv_file):
        for flags in (["--workers", "1", "--window", "8"], ["--workers", "1"]):
            code, _ = run_cli(["audit-stream", csv_file, *self.BASE, *flags])
            assert code == 0

    def test_checkpoint_keep_requires_checkpoint(self, csv_file, capsys):
        code, _ = run_cli(
            ["audit-stream", csv_file, *self.BASE, "--checkpoint-keep", "2"]
        )
        assert code == 2
        assert "--checkpoint" in capsys.readouterr().err

    def test_negative_checkpoint_keep_rejected(self, csv_file, tmp_path, capsys):
        code, _ = run_cli(
            [
                "audit-stream", csv_file, *self.BASE,
                "--checkpoint", str(tmp_path / "a.rcpk"),
                "--checkpoint-keep", "-1",
            ]
        )
        assert code == 2
        assert "--checkpoint-keep" in capsys.readouterr().err

    def test_checkpoint_keep_writes_generations(self, csv_file, tmp_path):
        path = tmp_path / "a.rcpk"
        code, _ = run_cli(
            [
                "audit-stream", csv_file, *self.BASE,
                "--chunk-rows", "4",
                "--checkpoint", str(path),
                "--checkpoint-keep", "2",
            ]
        )
        assert code == 0
        assert path.exists()
        assert path.with_name("a.rcpk.1").exists()
        assert path.with_name("a.rcpk.2").exists()


class TestCliExamples:
    def test_worked_example(self):
        code, output = run_cli(["worked-example"])
        assert code == 0
        assert "2.337" in output

    def test_simpsons(self):
        code, output = run_cli(["simpsons"])
        assert code == 0
        assert "3.0220" in output

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestReports:
    def test_dataset_report_structure(self, hiring_table):
        auditor = FairnessAuditor(["gender", "race"], "hired")
        audit = auditor.audit_dataset(hiring_table)
        report = render_dataset_report(
            audit, dataset_name="hiring", n_rows=hiring_table.n_rows
        )
        assert "# Differential fairness report" in report
        assert "hiring" in report
        assert "Theorem 3.2" in report
        assert "Equation 4" in report
        assert "binding comparison" in report

    def test_dataset_report_with_posterior(self, hiring_table):
        auditor = FairnessAuditor(
            ["gender", "race"], "hired", posterior_samples=20, seed=0
        )
        report = render_dataset_report(auditor.audit_dataset(hiring_table))
        assert "posterior epsilon" in report

    def test_classifier_report(self, hiring_table):
        import numpy as np

        from repro.learn.logistic_regression import LogisticRegression
        from repro.learn.preprocessing import TableVectorizer

        vectorizer = TableVectorizer(
            categorical=["gender", "race"], numeric=[]
        ).fit(hiring_table)
        model = LogisticRegression().fit(
            vectorizer.transform(hiring_table),
            hiring_table.column("hired").to_list(),
        )
        auditor = FairnessAuditor(["gender", "race"], "hired", estimator=1.0)
        audit = auditor.audit_classifier(
            model, hiring_table, vectorizer=vectorizer
        )
        report = render_classifier_report(audit)
        assert "bias amplification" in report
        assert "error rate" in report

    def test_markdown_report_one_call(self, hiring_table):
        report = markdown_report(
            hiring_table,
            protected=["gender", "race"],
            outcome="hired",
            dataset_name="hiring",
        )
        assert "demographic parity" in report
        assert "80% rule" in report
