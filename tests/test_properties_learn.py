"""Property-based tests for the learning stack and mechanism algebra."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.core.epsilon import epsilon_from_probabilities
from repro.learn.logistic_regression import LogisticRegression, sigmoid
from repro.learn.naive_bayes import CategoricalNB
from repro.learn.postprocess import GroupMixingPostprocessor
from repro.mechanisms.base import ConstantMechanism, MixtureMechanism


def finite_matrices(rows=st.integers(10, 60), cols=st.integers(1, 4)):
    return st.tuples(rows, cols).flatmap(
        lambda shape: npst.arrays(
            dtype=np.float64,
            shape=shape,
            elements=st.floats(-5.0, 5.0, allow_nan=False),
        )
    )


class TestLogisticRegressionProperties:
    @given(finite_matrices(), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_probabilities_are_valid(self, X, seed):
        rng = np.random.default_rng(seed)
        y = rng.integers(0, 2, size=X.shape[0])
        if len(set(y.tolist())) < 2:
            y[0] = 1 - y[0]
        model = LogisticRegression(l2=1e-2, max_iter=50).fit(X, y)
        probs = model.predict_proba(X)
        assert np.all(probs >= 0) and np.all(probs <= 1)
        assert np.allclose(probs.sum(axis=1), 1.0)

    @given(st.floats(-30.0, 30.0))
    @settings(max_examples=100, deadline=None)
    def test_sigmoid_bounds_and_symmetry(self, z):
        value = float(sigmoid(np.array([z]))[0])
        mirrored = float(sigmoid(np.array([-z]))[0])
        assert 0.0 <= value <= 1.0
        assert value + mirrored == pytest.approx(1.0, abs=1e-12)

    @given(finite_matrices(cols=st.integers(1, 3)), st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_training_beats_or_ties_majority_class(self, X, seed):
        rng = np.random.default_rng(seed)
        y = (X[:, 0] + rng.normal(0, 0.5, X.shape[0]) > 0).astype(int)
        if len(set(y.tolist())) < 2:
            y[0] = 1 - y[0]
        model = LogisticRegression(l2=1e-4, max_iter=100).fit(X, y)
        majority = max(np.mean(y), 1 - np.mean(y))
        assert model.score(X, y) >= majority - 0.15


class TestNaiveBayesProperties:
    @given(
        st.integers(5, 40),
        st.integers(1, 3),
        st.integers(2, 4),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_probabilities_normalised(self, n, d, cardinality, seed):
        rng = np.random.default_rng(seed)
        X = rng.integers(0, cardinality, size=(n, d))
        y = rng.integers(0, 2, size=n)
        model = CategoricalNB(alpha=1.0).fit(X, y)
        probs = model.predict_proba(X)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert np.all(probs > 0)


class TestMixtureProperties:
    @given(
        npst.arrays(
            dtype=np.float64, shape=(3, 2), elements=st.floats(0.05, 1.0)
        ),
        npst.arrays(
            dtype=np.float64, shape=(3, 2), elements=st.floats(0.05, 1.0)
        ),
        st.floats(0.0, 1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_mixture_epsilon_bounded_by_worst_component(self, a, b, weight):
        """Mixing mechanisms cannot exceed the worst component's epsilon
        (mediant inequality on each pairwise ratio)."""
        probs_a = a / a.sum(axis=1, keepdims=True)
        probs_b = b / b.sum(axis=1, keepdims=True)
        mixed = weight * probs_a + (1.0 - weight) * probs_b
        eps_a = epsilon_from_probabilities(probs_a, validate=False).epsilon
        eps_b = epsilon_from_probabilities(probs_b, validate=False).epsilon
        eps_mixed = epsilon_from_probabilities(mixed, validate=False).epsilon
        assert eps_mixed <= max(eps_a, eps_b) + 1e-9

    @given(st.floats(0.05, 0.95), st.floats(0.0, 1.0))
    @settings(max_examples=50, deadline=None)
    def test_mixing_with_constant_shrinks_toward_zero(self, rate, weight):
        base = ConstantMechanism([1 - rate, rate], ("no", "yes"))
        other = ConstantMechanism([rate, 1 - rate], ("no", "yes"))
        mixture = MixtureMechanism([other, base], [weight, 1 - weight])
        X = np.zeros(1)
        probs = np.vstack(
            [
                base.outcome_probabilities(X)[0],
                mixture.outcome_probabilities(X)[0],
            ]
        )
        eps = epsilon_from_probabilities(probs, validate=False).epsilon
        pure = np.vstack(
            [
                base.outcome_probabilities(X)[0],
                other.outcome_probabilities(X)[0],
            ]
        )
        eps_pure = epsilon_from_probabilities(pure, validate=False).epsilon
        assert eps <= eps_pure + 1e-9


class TestPostprocessorProperties:
    @given(
        npst.arrays(
            dtype=np.float64, shape=(4,), elements=st.floats(0.05, 0.95)
        ),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_epsilon_monotone_in_mixing_weight(self, rates, seed):
        rng = np.random.default_rng(seed)
        predictions = []
        groups = []
        for index, rate in enumerate(rates):
            n = 200
            positives = int(round(n * rate))
            predictions.extend([1] * positives + [0] * (n - positives))
            groups.extend([f"g{index}"] * n)
        post = GroupMixingPostprocessor(positive=1).fit(predictions, groups)
        values = [post.epsilon_at(t) for t in (0.0, 0.25, 0.5, 0.75, 1.0)]
        for earlier, later in zip(values, values[1:]):
            assert later <= earlier + 1e-9
        assert values[-1] == pytest.approx(0.0, abs=1e-9)

    @given(
        npst.arrays(
            dtype=np.float64, shape=(3,), elements=st.floats(0.1, 0.9)
        ),
        st.floats(0.01, 2.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_solve_mixing_is_minimal(self, rates, target):
        predictions = []
        groups = []
        for index, rate in enumerate(rates):
            n = 100
            positives = int(round(n * rate))
            predictions.extend([1] * positives + [0] * (n - positives))
            groups.extend([f"g{index}"] * n)
        post = GroupMixingPostprocessor(positive=1).fit(predictions, groups)
        t = post.solve_mixing(target, tol=1e-7)
        assert post.epsilon_at(t) <= target + 1e-6
        if t > 1e-4:
            assert post.epsilon_at(t - 1e-4) > target - 1e-6
