"""Unit tests for the mergeable metrics registry (repro.obs.metrics).

The registry is the observability counterpart of PR-3's
``StreamingContingency``: the same associative/commutative merge and
``state_dict``/``from_state`` round-trip contract, checked here over the
three instrument kinds, plus the Prometheus text rendering pinned by a
golden file (fixed clock, sorted label order).
"""

from __future__ import annotations

import json
import math
import threading
from pathlib import Path

import pytest

from repro.exceptions import ValidationError
from repro.obs.metrics import (
    DEFAULT_LATENCY_BOUNDARIES,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    default_registry,
    reset_default_registry,
)

GOLDEN_DIR = Path(__file__).parent / "golden" / "obs"

pytestmark = pytest.mark.obs


class TestInstruments:
    def test_counter_accumulates_and_rejects_negative(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_things_total", "things")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValidationError):
            counter.inc(-1)

    def test_counter_handles_are_stable(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_x_total", labels={"shard": "00"})
        second = registry.counter("repro_x_total", labels={"shard": "00"})
        assert first is second
        other = registry.counter("repro_x_total", labels={"shard": "01"})
        assert other is not first

    def test_gauge_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("repro_inflight")
        gauge.set(3)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 2

    def test_histogram_buckets_le_is_inclusive(self):
        histogram = Histogram((1.0, 2.0))
        for value in (0.5, 1.0, 1.5, 5.0):
            histogram.observe(value)
        # le semantics: 1.0 falls in the first bucket, 5.0 overflows.
        assert histogram.bucket_counts == (2, 1, 1)
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(8.0)

    def test_histogram_boundary_validation(self):
        with pytest.raises(ValidationError):
            Histogram(())
        with pytest.raises(ValidationError):
            Histogram((1.0, 1.0))
        with pytest.raises(ValidationError):
            Histogram((1.0, math.inf))

    def test_quantile_bands(self):
        histogram = Histogram((0.01, 0.1, 1.0))
        assert histogram.quantile_band(0.5) is None  # empty
        for _ in range(98):
            histogram.observe(0.005)
        histogram.observe(0.05)
        histogram.observe(50.0)
        assert histogram.quantile_band(0.5) == 0.01
        assert histogram.quantile_band(0.99) == 0.1
        assert histogram.quantile_band(1.0) == math.inf
        with pytest.raises(ValidationError):
            histogram.quantile_band(1.5)

    def test_timed_uses_registry_clock(self):
        ticks = iter([10.0, 10.25])
        registry = MetricsRegistry(clock=lambda: next(ticks))
        histogram = registry.histogram("repro_t_seconds")
        with registry.timed(histogram):
            pass
        assert histogram.sum == pytest.approx(0.25)
        assert histogram.count == 1


class TestRegistryContracts:
    def test_type_conflicts_fail_loudly(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total")
        with pytest.raises(ValidationError):
            registry.gauge("repro_a_total")
        registry.histogram("repro_b_seconds", boundaries=(1.0,))
        with pytest.raises(ValidationError):
            registry.histogram("repro_b_seconds", boundaries=(2.0,))

    def test_invalid_names_and_reserved_label(self):
        registry = MetricsRegistry()
        with pytest.raises(ValidationError):
            registry.counter("0bad")
        with pytest.raises(ValidationError):
            registry.counter("repro_ok_total", labels={"le": "x"})
        with pytest.raises(ValidationError):
            registry.counter("repro_ok_total", labels={"bad-name": "x"})

    def test_histogram_summary_merges_all_series(self):
        registry = MetricsRegistry()
        for monitor in ("a", "b"):
            histogram = registry.histogram(
                "repro_lat_seconds",
                boundaries=(0.01, 0.1),
                labels={"monitor": monitor},
            )
            histogram.observe(0.005)
        summary = registry.histogram_summary("repro_lat_seconds")
        assert summary["count"] == 2
        assert summary["bands"]["p50"] == 0.01
        assert registry.histogram_summary("repro_missing") is None

    def test_default_registry_reset(self):
        reset_default_registry()
        default_registry().counter("repro_d_total").inc()
        fresh = reset_default_registry()
        assert fresh is default_registry()
        assert "repro_d_total" not in fresh.state_dict()["families"]

    def test_null_registry_discards_everything(self):
        registry = NullMetricsRegistry()
        registry.counter("repro_n_total").inc(100)
        registry.histogram("repro_n_seconds").observe(1.0)
        registry.gauge("repro_n").set(5)
        assert registry.render_prometheus() == ""
        assert registry.state_dict()["families"] == {}


def _populated(shift: int = 0) -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("repro_rows_total", "rows").inc(10 + shift)
    registry.gauge("repro_inflight", "window").set(2 + shift)
    histogram = registry.histogram(
        "repro_lat_seconds", "latency", boundaries=(0.5, 1.0)
    )
    # exact binary floats so the merged sum is order-independent and the
    # full state_dict compares equal across merge orders
    for value in (0.25, 0.5 + shift, 4.0):
        histogram.observe(value)
    registry.counter(
        "repro_rows_total", "rows", labels={"shard": "01"}
    ).inc(3)
    return registry


class TestMergeAlgebra:
    def test_merge_sums_counters_buckets_and_gauges(self):
        merged = _populated(0).merge(_populated(1))
        state = merged.state_dict()
        rows = state["families"]["repro_rows_total"]["series"]
        assert [series["value"] for series in rows] == [21, 6]
        lat = state["families"]["repro_lat_seconds"]["series"][0]
        assert sum(lat["bucket_counts"]) == 6
        inflight = state["families"]["repro_inflight"]["series"][0]
        assert inflight["value"] == 5

    def test_merge_is_associative_and_commutative(self):
        parts = [_populated(shift) for shift in range(3)]

        def folded(order):
            total = MetricsRegistry()
            for index in order:
                total.merge(_populated(index))
            return total.state_dict()

        left = folded([0, 1, 2])
        right = folded([2, 0, 1])
        assert left == right
        tree = MetricsRegistry()
        tree.merge(parts[0].merge(parts[1])).merge(parts[2])
        assert tree.state_dict() == left

    def test_merge_boundary_mismatch_raises(self):
        left = MetricsRegistry()
        left.histogram("repro_h_seconds", boundaries=(1.0,))
        right = MetricsRegistry()
        right.histogram("repro_h_seconds", boundaries=(2.0,))
        with pytest.raises(ValidationError):
            left.merge(right)

    def test_state_round_trips_through_json_bit_exact(self):
        registry = _populated(0)
        state = json.loads(json.dumps(registry.state_dict()))
        restored = MetricsRegistry.from_state(state)
        assert restored.state_dict() == registry.state_dict()
        assert restored.render_prometheus() == registry.render_prometheus()

    def test_from_state_rejects_bad_versions_and_shapes(self):
        with pytest.raises(ValidationError):
            MetricsRegistry.from_state({"schema_version": 999, "families": {}})
        with pytest.raises(ValidationError):
            MetricsRegistry.from_state({"schema_version": 1})
        bad = MetricsRegistry().state_dict()
        bad["families"]["x"] = {"type": "sparkline", "series": []}
        with pytest.raises(ValidationError):
            MetricsRegistry.from_state(bad)

    def test_concurrent_updates_are_not_lost(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_c_total")

        def spin():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000


class TestPrometheusRendering:
    def test_inf_and_label_escaping(self):
        registry = MetricsRegistry()
        registry.gauge("repro_g", labels={"path": 'a"b\\c'}).set(math.inf)
        page = registry.render_prometheus()
        assert 'path="a\\"b\\\\c"' in page
        assert "} +Inf" in page

    def test_histogram_buckets_are_cumulative_with_inf(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("repro_h_seconds", boundaries=(1.0, 2.0))
        for value in (0.5, 1.5, 5.0):
            histogram.observe(value)
        lines = registry.render_prometheus().splitlines()
        assert 'repro_h_seconds_bucket{le="1.0"} 1' in lines
        assert 'repro_h_seconds_bucket{le="2.0"} 2' in lines
        assert 'repro_h_seconds_bucket{le="+Inf"} 3' in lines
        assert "repro_h_seconds_count 3" in lines

    def test_rendering_matches_golden(self, request):
        """Pin the full page bytes: family order, label sort, le last.

        The registry clock is fixed, every value is deterministic, and
        label insertion order is deliberately scrambled — the renderer
        must sort it all into the same bytes every time.
        """
        registry = MetricsRegistry(clock=lambda: 0.0)
        registry.counter(
            "repro_rows_total", "Rows ingested.", labels={"shard": "01"}
        ).inc(7)
        registry.counter(
            "repro_rows_total", "Rows ingested.", labels={"shard": "00"}
        ).inc(35)
        registry.gauge("repro_up", "Serving state.").set(1)
        histogram = registry.histogram(
            "repro_observe_seconds",
            "Observe latency.",
            boundaries=(0.001, 0.01, 0.1),
            labels={"monitor": "hiring", "stage": "apply"},
        )
        for value in (0.0005, 0.0005, 0.05, 2.0):
            histogram.observe(value)
        output = registry.render_prometheus()

        golden_path = GOLDEN_DIR / "metrics_page.txt"
        if request.config.getoption("--update-golden"):
            golden_path.parent.mkdir(parents=True, exist_ok=True)
            golden_path.write_text(output, encoding="utf-8")
            pytest.skip(f"regenerated {golden_path.name}")
        assert golden_path.exists(), (
            f"missing golden fixture {golden_path}; run pytest with "
            "--update-golden to create it"
        )
        assert output == golden_path.read_text(encoding="utf-8"), (
            "Prometheus rendering drifted from the pinned page; if "
            "intentional, regenerate with --update-golden"
        )
