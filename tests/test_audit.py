"""Tests for repro.audit (auditor and the Table 3 feature study)."""

import numpy as np
import pytest

from repro.audit.auditor import FairnessAuditor
from repro.audit.feature_study import FeatureSelectionStudy
from repro.data.generators import sample_outcome_table
from repro.exceptions import ValidationError
from repro.learn.logistic_regression import LogisticRegression
from repro.learn.preprocessing import TableVectorizer
from repro.tabular.column import Column
from repro.tabular.table import Table


def make_study_tables(seed=0, n_per_cell=400):
    """Small two-attribute synthetic population with features."""
    rng = np.random.default_rng(seed)
    cells = {
        ("F", "X"): 0.15,
        ("F", "Y"): 0.30,
        ("M", "X"): 0.35,
        ("M", "Y"): 0.55,
    }
    tables = []
    for _ in range(2):
        base = sample_outcome_table(
            cell_sizes={key: n_per_cell for key in cells},
            positive_rates=cells,
            attribute_names=["gender", "race"],
            outcome_name="label",
            outcome_levels=("neg", "pos"),
            seed=rng,
        )
        positive = base.column("label").equals_mask("pos")
        score = positive * 1.6 + rng.normal(size=base.n_rows)
        tables.append(base.with_column(Column.numeric("score", score)))
    return tables[0], tables[1]


class TestFairnessAuditorDataset:
    def test_audit_dataset(self):
        train, _ = make_study_tables()
        auditor = FairnessAuditor(protected=["gender", "race"], outcome="label")
        audit = auditor.audit_dataset(train)
        assert audit.epsilon > 0
        assert audit.sweep.theorem_violations() == []
        assert audit.posterior is None
        assert "epsilon" in audit.to_text().lower()

    def test_audit_with_posterior(self):
        train, _ = make_study_tables()
        auditor = FairnessAuditor(
            protected=["gender", "race"],
            outcome="label",
            posterior_samples=50,
            seed=0,
        )
        audit = auditor.audit_dataset(train)
        assert audit.posterior is not None
        assert audit.posterior.n_samples == 50

    def test_empty_protected_rejected(self):
        with pytest.raises(ValidationError):
            FairnessAuditor(protected=[], outcome="label")


class TestFairnessAuditorClassifier:
    def test_audit_classifier(self):
        train, test = make_study_tables()
        vectorizer = TableVectorizer(
            numeric=["score"], categorical=[], exclude=["label"]
        ).fit(train)
        model = LogisticRegression().fit(
            vectorizer.transform(train), train.column("label").to_list()
        )
        auditor = FairnessAuditor(
            protected=["gender", "race"], outcome="label", estimator=1.0
        )
        audit = auditor.audit_classifier(model, test, vectorizer=vectorizer)
        assert audit.epsilon > 0
        assert 0 <= audit.error_percent <= 100
        assert 0 <= audit.demographic_parity <= 1
        assert audit.amplification.epsilon_mechanism == pytest.approx(
            audit.epsilon
        )
        assert "error rate" in audit.to_text()

    def test_transform_callable(self):
        train, test = make_study_tables()
        transform = lambda t: t.column("score").values[:, None]  # noqa: E731
        model = LogisticRegression().fit(
            transform(train), train.column("label").to_list()
        )
        auditor = FairnessAuditor(protected=["gender"], outcome="label")
        audit = auditor.audit_classifier(model, test, transform=transform)
        assert audit.epsilon >= 0

    def test_exactly_one_feature_source(self):
        train, test = make_study_tables()
        model = LogisticRegression().fit(
            train.column("score").values[:, None],
            train.column("label").to_list(),
        )
        auditor = FairnessAuditor(protected=["gender"], outcome="label")
        with pytest.raises(ValidationError):
            auditor.audit_classifier(model, test)


class TestFeatureSelectionStudy:
    @pytest.fixture(scope="class")
    def study(self):
        train, test = make_study_tables()
        return FeatureSelectionStudy(
            train, test, protected=["gender", "race"], outcome="label"
        )

    def test_default_feature_sets(self, study):
        subsets = study.default_feature_sets()
        assert subsets[0] == ()
        assert ("gender", "race") in subsets
        assert len(subsets) == 4

    def test_run_configuration(self, study):
        row = study.run_configuration(())
        assert row.sensitive_used == ()
        assert row.epsilon > 0
        assert row.n_features == 1  # score only
        assert row.amplification == pytest.approx(
            row.epsilon - row.data_epsilon
        )

    def test_sensitive_features_add_columns(self, study):
        bare = study.run_configuration(())
        full = study.run_configuration(("gender", "race"))
        assert full.n_features == bare.n_features + 2

    def test_unknown_attribute_rejected(self, study):
        with pytest.raises(ValidationError):
            study.run_configuration(("height",))

    def test_run_and_lookup(self, study):
        result = study.run([(), ("gender",)])
        assert len(result.rows) == 2
        assert result.row(["gender"]).sensitive_used == ("gender",)
        with pytest.raises(ValidationError):
            result.row(["race"])
        text = result.to_text()
        assert "none" in text
        assert "Error rate" in text

    def test_labels(self, study):
        result = study.run([()])
        assert result.rows[0].label() == "none"
