"""Deterministic fault injection for the monitoring fleet's durability.

Three layers, used by ``tests/test_monitor_wal.py``'s fault matrix:

* :class:`FaultyFileSystem` — a :class:`repro.monitor.wal.FileSystem`
  that fails, tears (short-writes), crashes, or stalls the Nth write or
  fsync, injected through the WAL's ``filesystem`` seam;
* :class:`CrashingCall` — wraps any callable to raise
  :class:`SimulatedCrash` on its Nth invocation (history-store appends,
  checkpoint fsyncs, checkpoint-generation renames);
* :func:`feed_with_recovery` — the kill-at-every-boundary driver: feeds
  batches into a durable registry, and whenever a simulated crash (or a
  WAL rejection) fires it abandons the in-process state *without any
  shutdown path* — exactly what ``kill -9`` leaves behind — reopens the
  registry, and resumes at the first batch the recovered state has not
  applied. The caller then asserts the survivor is bit-identical to a
  run that never crashed.

:class:`SimulatedCrash` derives from ``BaseException`` on purpose: no
``except Exception`` recovery path in the code under test may swallow
it, so it truthfully models a process death at that instruction.

PR 7 adds the *process-level* layer for the sharded fleet, used by
``tests/test_monitor_fleet.py``: :func:`send_until_acked` (outlast a
restarting shard's breaker backoff with an idempotent retry loop) and
:func:`feed_fleet_with_kills` (real ``SIGKILL`` against a supervised
shard worker at every ingest boundary — before the send, racing the
send from another thread, and after the ack). No simulation there: the
kernel delivers the signal, the supervisor restarts the shard, WAL
replay restores acked batches, and ``batch_id`` dedup absorbs the
retries whose ack the kill ate.
"""

from __future__ import annotations

import functools
import os
import threading
import time

from repro.exceptions import MonitorClientError, WalError
from repro.monitor.registry import MonitorConfig, MonitorRegistry
from repro.monitor.wal import FileSystem

__all__ = [
    "CrashingCall",
    "FaultyFileSystem",
    "SimulatedCrash",
    "feed_fleet_with_kills",
    "feed_with_recovery",
    "send_until_acked",
]


class SimulatedCrash(BaseException):
    """The process died here. Only the test driver may catch this."""


class _FaultyHandle:
    """File-handle proxy that routes writes through the fault schedule."""

    def __init__(self, handle, filesystem: "FaultyFileSystem"):
        self._handle = handle
        self._filesystem = filesystem

    def write(self, data):
        return self._filesystem._write(self._handle, data)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self._handle.close()
        return False

    def __getattr__(self, name):
        return getattr(self._handle, name)


class FaultyFileSystem(FileSystem):
    """A filesystem whose Nth operation fails, tears, crashes, or stalls.

    Ordinals are 1-based and global per instance (``write_calls`` /
    ``fsync_calls`` count every write/fsync the instance has seen), so a
    test arms e.g. ``crash_after_fsync_at={3}`` and knows exactly which
    batch dies. Faults:

    * ``fail_write_at`` — the write raises ``OSError`` without writing;
    * ``short_write_at`` — half the bytes land, then ``OSError`` (a torn
      record: the WAL must truncate it or replay would go blind past it);
    * ``crash_before_write_at`` / ``crash_after_write_at`` — process
      death around the write (after: bytes buffered but never fsynced);
    * ``fail_fsync_at`` — fsync raises ``OSError`` (the batch must not
      be acknowledged);
    * ``crash_after_fsync_at`` — fsync succeeds, then the process dies:
      the batch is durable but unapplied — replay must apply it once;
    * ``fsync_delay`` — every fsync sleeps this long first (drives the
      stall-degraded path).
    """

    def __init__(self):
        self.write_calls = 0
        self.fsync_calls = 0
        self.fail_write_at: set[int] = set()
        self.short_write_at: set[int] = set()
        self.crash_before_write_at: set[int] = set()
        self.crash_after_write_at: set[int] = set()
        self.fail_fsync_at: set[int] = set()
        self.crash_after_fsync_at: set[int] = set()
        self.fsync_delay = 0.0

    def open(self, path, mode):
        return _FaultyHandle(open(path, mode), self)

    def _write(self, handle, data):
        self.write_calls += 1
        ordinal = self.write_calls
        if ordinal in self.crash_before_write_at:
            raise SimulatedCrash(f"crash before write #{ordinal}")
        if ordinal in self.fail_write_at:
            raise OSError(5, f"injected write failure #{ordinal}")
        if ordinal in self.short_write_at:
            handle.write(data[: max(len(data) // 2, 1)])
            handle.flush()
            raise OSError(5, f"injected short write #{ordinal}")
        written = handle.write(data)
        if ordinal in self.crash_after_write_at:
            handle.flush()
            raise SimulatedCrash(f"crash after write #{ordinal}")
        return written

    def fsync(self, handle) -> None:
        self.fsync_calls += 1
        ordinal = self.fsync_calls
        if ordinal in self.fail_fsync_at:
            raise OSError(5, f"injected fsync failure #{ordinal}")
        if self.fsync_delay:
            time.sleep(self.fsync_delay)
        os.fsync(handle.fileno())
        if ordinal in self.crash_after_fsync_at:
            raise SimulatedCrash(f"crash after fsync #{ordinal}")


class CrashingCall:
    """Wrap ``func`` so its Nth invocation dies (before or after running).

    Monkeypatch this over any boundary the filesystem seam cannot reach:
    ``AuditHistoryStore.append`` (crash between apply and history),
    ``repro.engine.checkpoint.os.replace`` (crash mid checkpoint
    rotation), ``repro.engine.checkpoint.os.fsync`` (crash mid
    checkpoint write).
    """

    def __init__(self, func, *, at: int, before: bool = True):
        self.func = func
        self.at = int(at)
        self.before = bool(before)
        self.calls = 0

    def __call__(self, *args, **kwargs):
        self.calls += 1
        if self.before and self.calls == self.at:
            raise SimulatedCrash(f"crash before call #{self.calls}")
        result = self.func(*args, **kwargs)
        if not self.before and self.calls == self.at:
            raise SimulatedCrash(f"crash after call #{self.calls}")
        return result

    def __get__(self, obj, objtype=None):
        # Bind like a method when patched over a class attribute, so
        # instance calls still deliver ``self`` to the wrapped function.
        if obj is None:
            return self
        return functools.partial(self.__call__, obj)


def feed_with_recovery(
    directory,
    config: MonitorConfig,
    batches,
    *,
    filesystem: FileSystem | None = None,
    checkpoint_every: int = 0,
    open_kwargs: dict | None = None,
    max_crashes: int = 25,
):
    """Feed every batch to a durable registry, surviving injected crashes.

    Opens (or reopens) ``MonitorRegistry`` at ``directory``, creates the
    monitor if needed, and feeds ``batches`` in order, checkpointing
    every ``checkpoint_every`` acknowledged batches when nonzero. A
    :class:`SimulatedCrash` or :class:`repro.exceptions.WalError`
    anywhere in observe/checkpoint is treated as process death: the
    registry object is abandoned un-shut-down, the registry is reopened
    on the same (surviving) filesystem — replaying the WAL — and
    feeding resumes at the first batch the recovered monitor has not
    applied: the retry policy of a client that was never acknowledged
    for it.

    Returns ``(registry, crashes)`` with every batch applied exactly
    once; the caller asserts bit-identity against a crash-free run.
    """
    open_kwargs = dict(open_kwargs or {})
    registry = MonitorRegistry.open(
        directory, wal_filesystem=filesystem, **open_kwargs
    )
    if config.name not in registry:
        registry.create_from_config(config)
    crashes = 0
    index = registry.get(config.name).batches
    assert index == 0, "feed_with_recovery expects a fresh monitor"
    while index < len(batches):
        try:
            registry.observe(config.name, batches[index])
            index += 1
            if checkpoint_every and index % checkpoint_every == 0:
                registry.checkpoint_all()
        except (SimulatedCrash, WalError):
            crashes += 1
            if crashes > max_crashes:
                raise AssertionError(
                    f"fault scenario did not converge after {crashes} "
                    "simulated crashes"
                ) from None
            # Process death: no close(), no checkpoint — reopen cold and
            # resume where the recovered state left off. The *same*
            # filesystem carries over (the disk survives the process;
            # each armed ordinal fires at most once).
            registry = MonitorRegistry.open(
                directory, wal_filesystem=filesystem, **open_kwargs
            )
            index = registry.get(config.name).batches
    return registry, crashes


# ----------------------------------------------------------------------
# Process-level fault injection for the sharded fleet (PR 7)
# ----------------------------------------------------------------------
def send_until_acked(client, name, rows, *, batch_id, deadline=90.0):
    """Retry one observe through ``client`` until the fleet acks it.

    The client already retries transient transport errors and 429/503
    internally, but a shard restart's breaker backoff can outlast the
    client's own retry budget; this outer loop keeps going until the
    shard is back. It is safe only because ``batch_id`` makes the send
    idempotent — a retry whose predecessor *was* durably applied is
    answered ``duplicate: true`` instead of being counted twice.
    """
    deadline_at = time.monotonic() + deadline
    last: BaseException | None = None
    while time.monotonic() < deadline_at:
        try:
            return client.observe(name, rows, batch_id=batch_id)
        except MonitorClientError as error:
            if not (error.transient or error.status in (429, 503)):
                raise
            last = error
            time.sleep(0.05)
    raise AssertionError(
        f"batch {batch_id!r} not acked within {deadline}s; last error: {last}"
    )


def feed_fleet_with_kills(
    client,
    name,
    batches,
    *,
    kill,
    boundaries=("before", "mid", "after"),
    batch_id_prefix="fault",
    deadline_per_batch=90.0,
):
    """Feed every batch through a supervised fleet, SIGKILLing at each
    ingest boundary in round-robin.

    ``kill`` is a zero-argument callable that SIGKILLs the shard under
    test (e.g. ``lambda: supervisor.kill_shard(shard)``); it must be
    idempotent when the worker is already down, which
    ``FleetSupervisor.kill_shard`` is. For batch ``i`` the boundary
    ``boundaries[i % len(boundaries)]`` fires:

    * ``"before"`` — kill before the send: the request meets a dead or
      mid-restart shard and must converge purely through retries;
    * ``"mid"`` — kill from a second thread racing the send: depending
      on scheduling it lands before the WAL write (batch lost → retry
      applies it), between fsync and ack (ack lost → the retry must be
      deduplicated, not double-counted), or after the ack;
    * ``"after"`` — kill after the ack: the batch is durable-but-hot
      and WAL replay must restore it exactly once.

    Returns ``(results, kills)`` — the per-batch ack payloads (in
    order) and how many kills were delivered.
    """
    if not boundaries:
        raise ValueError("boundaries must name at least one kill site")
    results = []
    kills = 0
    for index, rows in enumerate(batches):
        boundary = boundaries[index % len(boundaries)]
        batch_id = f"{batch_id_prefix}-{index:04d}"
        killer = None
        if boundary == "before":
            kill()
            kills += 1
        elif boundary == "mid":
            killer = threading.Thread(target=kill)
            killer.start()
            kills += 1
        elif boundary != "after":
            raise ValueError(f"unknown kill boundary {boundary!r}")
        try:
            results.append(
                send_until_acked(
                    client,
                    name,
                    rows,
                    batch_id=batch_id,
                    deadline=deadline_per_batch,
                )
            )
        finally:
            if killer is not None:
                killer.join()
        if boundary == "after":
            kill()
            kills += 1
    return results, kills
