"""Tests for repro.engine.checkpoint (the durable .rcpk format).

Covers the format contract (round-trips, atomicity, corruption
detection), the restore validation satellite (schema_version and
factor/outcome name checks raise CheckpointError instead of corrupting
counts), and the crash-resume acceptance criterion: a run killed
mid-stream and resumed from its checkpoint produces the same final
report as an uninterrupted run.
"""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.audit.stream import STATE_SCHEMA_VERSION, StreamingAuditor
from repro.cli import main
from repro.engine.backends import ContingencySpec, CsvSource
from repro.engine.checkpoint import (
    CHECKPOINT_VERSION,
    checkpoint_generations,
    load_auditor_state,
    load_checkpoint,
    load_contingency,
    load_latest_auditor_state,
    merge_checkpoint_files,
    rotate_checkpoint,
    save_auditor_state,
    save_contingency,
)
from repro.exceptions import CheckpointError, SchemaError, ValidationError
from tests.test_engine_backends import PROTECTED, OUTCOME, write_stream_csv

SPEC = ContingencySpec(PROTECTED, OUTCOME)


def small_accumulator(seed=0, n_rows=60):
    rng = np.random.default_rng(seed)
    accumulator = SPEC.new_accumulator()
    accumulator.update(
        [
            (f"g{rng.integers(2)}", f"r{rng.integers(3)}", f"y{rng.integers(2)}")
            for _ in range(n_rows)
        ]
    )
    return accumulator


class TestContingencyRoundtrip:
    def test_roundtrip_is_exact(self, tmp_path):
        accumulator = small_accumulator()
        path = tmp_path / "shard.rcpk"
        save_contingency(path, accumulator)
        restored = load_contingency(path)
        assert restored.n_rows == accumulator.n_rows
        assert restored.factor_names == accumulator.factor_names
        assert restored.factor_levels == accumulator.factor_levels
        assert np.array_equal(
            restored.snapshot().counts, accumulator.snapshot().counts
        )

    def test_no_temporary_file_left_behind(self, tmp_path):
        path = tmp_path / "shard.rcpk"
        save_contingency(path, small_accumulator())
        assert [entry.name for entry in tmp_path.iterdir()] == ["shard.rcpk"]

    def test_overwrite_is_atomic_replacement(self, tmp_path):
        path = tmp_path / "shard.rcpk"
        save_contingency(path, small_accumulator(seed=1))
        second = small_accumulator(seed=2)
        save_contingency(path, second)
        assert np.array_equal(
            load_contingency(path).snapshot().counts, second.snapshot().counts
        )

    def test_pinned_axes_survive_the_roundtrip(self, tmp_path):
        spec = ContingencySpec(
            ("gender",), "hired", (("g0", "g1"),), ("no", "yes")
        )
        accumulator = spec.new_accumulator().update([("g1", "no")])
        path = tmp_path / "pinned.rcpk"
        save_contingency(path, accumulator)
        restored = load_contingency(path)
        with pytest.raises(ValidationError):
            restored.update([("g2", "no")])  # axis is still pinned

    def test_non_scalar_levels_rejected_at_save_time(self, tmp_path):
        accumulator = SPEC.new_accumulator()
        accumulator.update([(("tuple", "level"), "r0", "y0")])
        with pytest.raises(CheckpointError, match="JSON scalar"):
            save_contingency(tmp_path / "bad.rcpk", accumulator)


class TestCorruptionDetection:
    @pytest.fixture
    def checkpoint(self, tmp_path):
        path = tmp_path / "shard.rcpk"
        save_contingency(path, small_accumulator())
        return path

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="does not exist"):
            load_checkpoint(tmp_path / "ghost.rcpk")

    def test_truncation_everywhere(self, checkpoint):
        blob = checkpoint.read_bytes()
        for keep in [0, 10, 25, len(blob) // 2, len(blob) - 1]:
            checkpoint.write_bytes(blob[:keep])
            with pytest.raises(CheckpointError, match="truncated"):
                load_checkpoint(checkpoint)

    def test_foreign_file(self, checkpoint):
        checkpoint.write_bytes(b"PK\x03\x04" + b"\x00" * 64)
        with pytest.raises(CheckpointError, match="not a repro checkpoint"):
            load_checkpoint(checkpoint)

    def test_future_version(self, checkpoint):
        blob = bytearray(checkpoint.read_bytes())
        blob[4:6] = (CHECKPOINT_VERSION + 1).to_bytes(2, "little")
        checkpoint.write_bytes(bytes(blob))
        with pytest.raises(CheckpointError, match="newer"):
            load_checkpoint(checkpoint)

    def test_payload_bit_rot(self, checkpoint):
        blob = bytearray(checkpoint.read_bytes())
        blob[-1] ^= 0xFF
        checkpoint.write_bytes(bytes(blob))
        with pytest.raises(CheckpointError, match="CRC"):
            load_checkpoint(checkpoint)

    def test_header_bit_rot(self, checkpoint):
        blob = bytearray(checkpoint.read_bytes())
        blob[30] ^= 0x01
        checkpoint.write_bytes(bytes(blob))
        with pytest.raises(CheckpointError, match="CRC"):
            load_checkpoint(checkpoint)

    def test_wrong_kind_for_auditor_load(self, checkpoint):
        with pytest.raises(CheckpointError, match="auditor"):
            load_auditor_state(checkpoint)


class TestRestoreValidation:
    def test_schema_version_mismatch(self):
        auditor = StreamingAuditor(PROTECTED, OUTCOME)
        state = auditor.state_dict()
        state["schema_version"] = STATE_SCHEMA_VERSION + 1
        with pytest.raises(CheckpointError, match="schema version"):
            StreamingAuditor(PROTECTED, OUTCOME).restore(state)

    def test_legacy_state_without_version_rejected(self):
        auditor = StreamingAuditor(PROTECTED, OUTCOME)
        state = auditor.state_dict()
        del state["schema_version"]
        with pytest.raises(CheckpointError, match="schema version"):
            StreamingAuditor(PROTECTED, OUTCOME).restore(state)

    def test_mismatched_protected_names(self):
        state = StreamingAuditor(PROTECTED, OUTCOME).state_dict()
        other = StreamingAuditor(("gender", "age"), OUTCOME)
        with pytest.raises(CheckpointError, match="protected"):
            other.restore(state)

    def test_mismatched_outcome_name(self):
        state = StreamingAuditor(PROTECTED, OUTCOME).state_dict()
        other = StreamingAuditor(PROTECTED, "income")
        with pytest.raises(CheckpointError, match="outcome"):
            other.restore(state)

    def test_window_mismatch(self):
        state = StreamingAuditor(PROTECTED, OUTCOME, window=5).state_dict()
        other = StreamingAuditor(PROTECTED, OUTCOME, window=9)
        with pytest.raises(CheckpointError, match="window"):
            other.restore(state)

    def test_checkpoint_error_is_catchable_as_validation_error(self):
        state = StreamingAuditor(PROTECTED, OUTCOME, window=5).state_dict()
        with pytest.raises(ValidationError):
            StreamingAuditor(PROTECTED, OUTCOME, window=9).restore(state)


class TestAuditorCheckpointFile:
    def test_windowed_roundtrip_through_disk(self, tmp_path):
        rows = [
            (f"g{i % 2}", f"r{i % 3}", f"y{(i // 2) % 2}") for i in range(75)
        ]
        auditor = StreamingAuditor(PROTECTED, OUTCOME, window=40)
        auditor.observe(rows)
        path = tmp_path / "auditor.rcpk"
        save_auditor_state(path, auditor.state_dict(), progress={"chunks_ingested": 3})
        state, progress = load_auditor_state(path)
        assert progress == {"chunks_ingested": 3}
        restored = StreamingAuditor(PROTECTED, OUTCOME, window=40)
        restored.restore(state)
        assert restored.epsilon() == auditor.epsilon()
        assert restored.rows_seen == auditor.rows_seen
        more = [("g0", "r1", "y1")] * 10
        assert restored.observe(more) == auditor.observe(more)


class TestMergeCheckpoints:
    def test_merge_files_equals_single_pass(self, tmp_path):
        rows = [
            (f"g{i % 2}", f"r{i % 4}", f"y{i % 2}") for i in range(240)
        ]
        paths = []
        for shard in range(3):
            accumulator = SPEC.new_accumulator().update(rows[shard::3])
            path = tmp_path / f"shard{shard}.rcpk"
            save_contingency(path, accumulator)
            paths.append(path)
        merged = merge_checkpoint_files(paths)
        single = SPEC.new_accumulator().update(rows)
        assert np.array_equal(
            merged.snapshot().counts, single.snapshot().counts
        )

    def test_auditor_checkpoints_contribute_their_counts(self, tmp_path):
        auditor = StreamingAuditor(PROTECTED, OUTCOME)
        auditor.observe([("g0", "r0", "y1"), ("g1", "r1", "y0")])
        path = tmp_path / "auditor.rcpk"
        save_auditor_state(path, auditor.state_dict())
        merged = merge_checkpoint_files([path])
        assert merged.n_rows == 2

    def test_windowed_auditor_checkpoints_refused(self, tmp_path):
        # A windowed accumulator counts only the last W rows (the rest
        # were retracted), so merging it would silently drop history.
        auditor = StreamingAuditor(PROTECTED, OUTCOME, window=3)
        auditor.observe([("g0", "r0", "y1")] * 10)
        path = tmp_path / "windowed.rcpk"
        save_auditor_state(path, auditor.state_dict())
        with pytest.raises(CheckpointError, match="windowed"):
            merge_checkpoint_files([path])

    def test_mismatched_schemas_fail_loudly(self, tmp_path):
        first = tmp_path / "a.rcpk"
        second = tmp_path / "b.rcpk"
        save_contingency(first, SPEC.new_accumulator().update([("g0", "r0", "y1")]))
        other_spec = ContingencySpec(("gender", "age"), OUTCOME)
        save_contingency(
            second, other_spec.new_accumulator().update([("g0", "a1", "y1")])
        )
        with pytest.raises(SchemaError):
            merge_checkpoint_files([first, second])

    def test_empty_path_list_rejected(self):
        with pytest.raises(CheckpointError):
            merge_checkpoint_files([])


class TestCrashResumeIntegration:
    """Acceptance: kill mid-stream, resume, report matches uninterrupted."""

    @pytest.fixture
    def csv_cwd(self, tmp_path, monkeypatch):
        write_stream_csv(tmp_path / "stream.csv", n_rows=730)
        monkeypatch.chdir(tmp_path)

    ARGS = [
        "audit-stream", "stream.csv",
        "--protected", "gender,race",
        "--outcome", "hired",
        "--chunk-rows", "100",
    ]

    @pytest.mark.parametrize("window_args", [[], ["--window", "250"]])
    def test_killed_run_resumes_to_identical_report(
        self, csv_cwd, monkeypatch, window_args
    ):
        uninterrupted = io.StringIO()
        assert main([*self.ARGS, *window_args], out=uninterrupted) == 0
        reference_report = uninterrupted.getvalue().split("\n\n", 1)[1]

        # Kill the process after 4 chunks: the crash strikes *between*
        # the checkpoint write and the next chunk, like a real SIGKILL.
        observed = StreamingAuditor.observe_table
        calls = {"n": 0}

        def dying_observe(self, table):
            if calls["n"] == 4:
                raise KeyboardInterrupt("simulated kill -9")
            calls["n"] += 1
            return observed(self, table)

        monkeypatch.setattr(StreamingAuditor, "observe_table", dying_observe)
        with pytest.raises(KeyboardInterrupt):
            main(
                [*self.ARGS, *window_args, "--checkpoint", "run.rcpk"],
                out=io.StringIO(),
            )
        monkeypatch.setattr(StreamingAuditor, "observe_table", observed)

        state, progress = load_auditor_state("run.rcpk")
        assert progress["chunks_ingested"] == 4

        resumed = io.StringIO()
        assert (
            main(
                [*self.ARGS, *window_args, "--checkpoint", "run.rcpk", "--resume"],
                out=resumed,
            )
            == 0
        )
        resumed_text = resumed.getvalue()
        # The resumed trace covers only the remaining chunks, numbered
        # where the killed run stopped; the final report is identical.
        assert resumed_text.startswith("chunk 5:")
        assert resumed_text.split("\n\n", 1)[1] == reference_report

    def test_resume_from_corrupted_checkpoint_fails_loudly(
        self, csv_cwd, capsys
    ):
        assert main([*self.ARGS, "--checkpoint", "run.rcpk"], out=io.StringIO()) == 0
        blob = open("run.rcpk", "rb").read()
        open("run.rcpk", "wb").write(blob[: len(blob) // 3])
        rc = main(
            [*self.ARGS, "--checkpoint", "run.rcpk", "--resume"],
            out=io.StringIO(),
        )
        assert rc == 1
        assert "truncated" in capsys.readouterr().err

    def test_resume_with_different_protected_fails_loudly(self, csv_cwd, capsys):
        assert main([*self.ARGS, "--checkpoint", "run.rcpk"], out=io.StringIO()) == 0
        rc = main(
            [
                "audit-stream", "stream.csv",
                "--protected", "gender",
                "--outcome", "hired",
                "--chunk-rows", "100",
                "--checkpoint", "run.rcpk",
                "--resume",
            ],
            out=io.StringIO(),
        )
        assert rc == 1
        assert "protected" in capsys.readouterr().err


class TestCheckpointRotation:
    """Generations: rotate_checkpoint + newest-valid fallback loading."""

    def _save_marked(self, path, seed):
        save_contingency(path, small_accumulator(seed=seed))

    def test_rotate_shifts_generations_newest_first(self, tmp_path):
        path = tmp_path / "audit.rcpk"
        for seed in (1, 2, 3):
            rotate_checkpoint(path, keep=2)
            self._save_marked(path, seed)
        assert sorted(entry.name for entry in tmp_path.iterdir()) == [
            "audit.rcpk", "audit.rcpk.1", "audit.rcpk.2",
        ]
        # Newest generation holds the latest save, .1 the one before, ...
        for generation, seed in [(path, 3), (tmp_path / "audit.rcpk.1", 2),
                                 (tmp_path / "audit.rcpk.2", 1)]:
            expected = small_accumulator(seed=seed).snapshot().counts
            assert np.array_equal(
                load_contingency(generation).snapshot().counts, expected
            )

    def test_rotation_drops_generations_past_the_horizon(self, tmp_path):
        path = tmp_path / "audit.rcpk"
        for seed in range(6):
            rotate_checkpoint(path, keep=2)
            self._save_marked(path, seed)
        assert sorted(entry.name for entry in tmp_path.iterdir()) == [
            "audit.rcpk", "audit.rcpk.1", "audit.rcpk.2",
        ]

    def test_shrinking_keep_cleans_stragglers(self, tmp_path):
        path = tmp_path / "audit.rcpk"
        for seed in range(5):
            rotate_checkpoint(path, keep=4)
            self._save_marked(path, seed)
        rotate_checkpoint(path, keep=1)
        self._save_marked(path, 9)
        assert sorted(entry.name for entry in tmp_path.iterdir()) == [
            "audit.rcpk", "audit.rcpk.1",
        ]

    def test_keep_zero_retains_no_history(self, tmp_path):
        path = tmp_path / "audit.rcpk"
        for seed in (1, 2):
            rotate_checkpoint(path, keep=2)
            self._save_marked(path, seed)
        rotate_checkpoint(path, keep=0)
        self._save_marked(path, 3)
        assert [entry.name for entry in tmp_path.iterdir()] == ["audit.rcpk"]

    def test_negative_keep_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match=">= 0"):
            rotate_checkpoint(tmp_path / "audit.rcpk", keep=-1)

    def test_generations_listed_newest_first(self, tmp_path):
        path = tmp_path / "audit.rcpk"
        for seed in (1, 2, 3):
            rotate_checkpoint(path, keep=3)
            self._save_marked(path, seed)
        assert checkpoint_generations(path) == [
            path, tmp_path / "audit.rcpk.1", tmp_path / "audit.rcpk.2",
        ]
        # A missing generation 0 (crash between rotate and save) still
        # exposes the older generations.
        path.unlink()
        assert checkpoint_generations(path) == [
            tmp_path / "audit.rcpk.1", tmp_path / "audit.rcpk.2",
        ]


class TestRotationFallbackResume:
    """Satellite acceptance: corrupt the newest generation, resume from
    the prior one, and the finished stream matches an uninterrupted run."""

    @pytest.fixture
    def stream_path(self, tmp_path):
        return write_stream_csv(tmp_path / "stream.csv", n_rows=530)

    def _auditor(self):
        return StreamingAuditor(PROTECTED, OUTCOME)

    def test_corrupt_newest_generation_falls_back(self, tmp_path, stream_path):
        source = CsvSource(
            str(stream_path), chunk_rows=100, columns=(*PROTECTED, OUTCOME)
        )
        reference = self._auditor()
        expected = reference.ingest(source)

        path = tmp_path / "audit.rcpk"
        killed = self._auditor()
        progress = []
        with pytest.raises(KeyboardInterrupt):
            killed.ingest(
                source,
                checkpoint_path=path,
                checkpoint_keep=2,
                on_chunk=lambda chunk: (
                    progress.append(chunk),
                    (_ for _ in ()).throw(KeyboardInterrupt())
                    if chunk.index == 4
                    else None,
                ),
            )
        assert (tmp_path / "audit.rcpk.1").exists()

        # Torn write: the newest generation is half a file.
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])

        state, _, used = load_latest_auditor_state(path, keep=2)
        assert used == tmp_path / "audit.rcpk.1"
        assert state["rows_seen"] == 300  # one chunk behind the torn gen 0

        resumed = self._auditor()
        final = resumed.ingest(
            source, checkpoint_path=path, checkpoint_keep=2, resume=True
        )
        assert final == expected
        assert resumed.rows_seen == 530

    def test_all_generations_corrupt_fails_loudly(self, tmp_path, stream_path):
        source = CsvSource(
            str(stream_path), chunk_rows=100, columns=(*PROTECTED, OUTCOME)
        )
        path = tmp_path / "audit.rcpk"
        self._auditor().ingest(source, checkpoint_path=path, checkpoint_keep=1)
        for generation in (path, tmp_path / "audit.rcpk.1"):
            generation.write_bytes(b"garbage")
        with pytest.raises(CheckpointError, match="no valid checkpoint"):
            self._auditor().ingest(
                source, checkpoint_path=path, checkpoint_keep=1, resume=True
            )

    def test_missing_generations_fail_loudly(self, tmp_path):
        with pytest.raises(CheckpointError, match="no generations"):
            load_latest_auditor_state(tmp_path / "none.rcpk", keep=2)
