"""Tests for the model-based estimator (Definition 4.1 with pooling)."""

import math

import numpy as np
import pytest

from repro.core.empirical import edf_from_contingency
from repro.core.model_based import group_design_matrix, model_based_edf
from repro.exceptions import ValidationError
from repro.tabular.crosstab import ContingencyTable, crosstab


def make_contingency(cells):
    return ContingencyTable.from_group_counts(
        cells,
        factor_names=["a", "b"],
        outcome_name="y",
        outcome_levels=["no", "yes"],
    )


class TestDesignMatrix:
    def test_main_effects_shape(self, hiring_table):
        contingency = crosstab(hiring_table, ["gender", "race"], "hired")
        design = group_design_matrix(contingency)
        # Two binary factors -> 1 + 1 indicator columns, 4 rows.
        assert design.shape == (4, 2)

    def test_interactions_shape(self, hiring_table):
        contingency = crosstab(hiring_table, ["gender", "race"], "hired")
        design = group_design_matrix(contingency, interactions=True)
        assert design.shape == (4, 3)

    def test_baseline_row_is_zero(self, hiring_table):
        contingency = crosstab(hiring_table, ["gender", "race"], "hired")
        design = group_design_matrix(contingency)
        assert design[0].tolist() == [0.0, 0.0]  # first levels of both

    def test_three_level_factor(self):
        contingency = ContingencyTable.from_group_counts(
            {("x",): [1, 1], ("y",): [1, 1], ("z",): [1, 1]},
            factor_names=["g"],
            outcome_name="o",
            outcome_levels=["n", "p"],
        )
        assert group_design_matrix(contingency).shape == (3, 2)


class TestModelBasedEdf:
    def test_saturated_model_recovers_plugin(self, hiring_table):
        """With pairwise interactions a 2x2 table is saturated, so the
        fitted probabilities equal the empirical rates."""
        contingency = crosstab(hiring_table, ["gender", "race"], "hired")
        plugin = edf_from_contingency(contingency)
        saturated = model_based_edf(contingency, interactions=True, l2=1e-9)
        assert saturated.epsilon == pytest.approx(plugin.epsilon, abs=1e-3)

    def test_main_effects_pool_toward_additivity(self):
        """A cell wildly off its margins is pulled in by the pooling."""
        cells = {
            ("a1", "b1"): [50, 50],
            ("a1", "b2"): [50, 50],
            ("a2", "b1"): [50, 50],
            ("a2", "b2"): [2, 8],  # tiny, extreme cell
        }
        contingency = make_contingency(cells)
        plugin = edf_from_contingency(contingency).epsilon
        pooled = model_based_edf(contingency).epsilon
        assert pooled < plugin

    def test_finite_under_sparsity(self):
        """Zero counts break Eq. 6; the model stays finite."""
        cells = {
            ("a1", "b1"): [30, 10],
            ("a1", "b2"): [3, 0],     # no positives observed
            ("a2", "b1"): [20, 20],
            ("a2", "b2"): [10, 10],
        }
        contingency = make_contingency(cells)
        assert edf_from_contingency(contingency).epsilon == math.inf
        assert math.isfinite(model_based_edf(contingency).epsilon)

    def test_unseen_cell_excluded_by_default(self):
        cells = {
            ("a1", "b1"): [30, 10],
            ("a1", "b2"): [20, 20],
            ("a2", "b1"): [25, 15],
            ("a2", "b2"): [0, 0],  # never observed
        }
        contingency = make_contingency(cells)
        result = model_based_edf(contingency)
        assert ("a2", "b2") not in result.populated_groups()

    def test_include_unseen_extrapolates(self):
        cells = {
            ("a1", "b1"): [30, 10],
            ("a1", "b2"): [20, 20],
            ("a2", "b1"): [25, 15],
            ("a2", "b2"): [0, 0],
        }
        contingency = make_contingency(cells)
        result = model_based_edf(contingency, include_unseen=True)
        assert ("a2", "b2") in result.populated_groups()
        assert math.isfinite(
            result.probability(("a2", "b2"), "yes")
        )

    def test_multiclass_outcome_rejected(self):
        contingency = ContingencyTable.from_group_counts(
            {("g",): [1, 2, 3], ("h",): [3, 2, 1]},
            factor_names=["a"],
            outcome_name="y",
            outcome_levels=["u", "v", "w"],
        )
        with pytest.raises(ValidationError, match="binary"):
            model_based_edf(contingency)

    def test_single_populated_cell_rejected(self):
        cells = {
            ("a1", "b1"): [10, 10],
            ("a1", "b2"): [0, 0],
            ("a2", "b1"): [0, 0],
            ("a2", "b2"): [0, 0],
        }
        with pytest.raises(ValidationError):
            model_based_edf(make_contingency(cells))

    def test_sparse_subsample_tracks_full_epsilon(self):
        """On a tiny subsample of additive data, the main-effects model is
        a much better estimate of the population epsilon than smoothing."""
        rng = np.random.default_rng(0)
        # Population: additive log-odds, big cells.
        from repro.learn.logistic_regression import sigmoid

        population_cells = {}
        for i, a in enumerate(["a1", "a2"]):
            for j, b in enumerate(["b1", "b2", "b3"]):
                rate = float(sigmoid(np.array([-1.5 + 0.9 * i + 0.5 * j]))[0])
                n = 40000
                k = int(round(n * rate))
                population_cells[(a, b)] = [n - k, k]
        population = make_contingency(population_cells)
        population_epsilon = edf_from_contingency(population).epsilon

        subsample_cells = {
            key: list(rng.multinomial(25, np.asarray(value) / sum(value)))
            for key, value in population_cells.items()
        }
        subsample = make_contingency(subsample_cells)
        pooled = model_based_edf(subsample).epsilon
        assert pooled == pytest.approx(population_epsilon, abs=0.45)
