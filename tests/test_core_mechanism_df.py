"""Tests for repro.core.mechanism (Definition 3.1 over mechanisms and Θ)."""

import math

import numpy as np
import pytest

from repro.core.mechanism import group_outcome_probabilities, mechanism_epsilon
from repro.distributions.base import UncertaintySet
from repro.distributions.categorical import JointCategorical
from repro.distributions.empirical import EmpiricalGroupDistribution
from repro.distributions.gaussian import GroupGaussianScores
from repro.exceptions import ValidationError
from repro.mechanisms.base import ConstantMechanism, FunctionMechanism
from repro.mechanisms.threshold import ScoreThresholdMechanism


def two_group_joint() -> JointCategorical:
    """P(x | g1) = (0.75, 0.25); P(x | g2) = (0.25, 0.75)."""
    joint = np.array([[0.375, 0.125], [0.125, 0.375]])
    return JointCategorical(joint, ["g1", "g2"], [0.0, 1.0])


def indicator_mechanism() -> FunctionMechanism:
    return FunctionMechanism(
        lambda X: np.asarray(X, dtype=float).astype(int), ["no", "yes"]
    )


class TestExactIntegration:
    def test_joint_categorical_exact(self):
        result = mechanism_epsilon(indicator_mechanism(), two_group_joint())
        # P(yes | g1) = 0.25, P(yes | g2) = 0.75 -> eps = log 3 on either side.
        assert result.epsilon == pytest.approx(math.log(3))

    def test_empirical_distribution_exact(self, numeric_table):
        distribution = EmpiricalGroupDistribution(
            numeric_table, ["group"], feature_columns=["x"]
        )
        mechanism = FunctionMechanism(
            lambda X: (np.asarray(X, dtype=float)[:, 0] > 2.5).astype(int),
            ["no", "yes"],
        )
        result = mechanism_epsilon(mechanism, distribution)
        # group a: x in {1,2} -> rate 0; group b: {3,4,5} -> rate 1.
        assert result.epsilon == math.inf

    def test_exact_flag_rejected_for_gaussian(self):
        scores = GroupGaussianScores([0.0, 1.0], [1.0, 1.0])
        with pytest.raises(ValidationError):
            group_outcome_probabilities(
                ScoreThresholdMechanism(0.5), scores, exact=True
            )


class TestMonteCarlo:
    def test_constant_mechanism_is_perfectly_fair(self):
        scores = GroupGaussianScores([0.0, 5.0], [1.0, 1.0])
        mechanism = ConstantMechanism([0.3, 0.7], ["no", "yes"])
        result = mechanism_epsilon(mechanism, scores, n_samples=100, seed=0)
        assert result.epsilon == 0.0

    def test_seed_reproducibility(self):
        scores = GroupGaussianScores([0.0, 1.0], [1.0, 1.0])
        mechanism = ScoreThresholdMechanism(0.5)
        first = mechanism_epsilon(mechanism, scores, n_samples=2000, seed=11)
        second = mechanism_epsilon(mechanism, scores, n_samples=2000, seed=11)
        assert first.epsilon == second.epsilon

    def test_zero_probability_group_skipped(self):
        scores = GroupGaussianScores(
            [0.0, 99.0], [1.0, 1.0], probabilities=[1.0, 0.0]
        )
        mechanism = ScoreThresholdMechanism(0.5)
        matrix = group_outcome_probabilities(mechanism, scores, n_samples=100, seed=0)
        assert np.isnan(matrix[1]).all()

    def test_invalid_sample_count(self):
        scores = GroupGaussianScores([0.0], [1.0])
        with pytest.raises(ValidationError):
            group_outcome_probabilities(
                ScoreThresholdMechanism(0.0), scores, n_samples=0
            )


class TestUncertaintySets:
    def test_sup_over_theta(self):
        """Definition 3.1 takes the maximum over θ in Θ."""
        mechanism = ScoreThresholdMechanism(0.5)
        near = GroupGaussianScores([0.0, 0.5], [1.0, 1.0])
        far = GroupGaussianScores([0.0, 2.0], [1.0, 1.0])
        eps_near = mechanism_epsilon(mechanism, near, n_samples=20_000, seed=1)
        eps_far = mechanism_epsilon(mechanism, far, n_samples=20_000, seed=1)
        both = mechanism_epsilon(
            mechanism, UncertaintySet([near, far]), n_samples=20_000, seed=1
        )
        assert both.epsilon >= max(eps_near.epsilon, eps_far.epsilon) - 0.05

    def test_singleton_equivalent_to_distribution(self):
        mechanism = indicator_mechanism()
        direct = mechanism_epsilon(mechanism, two_group_joint())
        wrapped = mechanism_epsilon(
            mechanism, UncertaintySet.point(two_group_joint())
        )
        assert direct.epsilon == wrapped.epsilon


class TestSubsetTheoremForMechanisms:
    def test_marginal_groups_within_bound(self):
        """Theorem 3.2 on an exact mechanism computation: collapsing the
        group structure cannot more than double epsilon."""
        joint = np.array(
            [[0.10, 0.10], [0.05, 0.25], [0.20, 0.05], [0.15, 0.10]]
        )
        full = JointCategorical(
            joint,
            [("a", "x"), ("a", "y"), ("b", "x"), ("b", "y")],
            [0.0, 1.0],
            attribute_names=("first", "second"),
        )
        mechanism = indicator_mechanism()
        eps_full = mechanism_epsilon(mechanism, full).epsilon
        for axes in ([0], [1]):
            reduced = full.marginalize_groups(axes)
            eps_sub = mechanism_epsilon(mechanism, reduced).epsilon
            assert eps_sub <= 2 * eps_full + 1e-9
            # The sharper mixture bound also holds (see DESIGN.md).
            assert eps_sub <= eps_full + 1e-9
