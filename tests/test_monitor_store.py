"""Tests for repro.monitor.store: the append-only audit-history log.

Covers the framing contract (length-prefix + CRC, segment preamble),
crash behaviour (torn tails are truncated, prefix corruption is loud),
rotation/compaction, the query cursor, and the trend summary.
"""

from __future__ import annotations

import itertools
import struct
import threading

import pytest

from repro.exceptions import StoreError, ValidationError
from repro.monitor.store import (
    AuditHistoryStore,
    SEGMENT_MAGIC,
    sanitize_floats,
)


def fake_clock(start: float = 1_700_000_000.0, step: float = 1.0):
    counter = itertools.count()
    return lambda: start + step * next(counter)


@pytest.fixture
def store(tmp_path):
    return AuditHistoryStore(tmp_path / "history", clock=fake_clock())


def batch_record(monitor="m", epsilon=0.1, **extra):
    return {"monitor": monitor, "kind": "batch", "epsilon": epsilon, **extra}


class TestAppendAndQuery:
    def test_records_get_monotonic_seq_and_clock_ts(self, store):
        first = store.append(batch_record(epsilon=0.1))
        second = store.append(batch_record(epsilon=0.2))
        assert (first["seq"], second["seq"]) == (1, 2)
        assert second["ts"] == first["ts"] + 1.0
        assert store.last_seq() == 2

    def test_query_round_trips_payload(self, store):
        store.append(batch_record(epsilon=0.25, n_rows=40))
        (record,) = store.query()
        assert record["epsilon"] == 0.25
        assert record["n_rows"] == 40
        assert record["kind"] == "batch"

    def test_since_is_an_exclusive_cursor(self, store):
        for epsilon in (0.1, 0.2, 0.3):
            store.append(batch_record(epsilon=epsilon))
        newer = store.query(since=1)
        assert [record["seq"] for record in newer] == [2, 3]
        assert store.query(since=3) == []

    def test_monitor_and_kind_filters(self, store):
        store.append(batch_record(monitor="a"))
        store.append({"monitor": "a", "kind": "alert", "rule": "r"})
        store.append(batch_record(monitor="b"))
        assert len(store.query(monitor="a")) == 2
        assert len(store.query(monitor="a", kind="alert")) == 1
        assert len(store.query(kind="batch")) == 2

    def test_limit_bounds_after_filtering(self, store):
        for index in range(5):
            store.append(batch_record(epsilon=index / 10))
        limited = store.query(limit=2)
        assert [record["seq"] for record in limited] == [1, 2]
        with pytest.raises(ValidationError):
            store.query(limit=-1)

    def test_missing_required_fields_rejected(self, store):
        with pytest.raises(ValidationError, match="monitor"):
            store.append({"kind": "batch"})
        with pytest.raises(ValidationError, match="kind"):
            store.append({"monitor": "m"})

    def test_store_assigned_fields_cannot_be_smuggled(self, store):
        with pytest.raises(ValidationError, match="seq"):
            store.append({**batch_record(), "seq": 99})
        with pytest.raises(ValidationError, match="ts"):
            store.append({**batch_record(), "ts": 0.0})

    def test_non_finite_floats_become_parseable_strings(self, store):
        store.append(batch_record(epsilon=float("inf")))
        (record,) = store.query()
        assert record["epsilon"] == "inf"
        assert float(record["epsilon"]) == float("inf")

    def test_sanitize_floats_recurses(self):
        nested = sanitize_floats(
            {"a": [float("nan"), 1.5], "b": {"c": float("-inf")}}
        )
        assert nested == {"a": ["nan", 1.5], "b": {"c": "-inf"}}


class TestDurability:
    def test_reopen_resumes_the_sequence(self, tmp_path):
        directory = tmp_path / "history"
        store = AuditHistoryStore(directory, clock=fake_clock())
        store.append(batch_record(epsilon=0.1))
        store.append(batch_record(epsilon=0.2))
        reopened = AuditHistoryStore(directory, clock=fake_clock())
        assert reopened.last_seq() == 2
        third = reopened.append(batch_record(epsilon=0.3))
        assert third["seq"] == 3
        assert [record["seq"] for record in reopened.query()] == [1, 2, 3]

    def test_reopen_with_empty_active_segment_keeps_the_sequence(
        self, tmp_path
    ):
        # Rotation creates the next segment eagerly, so a restart can
        # find the newest segment empty; the sequence must resume after
        # the last record in the *older* segments, not reset to 1.
        directory = tmp_path / "history"
        store = AuditHistoryStore(
            directory, segment_bytes=64, clock=fake_clock()
        )
        store.append(batch_record(epsilon=0.1))  # rotates: segment 2 empty
        assert len(list(directory.glob("*.seg"))) == 2
        reopened = AuditHistoryStore(directory, clock=fake_clock())
        assert reopened.last_seq() == 1
        second = reopened.append(batch_record(epsilon=0.2))
        assert second["seq"] == 2
        assert [r["seq"] for r in reopened.query(since=1)] == [2]

    def test_torn_tail_is_truncated_on_reopen(self, tmp_path):
        directory = tmp_path / "history"
        store = AuditHistoryStore(directory, clock=fake_clock())
        store.append(batch_record(epsilon=0.1))
        store.append(batch_record(epsilon=0.2))
        (segment,) = list(directory.glob("*.seg"))
        blob = segment.read_bytes()
        segment.write_bytes(blob[:-7])  # crash mid-append: half a record

        reopened = AuditHistoryStore(directory, clock=fake_clock())
        assert [record["seq"] for record in reopened.query()] == [1]
        # The torn bytes are gone: the next append extends a clean prefix.
        replacement = reopened.append(batch_record(epsilon=0.9))
        assert replacement["seq"] == 2
        assert [r["epsilon"] for r in reopened.query()] == [0.1, 0.9]

    def test_prefix_corruption_is_loud(self, tmp_path):
        directory = tmp_path / "history"
        store = AuditHistoryStore(directory, clock=fake_clock())
        store.append(batch_record(epsilon=0.1))
        store.append(batch_record(epsilon=0.2))
        (segment,) = list(directory.glob("*.seg"))
        blob = bytearray(segment.read_bytes())
        blob[14] ^= 0xFF  # flip a bit inside the first record
        segment.write_bytes(bytes(blob))
        with pytest.raises(StoreError, match="CRC"):
            list(store.query())

    def test_foreign_file_is_loud(self, tmp_path):
        directory = tmp_path / "history"
        store = AuditHistoryStore(directory, clock=fake_clock())
        store.append(batch_record())
        (segment,) = list(directory.glob("*.seg"))
        segment.write_bytes(b"NOPE" + segment.read_bytes()[4:])
        with pytest.raises(StoreError, match="magic"):
            store.query()

    def test_segment_preamble_is_magic_versioned(self, tmp_path):
        store = AuditHistoryStore(tmp_path / "history", clock=fake_clock())
        store.append(batch_record())
        (segment,) = list((tmp_path / "history").glob("*.seg"))
        magic, version, _ = struct.unpack_from("<4sHH", segment.read_bytes())
        assert magic == SEGMENT_MAGIC
        assert version == 1


class TestRotationAndCompaction:
    def small_store(self, tmp_path):
        # ~90 bytes per record: a tiny threshold forces rotation fast.
        return AuditHistoryStore(
            tmp_path / "history", segment_bytes=256, clock=fake_clock()
        )

    def test_appends_rotate_segments_by_size(self, tmp_path):
        store = self.small_store(tmp_path)
        for index in range(12):
            store.append(batch_record(epsilon=index / 10))
        segments = sorted((tmp_path / "history").glob("*.seg"))
        assert len(segments) > 2
        # Every record is still readable across the segment boundaries.
        assert [record["seq"] for record in store.query()] == list(range(1, 13))

    def test_compact_drops_oldest_whole_segments(self, tmp_path):
        store = self.small_store(tmp_path)
        for index in range(12):
            store.append(batch_record(epsilon=index / 10))
        before = len(list((tmp_path / "history").glob("*.seg")))
        removed = store.compact(keep_segments=2)
        assert len(removed) == before - 2
        survivors = store.query()
        # A contiguous *suffix* of the history survives.
        seqs = [record["seq"] for record in survivors]
        assert seqs == list(range(seqs[0], 13))
        with pytest.raises(ValidationError):
            store.compact(keep_segments=0)

    def test_concurrent_appends_never_lose_or_duplicate_seq(self, tmp_path):
        store = AuditHistoryStore(tmp_path / "history", clock=fake_clock())
        n_threads, per_thread = 8, 25
        barrier = threading.Barrier(n_threads)

        def writer(which: int):
            barrier.wait()
            for index in range(per_thread):
                store.append(batch_record(monitor=f"m{which}", epsilon=0.1))

        threads = [
            threading.Thread(target=writer, args=(which,))
            for which in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        records = store.query()
        assert len(records) == n_threads * per_thread
        seqs = [record["seq"] for record in records]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_compact_races_concurrent_append_and_query(self, tmp_path):
        # compact() unlinks whole segments while writers keep rotating
        # new ones in and readers walk the directory. The contract under
        # the race: no crash, every surviving sequence is a contiguous
        # suffix per query, appends never lose or duplicate a seq, and a
        # query never observes a half-deleted segment (missing files are
        # skipped, not raised).
        store = AuditHistoryStore(
            tmp_path / "history", segment_bytes=256, clock=fake_clock()
        )
        n_writers, per_writer, n_rounds = 4, 50, 30
        barrier = threading.Barrier(n_writers + 2)
        errors: list[BaseException] = []

        def guard(work):
            try:
                work()
            except BaseException as error:  # noqa: BLE001 - reraised below
                errors.append(error)

        def writer(which: int):
            barrier.wait()
            for _ in range(per_writer):
                store.append(batch_record(monitor=f"m{which}", epsilon=0.1))

        def compactor():
            barrier.wait()
            for _ in range(n_rounds):
                store.compact(keep_segments=2)

        def reader():
            barrier.wait()
            for _ in range(n_rounds):
                records = store.query()
                seqs = [record["seq"] for record in records]
                # Mid-compaction a reader may catch a transient gap (a
                # segment it walked past was unlinked under it), but
                # never disorder, duplicates, or an exception.
                assert seqs == sorted(seqs)
                assert len(set(seqs)) == len(seqs)

        threads = [
            threading.Thread(target=guard, args=(lambda w=w: writer(w),))
            for w in range(n_writers)
        ]
        threads.append(threading.Thread(target=guard, args=(compactor,)))
        threads.append(threading.Thread(target=guard, args=(reader,)))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not any(thread.is_alive() for thread in threads)
        if errors:
            raise errors[0]
        # The writers' full tail is intact after the last compaction.
        final = [record["seq"] for record in store.query()]
        assert final == list(range(final[0], n_writers * per_writer + 1))


class TestTrend:
    def test_trend_summarises_epsilon_drift(self, store):
        for epsilon in (0.1, 0.2, 0.3, 0.4):
            store.append(batch_record(epsilon=epsilon))
        store.append({"monitor": "m", "kind": "alert", "rule": "r"})
        trend = store.trend("m")
        assert trend.n_batches == 4
        assert trend.first == 0.1
        assert trend.last == 0.4
        assert trend.drift == pytest.approx(0.3)
        assert trend.slope == pytest.approx(0.1)
        assert trend.mean == pytest.approx(0.25)

    def test_trend_window_limits_the_span(self, store):
        for epsilon in (0.5, 0.1, 0.2):
            store.append(batch_record(epsilon=epsilon))
        trend = store.trend("m", window=2)
        assert trend.n_batches == 2
        assert trend.first == 0.1
        assert trend.drift == pytest.approx(0.1)

    def test_trend_of_unknown_monitor_is_none(self, store):
        assert store.trend("ghost") is None

    def test_single_record_trend_has_zero_slope(self, store):
        store.append(batch_record(epsilon=0.2))
        trend = store.trend("m")
        assert trend.slope == 0.0
        assert trend.drift == 0.0
