"""Tests for repro.core.estimators (Equations 6 and 7)."""

import numpy as np
import pytest

from repro.core.estimators import DirichletEstimator, MLEEstimator, as_estimator
from repro.exceptions import ValidationError


class TestMLE:
    def test_plain_frequencies(self):
        probs = MLEEstimator().probabilities(np.array([[3.0, 1.0], [2.0, 2.0]]))
        assert probs[0].tolist() == [0.75, 0.25]
        assert probs[1].tolist() == [0.5, 0.5]

    def test_empty_group_is_nan(self):
        probs = MLEEstimator().probabilities(np.array([[0.0, 0.0], [1.0, 1.0]]))
        assert np.isnan(probs[0]).all()
        assert probs[1].tolist() == [0.5, 0.5]

    def test_rejects_negative_counts(self):
        with pytest.raises(ValidationError):
            MLEEstimator().probabilities(np.array([[-1.0, 2.0]]))

    def test_rejects_non_matrix(self):
        with pytest.raises(ValidationError):
            MLEEstimator().probabilities(np.array([1.0, 2.0]))


class TestDirichlet:
    def test_equation_seven(self):
        # (N_y + alpha) / (N + |Y| alpha) with alpha = 1.
        probs = DirichletEstimator(1.0).probabilities(np.array([[3.0, 1.0]]))
        assert probs[0, 0] == pytest.approx(4.0 / 6.0)
        assert probs[0, 1] == pytest.approx(2.0 / 6.0)

    def test_rows_sum_to_one(self):
        probs = DirichletEstimator(2.5).probabilities(
            np.array([[5.0, 0.0, 2.0], [1.0, 1.0, 1.0]])
        )
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_no_zero_probabilities(self):
        probs = DirichletEstimator(1.0).probabilities(np.array([[10.0, 0.0]]))
        assert (probs > 0).all()

    def test_unobserved_group_still_excluded(self):
        """Smoothing estimates P(y|s); a group with P(s)=0 stays excluded."""
        probs = DirichletEstimator(1.0).probabilities(
            np.array([[0.0, 0.0], [1.0, 3.0]])
        )
        assert np.isnan(probs[0]).all()

    def test_large_alpha_approaches_uniform(self):
        probs = DirichletEstimator(1e9).probabilities(np.array([[100.0, 0.0]]))
        assert probs[0, 0] == pytest.approx(0.5, abs=1e-6)

    def test_alpha_must_be_positive(self):
        with pytest.raises(ValidationError):
            DirichletEstimator(0.0)

    def test_name_mentions_alpha(self):
        assert "0.5" in DirichletEstimator(0.5).name


class TestAsEstimator:
    def test_none_gives_mle(self):
        assert isinstance(as_estimator(None), MLEEstimator)

    def test_number_gives_dirichlet(self):
        estimator = as_estimator(2.0)
        assert isinstance(estimator, DirichletEstimator)
        assert estimator.alpha == 2.0

    def test_passthrough(self):
        estimator = MLEEstimator()
        assert as_estimator(estimator) is estimator

    def test_bool_rejected(self):
        with pytest.raises(ValidationError):
            as_estimator(True)

    def test_string_rejected(self):
        with pytest.raises(ValidationError):
            as_estimator("mle")
