"""Tests for the fairness/accuracy trade-off module."""

import numpy as np
import pytest

from repro.audit.tradeoff import (
    TradeoffCurve,
    TradeoffPoint,
    fairness_weight_sweep,
)
from repro.data.generators import sample_outcome_table
from repro.exceptions import ValidationError
from repro.tabular.column import Column


class TestTradeoffPoint:
    def test_domination(self):
        better = TradeoffPoint(0.0, epsilon=1.0, error_percent=10.0)
        worse = TradeoffPoint(1.0, epsilon=2.0, error_percent=12.0)
        assert better.dominates(worse)
        assert not worse.dominates(better)

    def test_incomparable_points(self):
        fair = TradeoffPoint(0.0, epsilon=0.5, error_percent=20.0)
        accurate = TradeoffPoint(1.0, epsilon=2.0, error_percent=10.0)
        assert not fair.dominates(accurate)
        assert not accurate.dominates(fair)

    def test_equal_points_do_not_dominate(self):
        a = TradeoffPoint(0.0, epsilon=1.0, error_percent=10.0)
        b = TradeoffPoint(1.0, epsilon=1.0, error_percent=10.0)
        assert not a.dominates(b)


class TestTradeoffCurve:
    @pytest.fixture
    def curve(self) -> TradeoffCurve:
        return TradeoffCurve(
            points=(
                TradeoffPoint(0.0, epsilon=2.0, error_percent=10.0),
                TradeoffPoint(0.5, epsilon=1.0, error_percent=12.0),
                TradeoffPoint(1.0, epsilon=1.5, error_percent=15.0),  # dominated
                TradeoffPoint(2.0, epsilon=0.5, error_percent=20.0),
            )
        )

    def test_pareto_front(self, curve):
        front = curve.pareto_front()
        assert [point.parameter for point in front] == [2.0, 0.5, 0.0]

    def test_best_under_budget(self, curve):
        assert curve.best_under_budget(1.2).parameter == 0.5
        assert curve.best_under_budget(10.0).parameter == 0.0

    def test_budget_unsatisfiable(self, curve):
        with pytest.raises(ValidationError):
            curve.best_under_budget(0.1)

    def test_to_text_marks_front(self, curve):
        text = curve.to_text()
        assert "Pareto" in text
        assert "*" in text

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            TradeoffCurve(points=())


class TestFairnessWeightSweep:
    @pytest.fixture(scope="class")
    def tables(self):
        rng = np.random.default_rng(0)
        cells = {("F",): 0.15, ("M",): 0.45}
        out = []
        for _ in range(2):
            base = sample_outcome_table(
                {key: 1500 for key in cells},
                cells,
                attribute_names=["gender"],
                outcome_name="label",
                outcome_levels=("neg", "pos"),
                seed=rng,
            )
            score = (
                base.column("label").equals_mask("pos") * 1.5
                + rng.normal(size=base.n_rows)
            )
            out.append(base.with_column(Column.numeric("score", score)))
        return out

    def test_sweep_produces_frontier(self, tables):
        train, test = tables
        curve = fairness_weight_sweep(
            train,
            test,
            protected=["gender"],
            outcome="label",
            weights=(0.0, 1.0, 10.0),
            max_iter=100,
        )
        assert len(curve.points) == 3
        # Heavier regularisation yields lower epsilon than none.
        assert curve.points[-1].epsilon < curve.points[0].epsilon
        # The unregularised model is Pareto-optimal on accuracy.
        front_parameters = {p.parameter for p in curve.pareto_front()}
        assert 0.0 in front_parameters or any(
            p.error_percent <= curve.points[0].error_percent
            for p in curve.pareto_front()
        )

    def test_empty_weights_rejected(self, tables):
        train, test = tables
        with pytest.raises(ValidationError):
            fairness_weight_sweep(
                train, test, protected=["gender"], outcome="label", weights=()
            )
