"""Tests for naive Bayes and the decision tree."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.learn.decision_tree import DecisionTreeClassifier
from repro.learn.naive_bayes import CategoricalNB


class TestCategoricalNB:
    def test_exact_posterior_small_case(self):
        """Hand-computed posterior for one feature, alpha = 1."""
        X = np.array([[0], [0], [1], [1], [1]])
        y = [0, 0, 0, 1, 1]
        model = CategoricalNB(alpha=1.0).fit(X, y)
        probs = model.predict_proba(np.array([[0]]))
        # P(y=0) ∝ (3+1)/(5+2) * (2+1)/(3+2);  P(y=1) ∝ (2+1)/7 * (0+1)/(2+2)
        p0 = (4 / 7) * (3 / 5)
        p1 = (3 / 7) * (1 / 4)
        assert probs[0, 0] == pytest.approx(p0 / (p0 + p1))

    def test_predicts_majority_feature_association(self):
        X = np.array([[0, 0], [0, 1], [1, 0], [1, 1]] * 10)
        y = ["a", "a", "b", "b"] * 10
        model = CategoricalNB().fit(X, y)
        assert model.predict(np.array([[0, 0]]))[0] == "a"
        assert model.predict(np.array([[1, 1]]))[0] == "b"

    def test_unseen_code_uses_floor(self):
        X = np.array([[0], [1]])
        model = CategoricalNB().fit(X, [0, 1])
        probs = model.predict_proba(np.array([[7]]))
        assert np.isfinite(probs).all()
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_rows_sum_to_one(self, rng):
        X = rng.integers(0, 4, size=(100, 3))
        y = rng.integers(0, 2, size=100)
        model = CategoricalNB().fit(X, y)
        probs = model.predict_proba(X)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_non_integer_rejected(self):
        with pytest.raises(ValidationError):
            CategoricalNB().fit(np.array([[0.5]]), [0])

    def test_negative_code_rejected(self):
        with pytest.raises(ValidationError):
            CategoricalNB().fit(np.array([[-1]]), [0])

    def test_feature_width_checked(self):
        model = CategoricalNB().fit(np.array([[0, 1]]), [0])
        with pytest.raises(ValidationError):
            model.predict(np.array([[0]]))


class TestDecisionTree:
    def test_fits_xor_perfectly(self):
        """A depth-2 tree represents XOR, which linear models cannot."""
        X = np.array([[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0]] * 5)
        y = [0, 1, 1, 0] * 5
        model = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert model.predict(X).tolist() == y

    def test_max_depth_zero_is_majority_vote(self):
        X = np.array([[0.0], [1.0], [2.0]])
        model = DecisionTreeClassifier(max_depth=0).fit(X, [0, 1, 1])
        assert model.predict(np.array([[0.0]]))[0] == 1
        assert model.depth() == 0

    def test_depth_respects_limit(self, rng):
        X = rng.normal(size=(200, 3))
        y = (X[:, 0] > 0).astype(int)
        model = DecisionTreeClassifier(max_depth=3).fit(X, y)
        assert model.depth() <= 3

    def test_min_samples_leaf(self, rng):
        X = rng.normal(size=(50, 1))
        y = (X[:, 0] > 0).astype(int)
        model = DecisionTreeClassifier(min_samples_leaf=25).fit(X, y)
        # Any split would leave a leaf below the minimum -> a stump or root.
        assert model.depth() <= 1

    def test_probabilities_are_leaf_fractions(self):
        X = np.array([[0.0], [0.0], [0.0], [10.0]])
        y = [0, 0, 1, 1]
        model = DecisionTreeClassifier(max_depth=1).fit(X, y)
        probs = model.predict_proba(np.array([[0.0]]))
        assert probs[0].tolist() == pytest.approx([2 / 3, 1 / 3])

    def test_pure_node_stops_splitting(self):
        X = np.array([[float(i)] for i in range(10)])
        y = [1] * 10
        model = DecisionTreeClassifier().fit(X, y)
        assert model.depth() == 0

    def test_constant_features_give_root_leaf(self):
        X = np.zeros((10, 2))
        y = [0, 1] * 5
        model = DecisionTreeClassifier().fit(X, y)
        assert model.depth() == 0

    def test_generalisation_on_simple_boundary(self, rng):
        X = rng.uniform(-1, 1, size=(500, 2))
        y = (X[:, 0] + X[:, 1] > 0).astype(int)
        model = DecisionTreeClassifier(max_depth=6, min_samples_leaf=5).fit(X, y)
        X_test = rng.uniform(-1, 1, size=(500, 2))
        y_test = (X_test[:, 0] + X_test[:, 1] > 0).astype(int)
        assert model.score(X_test, y_test) > 0.85

    def test_parameter_validation(self):
        with pytest.raises(ValidationError):
            DecisionTreeClassifier(max_depth=-1)
        with pytest.raises(ValidationError):
            DecisionTreeClassifier(min_samples_split=1)
        with pytest.raises(ValidationError):
            DecisionTreeClassifier(min_samples_leaf=0)

    def test_feature_count_checked(self):
        model = DecisionTreeClassifier().fit(np.zeros((4, 2)), [0, 1, 0, 1])
        with pytest.raises(ValidationError):
            model.predict(np.zeros((1, 3)))
