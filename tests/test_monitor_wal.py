"""Tests for repro.monitor.wal plus the kill-at-every-boundary matrix.

The unit half pins the WAL's contract: dense sequence numbers, reopen
continuity, torn-tail recovery, size rotation, checkpoint-driven trim,
group-committed fsyncs, the degraded/probe admission cycle, and — the
subtle part — *rollback*: a failed write or fsync must leave the log
exactly as if the append never happened, or a client retry plus a
restart replay would double-count the batch.

The fault matrix (``-m faults``) is the PR's acceptance criterion: for
every crash boundary (torn WAL write, failed fsync, durable-but-
unapplied, buffered-but-unsynced, post-ack, between apply and history
append, before/inside/after checkpoint writes) and several batch
positions, a run that is killed there and recovers must end
bit-identical to a run that never crashed — same epsilon, same counts,
same apply cursor, and a history with every batch exactly once.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from faults import (
    CrashingCall,
    FaultyFileSystem,
    SimulatedCrash,
    feed_with_recovery,
)
from repro.exceptions import StoreError, ValidationError, WalError
from repro.monitor.registry import MonitorConfig, MonitorRegistry
from repro.monitor.wal import WriteAheadLog, inspect_wal

NAMES = ["gender", "race", "hired"]


def fake_clock(start: float = 1_700_000_000.0):
    state = {"now": start}

    def clock() -> float:
        state["now"] += 1.0
        return state["now"]

    return clock


def synthetic_batches(
    n_batches: int, batch_rows: int = 20, seed: int = 7
) -> list[list[tuple[str, str, str]]]:
    rng = np.random.default_rng(seed)
    return [
        [
            (
                f"g{rng.integers(2)}",
                f"r{rng.integers(3)}",
                f"y{rng.integers(2)}",
            )
            for _ in range(batch_rows)
        ]
        for _ in range(n_batches)
    ]


class TestWriteAheadLog:
    def test_append_assigns_dense_seqs_and_stamps(self, tmp_path):
        wal = WriteAheadLog(tmp_path, clock=fake_clock())
        assert wal.last_seq == 0
        seqs = [wal.append({"rows": [[1, 2, 3]]}) for _ in range(5)]
        assert seqs == [1, 2, 3, 4, 5]
        records = list(wal.records())
        assert [r["seq"] for r in records] == seqs
        assert all(r["ts"] > 0 for r in records)
        assert all(r["rows"] == [[1, 2, 3]] for r in records)
        wal.close()

    def test_reserved_fields_rejected(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        for reserved in ("seq", "ts"):
            with pytest.raises(ValidationError, match="assigned by the WAL"):
                wal.append({reserved: 1, "rows": []})
        with pytest.raises(ValidationError, match="JSON"):
            wal.append({"rows": object()})
        assert wal.last_seq == 0
        wal.close()

    def test_segment_bytes_floor(self, tmp_path):
        with pytest.raises(ValidationError, match="segment_bytes"):
            WriteAheadLog(tmp_path, segment_bytes=16)

    def test_records_since(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        for index in range(6):
            wal.append({"rows": [[index]]})
        assert [r["seq"] for r in wal.records(since=4)] == [5, 6]
        assert list(wal.records(since=6)) == []
        wal.close()

    def test_align_seq_fast_forwards_past_external_cursor(self, tmp_path):
        # The checkpointed apply cursor can legitimately be ahead of a
        # fresh or trimmed-empty log (a --no-wal run, a repointed
        # --wal-dir); appends after alignment must always outrun it.
        wal = WriteAheadLog(tmp_path)
        assert wal.align_seq(7) == 8
        assert wal.last_seq == 7  # counter pinned, no record written
        assert wal.append({"rows": [[1]]}) == 8
        # Never moves backwards: an up-to-date log is left alone.
        assert wal.align_seq(3) == 9
        assert wal.append({"rows": [[2]]}) == 9
        assert [r["seq"] for r in wal.records()] == [8, 9]
        wal.close()

    def test_reopen_continues_sequence(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        for index in range(4):
            wal.append({"rows": [[index]]})
        wal.close()
        reopened = WriteAheadLog(tmp_path)
        assert reopened.last_seq == 4
        assert reopened.append({"rows": [[4]]}) == 5
        reopened.close()

    def test_torn_tail_truncated_on_reopen(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        for index in range(3):
            wal.append({"rows": [[index]]})
        wal.close()
        segment = sorted(tmp_path.glob("wal-*.seg"))[-1]
        intact = segment.stat().st_size
        with segment.open("ab") as handle:
            handle.write(b"\xde\xad\xbe\xef" * 5)
        reopened = WriteAheadLog(tmp_path)
        assert segment.stat().st_size == intact
        assert reopened.last_seq == 3
        assert reopened.append({"rows": [[3]]}) == 4
        assert [r["seq"] for r in reopened.records()] == [1, 2, 3, 4]
        reopened.close()

    def test_rotation_seals_and_trim_reclaims(self, tmp_path):
        # Tiny segments: every append overflows, sealing one segment per
        # record; the active (empty) successor must always survive trim.
        wal = WriteAheadLog(tmp_path, segment_bytes=64)
        for index in range(5):
            wal.append({"rows": [[index, "pad-past-the-rotation-floor"]]})
        assert wal.status()["segments"] == 6
        removed = wal.trim(3)
        assert len(removed) == 3
        assert [r["seq"] for r in wal.records()] == [4, 5]
        assert wal.trim(3) == []
        # Sequence numbering survives reopen across the trimmed prefix.
        wal.close()
        reopened = WriteAheadLog(tmp_path, segment_bytes=64)
        assert reopened.last_seq == 5
        assert reopened.append({"rows": [[5]]}) == 6
        reopened.close()

    def test_group_commit_batches_fsyncs(self, tmp_path):
        # A slowed fsync makes producers pile up behind the sync lock,
        # so one leader's fsync covers every follower buffered meanwhile.
        filesystem = FaultyFileSystem()
        filesystem.fsync_delay = 0.005
        wal = WriteAheadLog(tmp_path, filesystem=filesystem)
        threads, per_thread = 8, 25
        barrier = threading.Barrier(threads)

        def produce(worker: int) -> None:
            barrier.wait()
            for index in range(per_thread):
                wal.append({"rows": [[worker, index]]})

        workers = [
            threading.Thread(target=produce, args=(w,)) for w in range(threads)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        status = wal.status()
        assert status["appends"] == threads * per_thread
        assert status["fsyncs"] < status["appends"]
        seqs = [r["seq"] for r in wal.records()]
        assert seqs == list(range(1, threads * per_thread + 1))
        wal.close()

    def test_fsync_failure_rolls_back_and_probe_heals(self, tmp_path):
        filesystem = FaultyFileSystem()
        clock = fake_clock()
        wal = WriteAheadLog(
            tmp_path, filesystem=filesystem, clock=clock, probe_interval=3.0
        )
        first = wal.append({"rows": [[1]]})
        filesystem.fail_fsync_at.add(filesystem.fsync_calls + 1)
        with pytest.raises(WalError, match="safe to retry") as excinfo:
            wal.append({"rows": [[2]]})
        assert excinfo.value.indeterminate is False  # clean rollback
        assert wal.degraded
        assert "fsync failed" in wal.degraded_reason
        # The failed append is fully rolled back: no record, no seq.
        assert wal.last_seq == first
        # Fast-fail until the probe interval elapses (1s per clock call).
        assert not wal.admit()
        assert not wal.admit()
        assert wal.admit()  # the probe
        assert not wal.admit()
        retried = wal.append({"rows": [[2]]})
        assert retried == first + 1
        assert not wal.degraded
        assert [r["rows"] for r in wal.records()] == [[[1]], [[2]]]
        wal.close()

    def test_unrollbackable_fsync_failure_is_indeterminate(self, tmp_path):
        # When the fsync fails AND the rollback's truncate fails, the
        # record may still be durable (a crash would replay it), so the
        # error must advertise itself as not-safe-to-retry — the service
        # maps this to a non-retryable 500, never a Retry-After 503.
        filesystem = FaultyFileSystem()
        wal = WriteAheadLog(
            tmp_path, filesystem=filesystem, probe_interval=0.0
        )
        wal.append({"rows": [[1]]})
        filesystem.fail_fsync_at.add(filesystem.fsync_calls + 1)
        handle = wal._handle

        def broken_truncate(*args):
            raise OSError(5, "injected truncate failure")

        handle.truncate = broken_truncate
        with pytest.raises(WalError, match="indeterminate") as excinfo:
            wal.append({"rows": [[2]]})
        assert excinfo.value.indeterminate is True
        assert wal.degraded
        # Once the disk heals, the pending truncate removes the
        # maybe-durable bytes before the next record, so the log's
        # in-process policy (the batch was never acked) wins.
        del handle.truncate
        retried = wal.append({"rows": [[2]]})
        assert retried == 2
        assert [r["seq"] for r in wal.records()] == [1, 2]
        wal.close()

    def test_partial_write_truncated_then_clean_retry(self, tmp_path):
        filesystem = FaultyFileSystem()
        wal = WriteAheadLog(
            tmp_path, filesystem=filesystem, probe_interval=0.0
        )
        wal.append({"rows": [[1]]})
        filesystem.short_write_at.add(filesystem.write_calls + 1)
        with pytest.raises(WalError, match="safe to retry"):
            wal.append({"rows": [[2]]})
        assert wal.degraded
        retried = wal.append({"rows": [[2]]})
        assert retried == 2
        assert not wal.degraded
        # No torn bytes mid-segment: every record is readable.
        assert [r["seq"] for r in wal.records()] == [1, 2]
        wal.close()
        assert WriteAheadLog(tmp_path).last_seq == 2

    def test_slow_fsync_marks_degraded_without_losing_the_batch(
        self, tmp_path
    ):
        filesystem = FaultyFileSystem()
        filesystem.fsync_delay = 0.02
        wal = WriteAheadLog(
            tmp_path,
            filesystem=filesystem,
            probe_interval=0.0,
            stall_threshold=0.005,
        )
        seq = wal.append({"rows": [[1]]})
        assert seq == 1  # the append succeeded and is durable...
        assert wal.degraded  # ...but the disk is stalling: shed load
        assert "stalled" in wal.degraded_reason
        filesystem.fsync_delay = 0.0
        assert wal.append({"rows": [[2]]}) == 2
        assert not wal.degraded
        wal.close()

    def test_inspect_wal_reports_without_truncating(self, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_bytes=64, clock=fake_clock())
        for index in range(3):
            wal.append({"rows": [[index], [index]]})
        wal.close()
        newest = sorted(tmp_path.glob("wal-*.seg"))[-1]
        with newest.open("ab") as handle:
            handle.write(b"\x00" * 7)
        before = newest.stat().st_size
        report = inspect_wal(tmp_path)
        assert newest.stat().st_size == before  # read-only
        assert report["records"] == 3
        assert report["rows"] == 6
        assert (report["first_seq"], report["last_seq"]) == (1, 3)
        assert report["segments"][-1]["torn_bytes"] == 7
        assert sum(s["records"] for s in report["segments"]) == 3

    def test_inspect_wal_missing_directory(self, tmp_path):
        with pytest.raises(StoreError, match="does not exist"):
            inspect_wal(tmp_path / "ghost")


@pytest.mark.faults
class TestFaultMatrix:
    """Kill the process at every boundary; recovery must be bit-identical.

    ``feed_with_recovery`` treats ``SimulatedCrash``/``WalError`` as
    process death: abandon the registry un-shut-down, reopen fault-free
    (checkpoint restore + WAL replay), resume at the first unapplied
    batch. The survivor is compared field-by-field against a crash-free
    control run over the same batches.
    """

    N_BATCHES = 6
    CHECKPOINT_EVERY = 2

    def _config(self, window):
        return MonitorConfig(
            name="faulty",
            protected=("gender", "race"),
            outcome=NAMES[2],
            window=window,
        )

    def _snapshot(self, registry):
        monitor = registry.get("faulty")
        auditor = monitor._auditor
        state = auditor.state_dict()
        history = registry.store.query(monitor="faulty", kind="batch")
        return {
            "epsilon": monitor.epsilon(),
            "batches": monitor.batches,
            "rows_seen": monitor.rows_seen,
            "applied_seq": auditor.applied_seq,
            "counts": state["accumulator"]["counts"],
            "history": [int(r["batch_index"]) for r in history],
        }

    def _baseline(self, tmp_path, window):
        registry, crashes = feed_with_recovery(
            tmp_path / "control",
            self._config(window),
            synthetic_batches(self.N_BATCHES),
            checkpoint_every=self.CHECKPOINT_EVERY,
        )
        assert crashes == 0
        snapshot = self._snapshot(registry)
        registry.close()
        return snapshot

    def _assert_identical(self, survivor, control, *, crashes):
        assert crashes >= 1, "the fault never fired"
        assert survivor["epsilon"] == control["epsilon"]  # bit-identical
        assert survivor["batches"] == control["batches"]
        assert survivor["rows_seen"] == control["rows_seen"]
        assert survivor["applied_seq"] == control["applied_seq"]
        assert np.array_equal(survivor["counts"], control["counts"])
        assert survivor["history"] == list(range(1, self.N_BATCHES + 1))
        assert control["history"] == list(range(1, self.N_BATCHES + 1))

    @pytest.mark.parametrize("window", [None, 70])
    @pytest.mark.parametrize("batch", [1, 3, 6])
    @pytest.mark.parametrize(
        "fault",
        [
            "short_write_at",  # torn WAL record (never durable)
            "fail_write_at",  # append rejected outright
            "fail_fsync_at",  # written, not durable: rolled back
            "crash_after_write_at",  # buffered, process dies pre-fsync
            "crash_after_fsync_at",  # durable but unapplied, unacked
            "crash_before_write_at",  # post-ack of the previous batch
        ],
    )
    def test_wal_boundaries(self, tmp_path, window, batch, fault):
        control = self._baseline(tmp_path, window)
        filesystem = FaultyFileSystem()
        # Filesystem ordinal 1 is the first segment's preamble; batch k
        # is the (k+1)-th write and (k+1)-th fsync through the seam.
        getattr(filesystem, fault).add(batch + 1)
        registry, crashes = feed_with_recovery(
            tmp_path / "crashy",
            self._config(window),
            synthetic_batches(self.N_BATCHES),
            filesystem=filesystem,
            checkpoint_every=self.CHECKPOINT_EVERY,
        )
        self._assert_identical(
            self._snapshot(registry), control, crashes=crashes
        )
        registry.close()

    @pytest.mark.parametrize("window", [None, 70])
    @pytest.mark.parametrize("batch", [1, 3, 6])
    def test_crash_between_apply_and_history(
        self, tmp_path, window, batch, monkeypatch
    ):
        from repro.monitor.store import AuditHistoryStore

        control = self._baseline(tmp_path, window)
        monkeypatch.setattr(
            AuditHistoryStore,
            "append",
            CrashingCall(AuditHistoryStore.append, at=batch, before=True),
        )
        registry, crashes = feed_with_recovery(
            tmp_path / "crashy",
            self._config(window),
            synthetic_batches(self.N_BATCHES),
            checkpoint_every=self.CHECKPOINT_EVERY,
        )
        self._assert_identical(
            self._snapshot(registry), control, crashes=crashes
        )
        registry.close()

    @pytest.mark.parametrize("window", [None, 70])
    @pytest.mark.parametrize(
        "target,nth,before",
        [
            # Before generation rotation: the old checkpoint is intact.
            ("rotate_checkpoint", 1, True),
            ("rotate_checkpoint", 2, True),
            # After rotation, before the new generation is written.
            ("save_auditor_state", 1, True),
            ("save_auditor_state", 2, True),
            # Checkpoint written, cursor/trim bookkeeping never ran.
            ("save_auditor_state", 1, False),
            ("save_auditor_state", 3, False),
        ],
    )
    def test_crash_around_checkpoint_writes(
        self, tmp_path, window, target, nth, before, monkeypatch
    ):
        import repro.monitor.registry as registry_module

        control = self._baseline(tmp_path, window)
        monkeypatch.setattr(
            registry_module,
            target,
            CrashingCall(
                getattr(registry_module, target), at=nth, before=before
            ),
        )
        registry, crashes = feed_with_recovery(
            tmp_path / "crashy",
            self._config(window),
            synthetic_batches(self.N_BATCHES),
            checkpoint_every=self.CHECKPOINT_EVERY,
        )
        self._assert_identical(
            self._snapshot(registry), control, crashes=crashes
        )
        registry.close()

    # With an always-firing rule each batch makes two history appends
    # (its batch record, then its alert); crashing on the Nth append
    # lands between them — the boundary where the alert used to be
    # permanently lost because replay gated both kinds on the batch
    # cutoff. Ordinal 2k is batch k's alert append.
    @pytest.mark.parametrize("append_ordinal", [2, 4, 6])
    def test_crash_between_batch_and_alert_appends(
        self, tmp_path, append_ordinal, monkeypatch
    ):
        from repro.monitor.rules import EpsilonThresholdRule
        from repro.monitor.store import AuditHistoryStore

        config = MonitorConfig(
            name="faulty",
            protected=("gender", "race"),
            outcome=NAMES[2],
            alpha=1.0,
            rules=(EpsilonThresholdRule(-1.0, severity="info"),),
        )
        batches = synthetic_batches(self.N_BATCHES)
        every_batch = list(range(1, self.N_BATCHES + 1))
        control, crashes = feed_with_recovery(
            tmp_path / "control",
            config,
            batches,
            checkpoint_every=self.CHECKPOINT_EVERY,
        )
        assert crashes == 0
        control_epsilon = control.get("faulty").epsilon()
        assert [
            int(r["batch_index"])
            for r in control.store.query(monitor="faulty", kind="alert")
        ] == every_batch
        control.close()

        monkeypatch.setattr(
            AuditHistoryStore,
            "append",
            CrashingCall(
                AuditHistoryStore.append, at=append_ordinal, before=True
            ),
        )
        registry, crashes = feed_with_recovery(
            tmp_path / "crashy",
            config,
            batches,
            checkpoint_every=self.CHECKPOINT_EVERY,
        )
        assert crashes == 1
        store = registry.store
        assert [
            int(r["batch_index"])
            for r in store.query(monitor="faulty", kind="batch")
        ] == every_batch
        # The crash cut off exactly one alert append; replay re-appends
        # it — every batch's alert present exactly once, in order.
        assert [
            int(r["batch_index"])
            for r in store.query(monitor="faulty", kind="alert")
        ] == every_batch
        assert registry.get("faulty").epsilon() == control_epsilon
        registry.close()

    def test_repeated_crashes_converge(self, tmp_path):
        # Several boundaries armed at once: recovery composes.
        control = self._baseline(tmp_path, None)
        filesystem = FaultyFileSystem()
        filesystem.short_write_at.add(2)  # batch 1 torn
        filesystem.fail_fsync_at.add(4)  # a later batch's fsync dies
        filesystem.crash_after_fsync_at.add(6)  # durable-unapplied later
        registry, crashes = feed_with_recovery(
            tmp_path / "crashy",
            self._config(None),
            synthetic_batches(self.N_BATCHES),
            filesystem=filesystem,
            checkpoint_every=self.CHECKPOINT_EVERY,
        )
        assert crashes >= 3
        self._assert_identical(
            self._snapshot(registry), control, crashes=crashes
        )
        registry.close()
