"""Tests for repro.engine.backends and the csv_io shard planners.

The execution layer's contract is *bit-identity*: counting is a
commutative monoid, so serial, multi-process, and merged-shard ingests
must produce the same integers, the same epsilons, and the same report
bytes. Everything here asserts exact equality, never approximate.
"""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.audit.auditor import FairnessAuditor
from repro.audit.stream import ChunkProgress, StreamingAuditor
from repro.cli import main
from repro.engine.backends import (
    ContingencySpec,
    CsvSource,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    tree_merge,
)
from repro.exceptions import CsvParseError, ValidationError
from repro.tabular.csv_io import (
    CsvPlan,
    iter_csv_chunks,
    iter_span_rows,
    plan_csv_chunks,
    plan_csv_shards,
)

PROTECTED = ("gender", "race")
OUTCOME = "hired"
SPEC = ContingencySpec(PROTECTED, OUTCOME)


def write_stream_csv(path, n_rows=997, seed=3, extra_column=True):
    """A deterministic CSV with enough rows to span many chunks."""
    rng = np.random.default_rng(seed)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(
            "gender,race,note,hired\n" if extra_column else "gender,race,hired\n"
        )
        for index in range(n_rows):
            cells = [
                f"g{rng.integers(2)}",
                f"r{rng.integers(4)}",
            ]
            if extra_column:
                cells.append(f"note{index}")
            cells.append(f"y{rng.integers(2)}")
            handle.write(",".join(cells) + "\n")
    return path


@pytest.fixture
def stream_csv(tmp_path):
    return write_stream_csv(tmp_path / "stream.csv")


def source_for(path, chunk_rows=128):
    return CsvSource(
        str(path), chunk_rows=chunk_rows, columns=(*PROTECTED, OUTCOME)
    )


class TestCsvPlan:
    def test_plan_resolves_header_and_projection_once(self, stream_csv):
        plan = CsvPlan.from_csv(stream_csv, columns=[*PROTECTED, OUTCOME])
        assert plan.names == ("gender", "race", "note", "hired")
        assert plan.selected_names == ("gender", "race", "hired")
        assert plan.data_offset == len("gender,race,note,hired\n")

    def test_duplicate_column_names_rejected_at_plan_time(self, tmp_path):
        path = tmp_path / "dup.csv"
        path.write_text("a,b,a\n1,2,3\n")
        with pytest.raises(CsvParseError, match="duplicate column names"):
            CsvPlan.from_csv(path)

    def test_unknown_projection_rejected(self, stream_csv):
        with pytest.raises(CsvParseError, match="unknown columns"):
            CsvPlan.from_csv(stream_csv, columns=["ghost"])

    def test_plan_reuse_matches_fresh_iteration(self, stream_csv):
        plan = CsvPlan.from_csv(stream_csv, columns=[*PROTECTED, OUTCOME])
        fresh = [
            chunk.to_dict()
            for chunk in iter_csv_chunks(
                stream_csv, 100, columns=[*PROTECTED, OUTCOME]
            )
        ]
        reused = [
            chunk.to_dict() for chunk in iter_csv_chunks(stream_csv, 100, plan=plan)
        ]
        assert fresh == reused

    def test_skip_rows_resumes_mid_stream(self, stream_csv):
        chunks = list(iter_csv_chunks(stream_csv, 100))
        resumed = list(iter_csv_chunks(stream_csv, 100, skip_rows=300))
        assert [c.to_dict() for c in resumed] == [
            c.to_dict() for c in chunks[3:]
        ]

    def test_skip_past_the_end_is_not_an_error(self, stream_csv):
        assert list(iter_csv_chunks(stream_csv, 100, skip_rows=10_000)) == []

    def test_comment_and_blank_prologue_offsets(self, tmp_path):
        path = tmp_path / "prologue.csv"
        path.write_text("|junk line\n\ng,y\na,1\n")
        plan = CsvPlan.from_csv(path, skip_comment_prefix="|")
        chunks = list(iter_csv_chunks(path, 10, skip_comment_prefix="|"))
        assert plan.names == ("g", "y")
        assert chunks[0].n_rows == 1


class TestSpanPlanners:
    def test_shard_spans_partition_the_data_region(self, stream_csv):
        plan = CsvPlan.from_csv(stream_csv)
        size = stream_csv.stat().st_size
        for n_shards in [1, 2, 3, 7, 16]:
            spans = plan_csv_shards(stream_csv, plan, n_shards)
            assert spans[0].start == plan.data_offset
            assert spans[-1].end == size
            for left, right in zip(spans, spans[1:]):
                assert left.end == right.start
            assert len(spans) <= n_shards

    def test_shard_spans_cover_every_row_exactly_once(self, stream_csv):
        plan = CsvPlan.from_csv(stream_csv, columns=[*PROTECTED, OUTCOME])
        serial_rows = [
            row
            for chunk in iter_csv_chunks(
                stream_csv, 200, columns=[*PROTECTED, OUTCOME]
            )
            for row in zip(
                *(chunk.column(name).to_list() for name in plan.selected_names)
            )
        ]
        sharded_rows = [
            tuple(row)
            for span in plan_csv_shards(stream_csv, plan, 5)
            for row in iter_span_rows(stream_csv, plan, span)
        ]
        assert sharded_rows == serial_rows

    def test_chunk_spans_match_serial_chunk_boundaries(self, stream_csv):
        plan = CsvPlan.from_csv(stream_csv, columns=[*PROTECTED, OUTCOME])
        spans = plan_csv_chunks(stream_csv, plan, 128)
        serial_sizes = [
            chunk.n_rows
            for chunk in iter_csv_chunks(
                stream_csv, 128, columns=[*PROTECTED, OUTCOME]
            )
        ]
        assert [span.n_rows for span in spans] == serial_sizes
        parsed_sizes = [
            len(list(iter_span_rows(stream_csv, plan, span))) for span in spans
        ]
        assert parsed_sizes == serial_sizes

    def test_more_shards_than_bytes_collapses(self, tmp_path):
        path = tmp_path / "tiny.csv"
        path.write_text("g,y\na,1\n")
        plan = CsvPlan.from_csv(path)
        spans = plan_csv_shards(path, plan, 64)
        assert sum(len(list(iter_span_rows(path, plan, s))) for s in spans) == 1


class TestTreeMerge:
    def test_tree_merge_equals_linear_merge(self):
        accumulators = []
        for shard in range(5):
            accumulator = SPEC.new_accumulator()
            accumulator.update(
                [(f"g{shard % 2}", f"r{shard}", f"y{row % 2}") for row in range(7)]
            )
            accumulators.append(accumulator)
        linear = accumulators[0]
        for other in accumulators[1:]:
            linear = linear.merge(other)
        tree = tree_merge(accumulators)
        assert np.array_equal(tree.snapshot().counts, linear.snapshot().counts)
        assert tree.n_rows == linear.n_rows

    def test_tree_merge_rejects_empty_input(self):
        with pytest.raises(ValidationError):
            tree_merge([])


class TestBackendBitIdentity:
    def test_pool_build_matches_serial_build(self, stream_csv):
        source = source_for(stream_csv)
        serial = SerialBackend().build(source, SPEC)
        for workers in [2, 3]:
            pooled = ProcessPoolBackend(workers).build(source, SPEC)
            assert pooled.n_rows == serial.n_rows
            assert np.array_equal(
                pooled.snapshot().counts, serial.snapshot().counts
            )
            assert (
                pooled.snapshot().factor_levels
                == serial.snapshot().factor_levels
            )

    @pytest.mark.parallel
    def test_pool_chunk_counts_reproduce_serial_chunks(self, stream_csv):
        source = source_for(stream_csv, chunk_rows=100)
        serial = list(SerialBackend().iter_chunk_counts(source, SPEC))
        pooled = list(ProcessPoolBackend(2).iter_chunk_counts(source, SPEC))
        assert [c.index for c in pooled] == [c.index for c in serial]
        assert [c.n_rows for c in pooled] == [c.n_rows for c in serial]
        for mine, theirs in zip(pooled, serial):
            assert np.array_equal(
                mine.counts.snapshot().counts, theirs.counts.snapshot().counts
            )

    @pytest.mark.parallel
    def test_audit_csv_identical_across_backends(self, stream_csv):
        auditor = FairnessAuditor(PROTECTED, OUTCOME, posterior_samples=20, seed=7)
        serial = auditor.audit_csv(source_for(stream_csv))
        pooled = auditor.audit_csv(
            source_for(stream_csv), backend=ProcessPoolBackend(2)
        )
        assert pooled.to_text() == serial.to_text()
        assert pooled.posterior.mean == serial.posterior.mean

    def test_worker_detects_scan_parse_disagreement(self, tmp_path):
        # A line of empty cells is skipped by the parser but counted as
        # data by the cheap chunk scanner: the worker must fail loudly
        # rather than shift chunk boundaries silently.
        path = tmp_path / "blanks.csv"
        path.write_text("g,r,y\na,x,1\n,,\nb,z,0\n")
        plan = CsvPlan.from_csv(path)
        spans = plan_csv_chunks(path, plan, 2)
        source = CsvSource(str(path), chunk_rows=2)
        spec = ContingencySpec(("g", "r"), "y")
        assert any(span.n_rows == 2 for span in spans)
        with pytest.raises(CsvParseError, match="serial backend"):
            list(ProcessPoolBackend(1).iter_chunk_counts(source, spec))


class TestStreamingAuditorIngest:
    def test_serial_ingest_matches_observe_table_loop(self, stream_csv):
        source = source_for(stream_csv, chunk_rows=100)
        by_ingest = StreamingAuditor(PROTECTED, OUTCOME)
        trace: list[ChunkProgress] = []
        final = by_ingest.ingest(source, on_chunk=trace.append)

        by_loop = StreamingAuditor(PROTECTED, OUTCOME)
        epsilons = [
            by_loop.observe_table(chunk)
            for chunk in iter_csv_chunks(
                stream_csv, 100, columns=[*PROTECTED, OUTCOME]
            )
        ]
        assert [entry.epsilon for entry in trace] == epsilons
        assert [entry.index for entry in trace] == list(
            range(1, len(epsilons) + 1)
        )
        assert final == epsilons[-1]
        assert by_ingest.audit().to_text() == by_loop.audit().to_text()

    @pytest.mark.parallel
    def test_pool_ingest_trace_is_bit_identical(self, stream_csv):
        source = source_for(stream_csv, chunk_rows=100)
        serial_trace: list[ChunkProgress] = []
        pooled_trace: list[ChunkProgress] = []
        serial = StreamingAuditor(PROTECTED, OUTCOME)
        pooled = StreamingAuditor(PROTECTED, OUTCOME)
        serial.ingest(source, on_chunk=serial_trace.append)
        pooled.ingest(
            source, backend=ProcessPoolBackend(2), on_chunk=pooled_trace.append
        )
        assert pooled_trace == serial_trace
        assert pooled.audit().to_text() == serial.audit().to_text()

    def test_windowed_ingest_requires_ordered_backend(self, stream_csv):
        auditor = StreamingAuditor(PROTECTED, OUTCOME, window=50)
        with pytest.raises(ValidationError, match="row order"):
            auditor.ingest(
                source_for(stream_csv), backend=ProcessPoolBackend(2)
            )

    def test_windowed_serial_ingest_matches_manual_window(self, stream_csv):
        source = source_for(stream_csv, chunk_rows=100)
        auditor = StreamingAuditor(PROTECTED, OUTCOME, window=150)
        final = auditor.ingest(source)
        manual = StreamingAuditor(PROTECTED, OUTCOME, window=150)
        for chunk in iter_csv_chunks(
            stream_csv, 100, columns=[*PROTECTED, OUTCOME]
        ):
            manual_final = manual.observe_table(chunk)
        assert final == manual_final

    def test_absorb_rejected_for_windowed_auditors(self):
        windowed = StreamingAuditor(PROTECTED, OUTCOME, window=10)
        other = SPEC.new_accumulator().update([("g0", "r0", "y1")])
        with pytest.raises(ValidationError):
            windowed._absorb(other)


class TestCliBackendMatrix:
    @pytest.mark.parallel
    def test_workers_flag_is_byte_identical(self, stream_csv, monkeypatch):
        monkeypatch.chdir(stream_csv.parent)
        args = [
            "audit-stream", stream_csv.name,
            "--protected", "gender,race",
            "--outcome", "hired",
            "--chunk-rows", "200",
        ]
        serial_out, pooled_out = io.StringIO(), io.StringIO()
        assert main(args, out=serial_out) == 0
        assert main([*args, "--workers", "2"], out=pooled_out) == 0
        assert pooled_out.getvalue() == serial_out.getvalue()

    def test_workers_with_window_rejected(self, stream_csv, capsys):
        rc = main(
            [
                "audit-stream", str(stream_csv),
                "--protected", "gender,race",
                "--outcome", "hired",
                "--window", "100",
                "--workers", "2",
            ],
            out=io.StringIO(),
        )
        assert rc == 2
        assert "cumulative" in capsys.readouterr().err

    def test_resume_requires_checkpoint(self, stream_csv, capsys):
        rc = main(
            [
                "audit-stream", str(stream_csv),
                "--protected", "gender,race",
                "--outcome", "hired",
                "--resume",
            ],
            out=io.StringIO(),
        )
        assert rc == 2
        assert "--checkpoint" in capsys.readouterr().err


class TestCliColumnCache:
    def args_for(self, stream_csv, *extra):
        return [
            "audit-stream", str(stream_csv),
            "--protected", "gender,race",
            "--outcome", "hired",
            "--chunk-rows", "200",
            *extra,
        ]

    def test_cold_and_warm_runs_are_byte_identical(self, stream_csv, tmp_path):
        cache = tmp_path / "stream.rccol"
        plain, cold, warm = io.StringIO(), io.StringIO(), io.StringIO()
        assert main(self.args_for(stream_csv), out=plain) == 0
        assert not cache.exists()
        flags = self.args_for(stream_csv, "--column-cache", str(cache))
        assert main(flags, out=cold) == 0
        assert cache.exists()
        assert main(flags, out=warm) == 0
        assert cold.getvalue() == plain.getvalue()
        assert warm.getvalue() == plain.getvalue()

    @pytest.mark.parallel
    def test_cache_and_workers_compose(self, stream_csv, tmp_path):
        cache = tmp_path / "stream.rccol"
        plain, pooled = io.StringIO(), io.StringIO()
        assert main(self.args_for(stream_csv), out=plain) == 0
        assert (
            main(
                self.args_for(
                    stream_csv,
                    "--column-cache", str(cache),
                    "--workers", "2",
                ),
                out=pooled,
            )
            == 0
        )
        assert pooled.getvalue() == plain.getvalue()

    def test_cache_and_window_compose(self, stream_csv, tmp_path):
        cache = tmp_path / "stream.rccol"
        plain, cached = io.StringIO(), io.StringIO()
        assert main(self.args_for(stream_csv, "--window", "300"), out=plain) == 0
        assert (
            main(
                self.args_for(
                    stream_csv,
                    "--window", "300",
                    "--column-cache", str(cache),
                ),
                out=cached,
            )
            == 0
        )
        assert cached.getvalue() == plain.getvalue()

    def test_corrupt_cache_fails_loudly(self, stream_csv, tmp_path, capsys):
        cache = tmp_path / "stream.rccol"
        flags = self.args_for(stream_csv, "--column-cache", str(cache))
        assert main(flags, out=io.StringIO()) == 0
        blob = bytearray(cache.read_bytes())
        blob[-2] ^= 0x04
        cache.write_bytes(bytes(blob))
        assert main(flags, out=io.StringIO()) == 1
        assert "CRC" in capsys.readouterr().err

    def test_stale_cache_is_rebuilt_with_fresh_rows(self, stream_csv, tmp_path):
        cache = tmp_path / "stream.rccol"
        flags = self.args_for(stream_csv, "--column-cache", str(cache))
        assert main(flags, out=io.StringIO()) == 0
        with open(stream_csv, "a", encoding="utf-8") as handle:
            handle.write("g0,r0,extra,y1\n")
        plain, refreshed = io.StringIO(), io.StringIO()
        assert main(self.args_for(stream_csv), out=plain) == 0
        assert main(flags, out=refreshed) == 0
        assert refreshed.getvalue() == plain.getvalue()


def test_base_backend_refuses_ordered_iteration(tmp_path):
    class Stub(ExecutionBackend):
        name = "stub"

    with pytest.raises(ValidationError, match="SerialBackend"):
        next(Stub().iter_chunk_tables(CsvSource(str(tmp_path / "x.csv"))))
