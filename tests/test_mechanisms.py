"""Tests for repro.mechanisms."""

import math

import numpy as np
import pytest

from repro.exceptions import EstimationError, ValidationError
from repro.learn.logistic_regression import LogisticRegression
from repro.mechanisms.base import (
    ConstantMechanism,
    FunctionMechanism,
    MixtureMechanism,
)
from repro.mechanisms.classifier import ClassifierMechanism
from repro.mechanisms.empirical import EmpiricalDataMechanism
from repro.mechanisms.randomized_response import RandomizedResponse
from repro.mechanisms.threshold import ScoreThresholdMechanism


class TestThresholdMechanism:
    def test_decisions(self):
        mechanism = ScoreThresholdMechanism(10.5)
        decisions = mechanism.decide(np.array([10.4, 10.5, 11.0]))
        assert decisions.tolist() == [0, 1, 1]

    def test_outcome_probabilities_one_hot(self):
        mechanism = ScoreThresholdMechanism(0.0)
        probs = mechanism.outcome_probabilities(np.array([-1.0, 1.0]))
        assert probs.tolist() == [[1.0, 0.0], [0.0, 1.0]]

    def test_column_vector_accepted(self):
        mechanism = ScoreThresholdMechanism(0.0)
        assert mechanism.decide(np.array([[1.0], [-1.0]])).tolist() == [1, 0]

    def test_matrix_rejected(self):
        mechanism = ScoreThresholdMechanism(0.0)
        with pytest.raises(ValidationError):
            mechanism.decide(np.zeros((3, 2)))

    def test_positive_outcome(self):
        assert ScoreThresholdMechanism(0.0).positive_outcome == "yes"

    def test_sample_outcomes_deterministic(self):
        mechanism = ScoreThresholdMechanism(0.0)
        outcomes = mechanism.sample_outcomes(np.array([1.0, -1.0]), seed=0)
        assert outcomes.tolist() == ["yes", "no"]


class TestRandomizedResponse:
    def test_fair_coin_epsilon_is_ln3(self):
        assert RandomizedResponse().epsilon() == pytest.approx(math.log(3))

    def test_response_probabilities(self):
        rr = RandomizedResponse()
        assert rr.response_probabilities()[True] == pytest.approx(0.75)
        assert rr.response_probabilities()[False] == pytest.approx(0.25)

    def test_always_truthful_is_infinitely_revealing(self):
        assert RandomizedResponse(truth_probability=1.0).epsilon() == math.inf

    def test_never_truthful_is_perfectly_private(self):
        assert RandomizedResponse(truth_probability=0.0).epsilon() == 0.0

    def test_outcome_probabilities(self):
        rr = RandomizedResponse()
        probs = rr.outcome_probabilities(np.array([1, 0]))
        assert probs[0].tolist() == [0.25, 0.75]
        assert probs[1].tolist() == [0.75, 0.25]

    def test_epsilon_monotone_in_truth_probability(self):
        values = [RandomizedResponse(p).epsilon() for p in (0.1, 0.3, 0.5, 0.7)]
        assert values == sorted(values)

    def test_sampled_frequency(self):
        rr = RandomizedResponse()
        outcomes = rr.sample_outcomes(np.ones(20_000), seed=0)
        assert (outcomes == "yes").mean() == pytest.approx(0.75, abs=0.01)


class TestConstantMechanism:
    def test_ignores_input(self):
        mechanism = ConstantMechanism([0.4, 0.6], ["no", "yes"])
        probs = mechanism.outcome_probabilities(np.zeros(3))
        assert probs.shape == (3, 2)
        assert probs[0].tolist() == [0.4, 0.6]

    def test_validation(self):
        with pytest.raises(ValidationError):
            ConstantMechanism([0.4, 0.4], ["a", "b"])  # not a distribution
        with pytest.raises(ValidationError):
            ConstantMechanism([1.0], ["a"])  # fewer than two outcomes


class TestFunctionMechanism:
    def test_wraps_callable(self):
        mechanism = FunctionMechanism(
            lambda X: (np.asarray(X) > 0).astype(int), ["neg", "pos"]
        )
        assert mechanism.decide(np.array([-1.0, 2.0])).tolist() == [0, 1]

    def test_outcome_index(self):
        mechanism = FunctionMechanism(lambda X: np.zeros(len(X), dtype=int), ["a", "b"])
        assert mechanism.outcome_index("b") == 1
        with pytest.raises(ValidationError):
            mechanism.outcome_index("zzz")

    def test_out_of_range_decision_rejected(self):
        mechanism = FunctionMechanism(
            lambda X: np.full(len(X), 5), ["a", "b"]
        )
        with pytest.raises(ValidationError):
            mechanism.outcome_probabilities(np.zeros(2))


class TestMixtureMechanism:
    def test_mixture_probabilities(self):
        always_yes = ConstantMechanism([0.0, 1.0], ["no", "yes"])
        always_no = ConstantMechanism([1.0, 0.0], ["no", "yes"])
        mixture = MixtureMechanism([always_yes, always_no], [0.7, 0.3])
        probs = mixture.outcome_probabilities(np.zeros(2))
        assert probs[0].tolist() == pytest.approx([0.3, 0.7])

    def test_mixing_shrinks_epsilon(self):
        """Mixing any mechanism with a constant one reduces disparities."""
        from repro.core.epsilon import epsilon_from_probabilities

        threshold = ScoreThresholdMechanism(0.0)
        constant = ConstantMechanism([0.5, 0.5], ("no", "yes"))
        mixture = MixtureMechanism([threshold, constant], [0.5, 0.5])
        X = np.array([-1.0, 1.0])
        raw = epsilon_from_probabilities(
            threshold.outcome_probabilities(X), validate=False
        ).epsilon
        mixed = epsilon_from_probabilities(
            mixture.outcome_probabilities(X), validate=False
        ).epsilon
        assert mixed < raw

    def test_validation(self):
        constant = ConstantMechanism([0.5, 0.5], ["a", "b"])
        with pytest.raises(ValidationError):
            MixtureMechanism([constant], [0.5])  # weights not normalised
        different = ConstantMechanism([0.5, 0.5], ["x", "y"])
        with pytest.raises(ValidationError):
            MixtureMechanism([constant, different], [0.5, 0.5])


class TestClassifierMechanism:
    @pytest.fixture
    def fitted_model(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = ["lo", "lo", "hi", "hi"]
        return LogisticRegression(l2=1e-6).fit(X, y)

    def test_hard_predictions_one_hot(self, fitted_model):
        mechanism = ClassifierMechanism(fitted_model)
        probs = mechanism.outcome_probabilities(np.array([[0.0], [3.0]]))
        assert probs.sum(axis=1).tolist() == [1.0, 1.0]
        assert set(np.unique(probs)) <= {0.0, 1.0}

    def test_soft_probabilities(self, fitted_model):
        mechanism = ClassifierMechanism(fitted_model, hard=False)
        probs = mechanism.outcome_probabilities(np.array([[1.5]]))
        assert 0.0 < probs[0, 0] < 1.0

    def test_classes_from_model(self, fitted_model):
        mechanism = ClassifierMechanism(fitted_model)
        assert mechanism.outcome_levels == ("hi", "lo")

    def test_transform_applied(self, fitted_model):
        mechanism = ClassifierMechanism(
            fitted_model, transform=lambda X: np.asarray(X) / 10.0
        )
        probs = mechanism.outcome_probabilities(np.array([[30.0]]))
        direct = ClassifierMechanism(fitted_model).outcome_probabilities(
            np.array([[3.0]])
        )
        assert np.array_equal(probs, direct)

    def test_missing_classes_rejected(self):
        class Bare:
            def predict(self, X):
                return ["a"] * len(X)

        with pytest.raises(ValidationError):
            ClassifierMechanism(Bare())


class TestEmpiricalDataMechanism:
    def test_conditional_frequencies(self, hiring_table):
        mechanism = EmpiricalDataMechanism(
            hiring_table, ["gender", "race"], "hired"
        )
        assert mechanism.conditional(("A", "X")).tolist() == [0.25, 0.75]

    def test_smoothing(self, hiring_table):
        mechanism = EmpiricalDataMechanism(
            hiring_table, ["gender", "race"], "hired", smoothing=1.0
        )
        # (1 + 1) / (4 + 2) and (3 + 1) / (4 + 2)
        assert mechanism.conditional(("A", "X")).tolist() == pytest.approx(
            [2.0 / 6.0, 4.0 / 6.0]
        )

    def test_outcome_probabilities_rows(self, hiring_table):
        mechanism = EmpiricalDataMechanism(
            hiring_table, ["gender", "race"], "hired"
        )
        probs = mechanism.outcome_probabilities(
            np.array([["A", "X"], ["B", "Y"]], dtype=object)
        )
        assert probs.shape == (2, 2)

    def test_unseen_cell_rejected(self, hiring_table):
        mechanism = EmpiricalDataMechanism(hiring_table, ["gender"], "hired")
        with pytest.raises(EstimationError):
            mechanism.conditional(("Z",))

    def test_key_width_checked(self, hiring_table):
        mechanism = EmpiricalDataMechanism(
            hiring_table, ["gender", "race"], "hired"
        )
        with pytest.raises(ValidationError):
            mechanism.outcome_probabilities(np.array([["A"]], dtype=object))
