"""End-to-end validation of the real-file pipeline: export the synthetic
Adult data in raw UCI format, load it with the production loader, apply the
paper's preprocessing, and verify the measurements are unchanged."""

import pytest

from repro.core.empirical import dataset_edf
from repro.core.estimators import DirichletEstimator
from repro.core.subsets import subset_sweep
from repro.data.adult import export_uci_format, load_adult, preprocess_adult
from repro.data.synthetic_adult import (
    FROZEN_TRAIN_CELLS,
    OUTCOME,
    PAPER_TABLE2,
    PROTECTED,
    SyntheticAdult,
)
from repro.tabular.crosstab import crosstab


@pytest.fixture(scope="module")
def roundtripped(tmp_path_factory):
    directory = tmp_path_factory.mktemp("uci")
    generator = SyntheticAdult(seed=0, features=True)
    train_path = directory / "adult.data"
    test_path = directory / "adult.test"
    export_uci_format(generator.train(), train_path)
    export_uci_format(generator.test(), test_path, test_style=True)
    train = preprocess_adult(load_adult(train_path))
    test = preprocess_adult(load_adult(test_path))
    return train, test


class TestRoundtrip:
    def test_row_counts(self, roundtripped):
        train, test = roundtripped
        assert train.n_rows == 32561
        assert test.n_rows == 16281

    def test_columns_back_in_paper_vocabulary(self, roundtripped):
        train, _ = roundtripped
        assert "gender" in train
        assert "nationality" in train
        assert "sex" not in train

    def test_contingency_identical_to_frozen(self, roundtripped):
        train, _ = roundtripped
        contingency = crosstab(train, list(PROTECTED), OUTCOME)
        for key, (members, positives) in FROZEN_TRAIN_CELLS.items():
            assert contingency.cell(key, ">50K") == positives, key
            assert (
                contingency.cell(key, "<=50K") == members - positives
            ), key

    def test_table2_reproduces_through_the_loader(self, roundtripped):
        train, _ = roundtripped
        sweep = subset_sweep(train, protected=list(PROTECTED), outcome=OUTCOME)
        for subset, target in PAPER_TABLE2.items():
            assert sweep.epsilon(subset) == pytest.approx(target, abs=0.005)

    def test_test_split_epsilon_through_the_loader(self, roundtripped):
        _, test = roundtripped
        result = dataset_edf(
            test,
            protected=list(PROTECTED),
            outcome=OUTCOME,
            estimator=DirichletEstimator(1.0),
        )
        assert result.epsilon == pytest.approx(2.06, abs=0.005)

    def test_numeric_columns_survive(self, roundtripped):
        train, _ = roundtripped
        assert train.column("age").kind == "numeric"
        assert train.column("age").values.min() >= 17
        assert train.column("capital_gain").values.max() <= 99999
