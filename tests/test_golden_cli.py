"""Golden-file regression tests for the CLI report surfaces.

Every byte the ``repro audit`` and ``repro audit-stream`` commands print
for a fixed dataset is pinned against checked-in fixtures under
``tests/golden/``. These catch *accidental* report drift — a formatting
tweak, a reordered section, a changed default — which unit tests that
assert on substrings cannot.

Regenerating after an intentional change::

    PYTHONPATH=src python -m pytest tests/test_golden_cli.py --update-golden

then review the fixture diff like any other code change.

The audited CSV is written from the ``hiring_table`` fixture (fixed
counts, no randomness) and addressed by bare filename from inside the
tmp directory, so no absolute path leaks into the pinned output. The
pinned commands use only point estimators — posterior sections depend on
the random bit stream, which numpy does not promise across versions, and
are covered by the determinism sweep instead.
"""

from __future__ import annotations

import io
from pathlib import Path

import pytest

from repro.cli import main
from repro.tabular.csv_io import write_csv

GOLDEN_DIR = Path(__file__).parent / "golden"

CASES = {
    "audit_hiring.txt": [
        "audit", "hiring.csv",
        "--protected", "gender,race",
        "--outcome", "hired",
    ],
    "audit_hiring_smoothed.txt": [
        "audit", "hiring.csv",
        "--protected", "gender,race",
        "--outcome", "hired",
        "--alpha", "1.0",
    ],
    "audit_hiring.md": [
        "audit", "hiring.csv",
        "--protected", "gender,race",
        "--outcome", "hired",
        "--markdown",
    ],
    "audit_stream_hiring.txt": [
        "audit-stream", "hiring.csv",
        "--protected", "gender,race",
        "--outcome", "hired",
        "--chunk-rows", "6",
        "--window", "12",
    ],
    "audit_stream_hiring.md": [
        "audit-stream", "hiring.csv",
        "--protected", "gender,race",
        "--outcome", "hired",
        "--alpha", "1.0",
        "--chunk-rows", "5",
        "--markdown",
    ],
}


@pytest.fixture
def hiring_csv_cwd(tmp_path, hiring_table, monkeypatch):
    """hiring.csv in a tmp cwd so the CLI sees a stable relative path."""
    write_csv(hiring_table, tmp_path / "hiring.csv")
    monkeypatch.chdir(tmp_path)


@pytest.mark.parametrize("golden_name", sorted(CASES))
def test_cli_output_matches_golden(golden_name, hiring_csv_cwd, request):
    out = io.StringIO()
    assert main(CASES[golden_name], out=out) == 0
    output = out.getvalue()

    golden_path = GOLDEN_DIR / golden_name
    if request.config.getoption("--update-golden"):
        golden_path.parent.mkdir(exist_ok=True)
        golden_path.write_text(output, encoding="utf-8")
        pytest.skip(f"regenerated {golden_path.name}")
    assert golden_path.exists(), (
        f"missing golden fixture {golden_path}; run pytest with "
        "--update-golden to create it"
    )
    expected = golden_path.read_text(encoding="utf-8")
    assert output == expected, (
        f"CLI output drifted from {golden_path.name}; if the change is "
        "intentional, regenerate with --update-golden and review the diff"
    )


def test_golden_fixtures_are_all_exercised():
    """No stale fixture files: everything in tests/golden/ is pinned here."""
    present = {path.name for path in GOLDEN_DIR.glob("*")}
    assert present == set(CASES)
