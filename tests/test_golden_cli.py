"""Golden-file regression tests for the CLI report surfaces.

Every byte the ``repro audit`` and ``repro audit-stream`` commands print
for a fixed dataset is pinned against checked-in fixtures under
``tests/golden/``. These catch *accidental* report drift — a formatting
tweak, a reordered section, a changed default — which unit tests that
assert on substrings cannot.

Regenerating after an intentional change::

    PYTHONPATH=src python -m pytest tests/test_golden_cli.py --update-golden

then review the fixture diff like any other code change.

The audited CSV is written from the ``hiring_table`` fixture (fixed
counts, no randomness) and addressed by bare filename from inside the
tmp directory, so no absolute path leaks into the pinned output. The
pinned commands use only point estimators — posterior sections depend on
the random bit stream, which numpy does not promise across versions, and
are covered by the determinism sweep instead.
"""

from __future__ import annotations

import io
import itertools
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.streaming import StreamingContingency
from repro.engine.checkpoint import save_contingency
from repro.monitor.registry import MonitorRegistry
from repro.monitor.rules import DivergenceRule, EpsilonThresholdRule
from repro.tabular.csv_io import write_csv

GOLDEN_DIR = Path(__file__).parent / "golden"

CASES = {
    "audit_hiring.txt": [
        "audit", "hiring.csv",
        "--protected", "gender,race",
        "--outcome", "hired",
    ],
    "audit_hiring_smoothed.txt": [
        "audit", "hiring.csv",
        "--protected", "gender,race",
        "--outcome", "hired",
        "--alpha", "1.0",
    ],
    "audit_hiring.md": [
        "audit", "hiring.csv",
        "--protected", "gender,race",
        "--outcome", "hired",
        "--markdown",
    ],
    "audit_stream_hiring.txt": [
        "audit-stream", "hiring.csv",
        "--protected", "gender,race",
        "--outcome", "hired",
        "--chunk-rows", "6",
        "--window", "12",
    ],
    "audit_stream_hiring.md": [
        "audit-stream", "hiring.csv",
        "--protected", "gender,race",
        "--outcome", "hired",
        "--alpha", "1.0",
        "--chunk-rows", "5",
        "--markdown",
    ],
    "audit_stream_hiring_cumulative.txt": [
        "audit-stream", "hiring.csv",
        "--protected", "gender,race",
        "--outcome", "hired",
        "--chunk-rows", "6",
    ],
    "merge_checkpoints_hiring.txt": [
        "merge-checkpoints", "shard0.rcpk", "shard1.rcpk",
    ],
    "merge_checkpoints_hiring.md": [
        "merge-checkpoints", "shard0.rcpk", "shard1.rcpk",
        "--alpha", "1.0",
        "--markdown",
    ],
    "monitor_status.txt": [
        "monitor-status", "--data-dir", "mon",
    ],
    "monitor_status.md": [
        "monitor-status", "--data-dir", "mon",
        "--markdown",
    ],
}

# Cumulative audit-stream cases must stay byte-identical when ingestion
# fans out to a process pool; windowed cases are serial-only by design.
PARALLEL_CASES = [
    name
    for name, args in CASES.items()
    if args[0] == "audit-stream" and "--window" not in args
]


@pytest.fixture
def hiring_csv_cwd(tmp_path, hiring_table, monkeypatch):
    """hiring.csv + shard checkpoints + a monitoring data dir in a tmp
    cwd (stable relative paths; every input is deterministic — the
    store's clock is a fixed counter, and the pinned monitors use only
    point estimators, so the status bytes never drift)."""
    write_csv(hiring_table, tmp_path / "hiring.csv")
    names = ["gender", "race", "hired"]
    rows = list(zip(*(hiring_table.column(name).to_list() for name in names)))
    half = len(rows) // 2
    for index, shard_rows in enumerate([rows[:half], rows[half:]]):
        accumulator = StreamingContingency(names[:2], names[2])
        accumulator.update(shard_rows)
        save_contingency(tmp_path / f"shard{index}.rcpk", accumulator)

    counter = itertools.count()
    registry = MonitorRegistry.open(
        tmp_path / "mon", clock=lambda: 1_700_000_000.0 + float(next(counter))
    )
    registry.create(
        "hiring-window",
        names[:2],
        names[2],
        window=half,
        alpha=1.0,
        rules=[
            EpsilonThresholdRule(0.1, severity="info"),
            DivergenceRule(0.5),
        ],
    )
    registry.create("hiring-cume", names[:2], names[2], alpha=1.0)
    for batch in (rows[:half], rows[half:]):
        registry.observe("hiring-window", batch)
        registry.observe("hiring-cume", batch)
    registry.checkpoint_all()
    monkeypatch.chdir(tmp_path)


@pytest.mark.parametrize("golden_name", sorted(CASES))
def test_cli_output_matches_golden(golden_name, hiring_csv_cwd, request):
    out = io.StringIO()
    assert main(CASES[golden_name], out=out) == 0
    output = out.getvalue()

    golden_path = GOLDEN_DIR / golden_name
    if request.config.getoption("--update-golden"):
        golden_path.parent.mkdir(exist_ok=True)
        golden_path.write_text(output, encoding="utf-8")
        pytest.skip(f"regenerated {golden_path.name}")
    assert golden_path.exists(), (
        f"missing golden fixture {golden_path}; run pytest with "
        "--update-golden to create it"
    )
    expected = golden_path.read_text(encoding="utf-8")
    assert output == expected, (
        f"CLI output drifted from {golden_path.name}; if the change is "
        "intentional, regenerate with --update-golden and review the diff"
    )


@pytest.mark.parallel
@pytest.mark.parametrize("golden_name", sorted(PARALLEL_CASES))
def test_worker_pool_output_matches_golden(golden_name, hiring_csv_cwd):
    """``--workers 2`` must reproduce the committed serial bytes exactly.

    The pool backend parses chunk-aligned byte-range shards in worker
    processes and tree-merges at the coordinator; the PR-3 merge algebra
    makes the trace and report bit-identical to the serial run, so the
    *same* golden file pins both execution paths.
    """
    out = io.StringIO()
    assert main([*CASES[golden_name], "--workers", "2"], out=out) == 0
    golden_path = GOLDEN_DIR / golden_name
    assert golden_path.exists(), (
        f"missing golden fixture {golden_path}; run pytest with "
        "--update-golden to create it"
    )
    assert out.getvalue() == golden_path.read_text(encoding="utf-8")


def test_golden_fixtures_are_all_exercised():
    """No stale fixture files: everything in tests/golden/ is pinned here.

    Subdirectories (e.g. ``golden/obs/``) belong to other suites and pin
    their own fixtures, so only top-level files are checked.
    """
    present = {path.name for path in GOLDEN_DIR.glob("*") if path.is_file()}
    assert present == set(CASES)
