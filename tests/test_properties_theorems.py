"""Property-based tests of the paper's theorems (hypothesis).

These are the core correctness guarantees of the library:

* Theorem 3.1/3.2 — epsilon of any attribute subset is at most twice the
  intersectional epsilon, for arbitrary contingency tensors and arbitrary
  finite-x mechanisms;
* the sharper 1x mixture bound for empirical marginalisation (DESIGN.md);
* basic invariances of the epsilon measurement itself.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.core.empirical import edf_from_contingency
from repro.core.epsilon import epsilon_from_probabilities
from repro.core.estimators import DirichletEstimator
from repro.core.subsets import subset_sweep
from repro.tabular.crosstab import ContingencyTable


def contingency_tensors(max_levels=3, n_outcomes=2):
    """Random (2..3)x(2..3)xoutcomes count tensors with integer counts."""
    return st.tuples(
        st.integers(2, max_levels), st.integers(2, max_levels)
    ).flatmap(
        lambda shape: npst.arrays(
            dtype=np.int64,
            shape=(shape[0], shape[1], n_outcomes),
            elements=st.integers(0, 40),
        )
    )


def tensor_to_contingency(counts: np.ndarray) -> ContingencyTable:
    a_levels = [f"a{i}" for i in range(counts.shape[0])]
    b_levels = [f"b{i}" for i in range(counts.shape[1])]
    outcomes = [f"y{i}" for i in range(counts.shape[2])]
    return ContingencyTable(
        counts.astype(float), ["first", "second"], [a_levels, b_levels], "y", outcomes
    )


class TestSubsetTheorem:
    @given(contingency_tensors())
    @settings(max_examples=200, deadline=None)
    def test_theorem_32_two_x_bound(self, counts):
        """Every subset epsilon <= 2 * full epsilon (Theorem 3.2)."""
        contingency = tensor_to_contingency(counts)
        sweep = subset_sweep(contingency)
        assert sweep.theorem_violations(tolerance=1e-9) == []

    @given(contingency_tensors())
    @settings(max_examples=200, deadline=None)
    def test_sharper_mixture_bound_for_mle(self, counts):
        """For the plug-in estimator the subset epsilon never exceeds the
        full epsilon at all (convex-combination argument; see DESIGN.md)."""
        contingency = tensor_to_contingency(counts)
        sweep = subset_sweep(contingency)
        assert sweep.monotonicity_violations(tolerance=1e-9) == []

    def test_smoothing_can_break_the_subset_bound(self):
        """A reproduction finding: Theorem 3.2 concerns the true outcome
        probabilities; applying the Eq. 7 smoothing *independently at each
        granularity* is not such a set of probabilities and can violate the
        2x bound. Counterexample (found by hypothesis): every populated
        cell has counts (1, 0), so the smoothed full-intersection epsilon
        is exactly 0, but marginal groups aggregate different numbers of
        cells and therefore get different smoothed estimates. Documented in
        DESIGN.md / EXPERIMENTS.md.
        """
        counts = np.array(
            [[[1, 0], [1, 0]], [[1, 0], [0, 0]]], dtype=float
        )
        contingency = tensor_to_contingency(counts.astype(np.int64))
        sweep = subset_sweep(contingency, estimator=DirichletEstimator(1.0))
        assert sweep.full_epsilon == pytest.approx(0.0)
        assert sweep.epsilon("first") > 0.0  # log((1/3) / (1/4)) side
        assert sweep.theorem_violations() != []

    @given(contingency_tensors(), st.floats(0.1, 5.0))
    @settings(max_examples=100, deadline=None)
    def test_smoothed_subset_epsilon_has_its_own_guarantee(self, counts, alpha):
        """What *does* hold under smoothing: each subset's smoothed epsilon
        is a valid measurement of the smoothed model at that granularity,
        bounded by the (finite) worst cell ratio; and smoothing never
        produces the infinities the plug-in estimator can."""
        contingency = tensor_to_contingency(counts)
        sweep = subset_sweep(contingency, estimator=DirichletEstimator(alpha))
        for result in sweep.results.values():
            assert math.isfinite(result.epsilon)
            assert result.epsilon >= 0.0

    @given(
        npst.arrays(
            dtype=np.float64,
            shape=(4, 3, 2),
            elements=st.floats(0.01, 1.0),
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_theorem_31_for_exact_mechanisms(self, weights):
        """Theorem 3.1 on mechanisms over a finite feature space.

        weights[g, x, :] induces P(x | g) and a randomized mechanism
        P(y | x); marginalising the group axis can at most double epsilon.
        """
        joint_gx = weights[:, :, 0]
        joint_gx = joint_gx / joint_gx.sum()
        outcome_given_x = weights[0, :, :]
        outcome_given_x = outcome_given_x / outcome_given_x.sum(
            axis=1, keepdims=True
        )
        # Exact P(y | g) = sum_x P(x | g) P(y | x).
        p_x_given_g = joint_gx / joint_gx.sum(axis=1, keepdims=True)
        p_y_given_g = p_x_given_g @ outcome_given_x
        full = epsilon_from_probabilities(p_y_given_g, validate=False).epsilon

        # Merge groups {0,1} and {2,3}: a coarser protected attribute.
        merged_joint = np.stack(
            [joint_gx[:2].sum(axis=0), joint_gx[2:].sum(axis=0)]
        )
        merged_conditional = merged_joint / merged_joint.sum(
            axis=1, keepdims=True
        )
        merged_p = merged_conditional @ outcome_given_x
        coarse = epsilon_from_probabilities(merged_p, validate=False).epsilon
        if math.isfinite(full):
            assert coarse <= 2 * full + 1e-9
            assert coarse <= full + 1e-9  # sharper mixture bound


class TestEpsilonInvariances:
    @given(contingency_tensors())
    @settings(max_examples=100, deadline=None)
    def test_scale_invariance(self, counts):
        """Epsilon depends only on rates: scaling all counts is a no-op."""
        contingency = tensor_to_contingency(counts)
        base = edf_from_contingency(contingency).epsilon
        scaled = edf_from_contingency(contingency.scale(7.0)).epsilon
        if math.isfinite(base):
            assert scaled == pytest.approx(base)
        else:
            assert math.isinf(scaled)

    @given(
        npst.arrays(
            dtype=np.float64, shape=(4, 3), elements=st.floats(0.01, 1.0)
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_group_permutation_invariance(self, raw):
        probs = raw / raw.sum(axis=1, keepdims=True)
        base = epsilon_from_probabilities(probs, validate=False).epsilon
        permuted = epsilon_from_probabilities(
            probs[::-1].copy(), validate=False
        ).epsilon
        assert permuted == pytest.approx(base)

    @given(
        npst.arrays(
            dtype=np.float64, shape=(3, 3), elements=st.floats(0.01, 1.0)
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_outcome_permutation_invariance(self, raw):
        probs = raw / raw.sum(axis=1, keepdims=True)
        base = epsilon_from_probabilities(probs, validate=False).epsilon
        shuffled = epsilon_from_probabilities(
            probs[:, ::-1].copy(), validate=False
        ).epsilon
        assert shuffled == pytest.approx(base)

    @given(
        npst.arrays(
            dtype=np.float64, shape=(3, 2), elements=st.floats(0.05, 1.0)
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_epsilon_zero_iff_identical_rows(self, raw):
        probs = raw / raw.sum(axis=1, keepdims=True)
        epsilon = epsilon_from_probabilities(probs, validate=False).epsilon
        # rtol must be 0 here: the default 1e-5 calls rows "identical"
        # whose probabilities differ by ~1e-6, where epsilon is genuinely
        # ~1e-6 too and the 1e-9 bound below fails.
        rows_identical = np.allclose(probs, probs[0], rtol=0.0, atol=1e-12)
        if rows_identical:
            assert epsilon == pytest.approx(0.0, abs=1e-9)
        if epsilon == 0.0:
            assert np.allclose(probs, probs[0])

    @given(contingency_tensors(), st.floats(0.5, 50.0))
    @settings(max_examples=100, deadline=None)
    def test_smoothing_never_produces_infinite_epsilon(self, counts, alpha):
        contingency = tensor_to_contingency(counts)
        result = edf_from_contingency(contingency, DirichletEstimator(alpha))
        assert math.isfinite(result.epsilon)

    @given(contingency_tensors())
    @settings(max_examples=80, deadline=None)
    def test_huge_alpha_drives_epsilon_to_zero(self, counts):
        contingency = tensor_to_contingency(counts)
        result = edf_from_contingency(contingency, DirichletEstimator(1e12))
        assert result.epsilon == pytest.approx(0.0, abs=1e-6)
