"""Shared fixtures for the test suite.

Markers live in ``pytest.ini`` (repo root) so that ``--strict-markers``
passes for every collection root, including ``benchmarks/``. Hypothesis
settings profiles are registered here: ``dev`` (the default) keeps
property tests fast locally, ``ci`` spends more examples; select with
``HYPOTHESIS_PROFILE=ci`` (tests that pin their own ``@settings`` are
unaffected).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.tabular.table import Table

try:  # property-test modules skip-collect without hypothesis; so do profiles
    from hypothesis import settings
except ImportError:  # pragma: no cover
    pass
else:
    settings.register_profile("dev", max_examples=50, deadline=None)
    settings.register_profile("ci", max_examples=200, deadline=None)
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate the golden CLI fixtures under tests/golden/ "
        "instead of comparing against them",
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def hiring_table() -> Table:
    """A small two-attribute hiring dataset with known counts.

    Counts (gender, race) -> (hired yes, no):
      (A, X): (3, 1)   (A, Y): (1, 3)
      (B, X): (2, 2)   (B, Y): (2, 2)
    """
    rows = (
        [("A", "X", "yes")] * 3
        + [("A", "X", "no")] * 1
        + [("A", "Y", "yes")] * 1
        + [("A", "Y", "no")] * 3
        + [("B", "X", "yes")] * 2
        + [("B", "X", "no")] * 2
        + [("B", "Y", "yes")] * 2
        + [("B", "Y", "no")] * 2
    )
    return Table.from_rows(["gender", "race", "hired"], rows)


@pytest.fixture
def numeric_table() -> Table:
    return Table.from_dict(
        {
            "x": [1.0, 2.0, 3.0, 4.0, 5.0],
            "y": [2.0, 4.0, 6.0, 8.0, 10.0],
            "group": ["a", "a", "b", "b", "b"],
        }
    )
