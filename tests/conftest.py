"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tabular.table import Table


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "perf: fast performance-regression guards (small sizes, generous "
        "thresholds) that fail on accidental de-vectorisation",
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def hiring_table() -> Table:
    """A small two-attribute hiring dataset with known counts.

    Counts (gender, race) -> (hired yes, no):
      (A, X): (3, 1)   (A, Y): (1, 3)
      (B, X): (2, 2)   (B, Y): (2, 2)
    """
    rows = (
        [("A", "X", "yes")] * 3
        + [("A", "X", "no")] * 1
        + [("A", "Y", "yes")] * 1
        + [("A", "Y", "no")] * 3
        + [("B", "X", "yes")] * 2
        + [("B", "X", "no")] * 2
        + [("B", "Y", "yes")] * 2
        + [("B", "Y", "no")] * 2
    )
    return Table.from_rows(["gender", "race", "hired"], rows)


@pytest.fixture
def numeric_table() -> Table:
    return Table.from_dict(
        {
            "x": [1.0, 2.0, 3.0, 4.0, 5.0],
            "y": [2.0, 4.0, 6.0, 8.0, 10.0],
            "group": ["a", "a", "b", "b", "b"],
        }
    )
