"""Tests for the Gaussian uncertainty band (the paper's Θ example)."""

import math

import pytest

from repro.core.analytic import gaussian_threshold_epsilon
from repro.core.mechanism import mechanism_epsilon
from repro.distributions.gaussian import GroupGaussianScores
from repro.distributions.gaussian_band import GaussianScoreBand
from repro.exceptions import ValidationError
from repro.mechanisms.threshold import ScoreThresholdMechanism


class TestConstruction:
    def test_point_band_from_scalars(self):
        band = GaussianScoreBand([10.0, 12.0], [1.0, 1.0])
        assert band.group_labels() == [(1,), (2,)]

    def test_interval_validation(self):
        with pytest.raises(ValidationError):
            GaussianScoreBand([(5.0, 4.0)], [1.0])  # low > high
        with pytest.raises(ValidationError):
            GaussianScoreBand([(0.0, 1.0)], [(0.0, 1.0)])  # sigma touches 0
        with pytest.raises(ValidationError):
            GaussianScoreBand([1.0, 2.0], [1.0])  # misaligned


class TestAcceptanceIntervals:
    def test_point_band_degenerate_interval(self):
        band = GaussianScoreBand([10.0], [1.0])
        low, high = band.acceptance_interval(0, 10.5)
        assert low == pytest.approx(high)
        assert low == pytest.approx(0.3085, abs=5e-5)

    def test_mean_interval_widens(self):
        band = GaussianScoreBand([(9.5, 10.5)], [1.0])
        low, high = band.acceptance_interval(0, 10.5)
        assert low == pytest.approx(0.1587, abs=5e-5)  # mu = 9.5
        assert high == pytest.approx(0.5)              # mu = 10.5

    def test_sigma_interval_direction_depends_on_side(self):
        # Below the threshold, larger sigma increases the tail.
        below = GaussianScoreBand([9.0], [(0.5, 2.0)])
        low, high = below.acceptance_interval(0, 10.0)
        assert high == pytest.approx(1 - 0.3085, abs=5e-4) or high > low
        # Above the threshold, larger sigma decreases the tail.
        above = GaussianScoreBand([11.0], [(0.5, 2.0)])
        low2, high2 = above.acceptance_interval(0, 10.0)
        assert high2 > low2


class TestWorstCaseEpsilon:
    def test_point_band_matches_analytic(self):
        """A degenerate band reproduces the plain Figure 2 epsilon."""
        band = GaussianScoreBand([10.0, 12.0], [1.0, 1.0])
        mechanism = ScoreThresholdMechanism.paper_worked_example()
        worst = band.worst_case_epsilon(mechanism)
        exact = gaussian_threshold_epsilon(
            GroupGaussianScores.paper_worked_example(), mechanism
        )
        assert worst.epsilon == pytest.approx(exact.epsilon, abs=1e-9)
        assert worst.outcome == "no"

    def test_uncertainty_never_decreases_epsilon(self):
        mechanism = ScoreThresholdMechanism(10.5)
        point = GaussianScoreBand([10.0, 12.0], [1.0, 1.0])
        wide = GaussianScoreBand(
            [(9.5, 10.5), (11.5, 12.5)], [(0.8, 1.2), (0.8, 1.2)]
        )
        assert (
            wide.worst_case_epsilon(mechanism).epsilon
            > point.worst_case_epsilon(mechanism).epsilon
        )

    def test_sup_dominates_every_grid_member(self):
        """The closed-form sup bounds epsilon at every grid θ (and the
        max over a fine grid approaches it)."""
        band = GaussianScoreBand(
            [(9.8, 10.2), (11.8, 12.2)], [(0.9, 1.1), (0.9, 1.1)]
        )
        mechanism = ScoreThresholdMechanism(10.5)
        sup = band.worst_case_epsilon(mechanism).epsilon
        grid_epsilons = [
            gaussian_threshold_epsilon(theta, mechanism).epsilon
            for theta in band.grid(resolution=3)
        ]
        assert max(grid_epsilons) <= sup + 1e-9
        # Corners are in the grid, so the max is attained exactly.
        assert max(grid_epsilons) == pytest.approx(sup, abs=1e-9)

    def test_monte_carlo_over_grid_theta(self):
        """mechanism_epsilon over the grid Θ stays below the band sup."""
        band = GaussianScoreBand([(9.9, 10.1), 12.0], [1.0, 1.0])
        mechanism = ScoreThresholdMechanism(10.5)
        sup = band.worst_case_epsilon(mechanism).epsilon
        sampled = mechanism_epsilon(
            mechanism, band.grid(resolution=2), n_samples=30_000, seed=0,
            exact=False,
        )
        assert sampled.epsilon <= sup + 0.05

    def test_single_group_vacuous(self):
        band = GaussianScoreBand([(9.0, 11.0)], [(0.5, 1.5)])
        worst = band.worst_case_epsilon(ScoreThresholdMechanism(10.0))
        assert worst.epsilon == 0.0

    def test_zero_probability_group_excluded(self):
        band = GaussianScoreBand(
            [10.0, 99.0], [1.0, 1.0], probabilities=[1.0, 0.0]
        )
        worst = band.worst_case_epsilon(ScoreThresholdMechanism(10.5))
        assert worst.epsilon == 0.0

    def test_to_text(self):
        band = GaussianScoreBand([(9.5, 10.5), 12.0], [1.0, 1.0])
        text = band.worst_case_epsilon(
            ScoreThresholdMechanism(10.5)
        ).to_text()
        assert "worst-case epsilon" in text
        assert "acceptance probability intervals" in text


class TestGrid:
    def test_grid_size(self):
        band = GaussianScoreBand([(9.0, 10.0), 12.0], [(1.0, 2.0), 1.0])
        # Group 1: 2x2 parameter combos; group 2: 1x1 (degenerate linspace
        # still yields resolution^2 duplicates) -> 4 * 4 = 16 members.
        assert len(band.grid(resolution=2)) == 16

    def test_resolution_validated(self):
        band = GaussianScoreBand([10.0], [1.0])
        with pytest.raises(ValidationError):
            band.grid(resolution=0)
