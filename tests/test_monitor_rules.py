"""Tests for repro.monitor.rules: thresholds, posterior credibility,
window-vs-cumulative divergence, and the declarative (de)serialisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bayesian import posterior_epsilon
from repro.exceptions import MonitorError, ValidationError
from repro.monitor.rules import (
    DivergenceRule,
    EpsilonThresholdRule,
    MetricThresholdRule,
    PosteriorCredibleRule,
    RuleContext,
    rule_from_dict,
    rules_from_dicts,
)


def context(
    epsilon=0.3,
    cumulative=None,
    counts=None,
    batch_index=1,
    alpha=1.0,
    metric=None,
):
    matrix = (
        np.array([[30, 10], [10, 30]], dtype=float)
        if counts is None
        else np.asarray(counts, dtype=float)
    )
    return RuleContext(
        monitor="m",
        batch_index=batch_index,
        n_rows=40,
        rows_seen=40,
        epsilon=epsilon,
        cumulative_epsilon=cumulative,
        alpha=alpha,
        counts=lambda: matrix,
        metric=metric,
    )


def metric_context(values, **kwargs):
    """A context whose ``metric`` callable serves a fixed value table."""
    return context(metric=lambda name: values[name], **kwargs)


class TestEpsilonThresholdRule:
    def test_fires_above_threshold_with_details(self):
        event = EpsilonThresholdRule(0.25).evaluate(context(epsilon=0.3))
        assert event is not None
        assert event.rule == "epsilon_threshold"
        assert event.value == 0.3
        assert event.threshold == 0.25
        assert event.batch_index == 1
        assert "0.3000" in event.message

    def test_silent_at_or_below_threshold(self):
        rule = EpsilonThresholdRule(0.3)
        assert rule.evaluate(context(epsilon=0.3)) is None
        assert rule.evaluate(context(epsilon=0.1)) is None

    def test_infinite_epsilon_fires(self):
        event = EpsilonThresholdRule(1.0).evaluate(
            context(epsilon=float("inf"))
        )
        assert event is not None

    def test_validation(self):
        with pytest.raises(ValidationError):
            EpsilonThresholdRule(float("nan"))
        with pytest.raises(ValidationError):
            EpsilonThresholdRule(0.1, severity="apocalyptic")


class TestPosteriorCredibleRule:
    COUNTS = np.array([[90, 10], [10, 90]], dtype=float)

    def test_quantile_matches_the_batched_posterior_path(self):
        rule = PosteriorCredibleRule(
            0.01, level=0.05, n_samples=300, alpha=1.0, seed=3
        )
        event = rule.evaluate(context(counts=self.COUNTS, batch_index=7))
        expected = posterior_epsilon(
            self.COUNTS,
            alpha=1.0,
            n_samples=300,
            quantile_levels=(0.05,),
            seed=np.random.default_rng([3, 7]),
        ).quantiles[0.05]
        assert event is not None
        assert event.value == expected

    def test_deterministic_per_batch_and_varies_across_batches(self):
        rule = PosteriorCredibleRule(0.0, level=0.5, n_samples=100, alpha=1.0)
        same_batch = [
            rule.evaluate(context(counts=self.COUNTS, batch_index=4)).value
            for _ in range(2)
        ]
        assert same_batch[0] == same_batch[1]
        other_batch = rule.evaluate(
            context(counts=self.COUNTS, batch_index=5)
        ).value
        assert other_batch != same_batch[0]

    def test_silent_when_credible_bound_is_below_threshold(self):
        balanced = np.array([[50, 50], [50, 50]], dtype=float)
        rule = PosteriorCredibleRule(5.0, level=0.05, n_samples=100)
        assert rule.evaluate(context(counts=balanced)) is None

    def test_silent_on_degenerate_counts(self):
        rule = PosteriorCredibleRule(0.0, n_samples=50)
        assert rule.evaluate(context(counts=np.zeros((2, 2)))) is None
        assert rule.evaluate(context(counts=np.empty((0, 2)))) is None
        assert (
            rule.evaluate(context(counts=np.array([[5.0], [3.0]]))) is None
        )

    def test_falls_back_to_the_monitor_alpha(self):
        rule = PosteriorCredibleRule(0.0, level=0.5, n_samples=100, seed=1)
        event = rule.evaluate(
            context(counts=self.COUNTS, alpha=2.5, batch_index=2)
        )
        expected = posterior_epsilon(
            self.COUNTS,
            alpha=2.5,
            n_samples=100,
            quantile_levels=(0.5,),
            seed=np.random.default_rng([1, 2]),
        ).quantiles[0.5]
        assert event.value == expected

    def test_validation(self):
        with pytest.raises(ValidationError):
            PosteriorCredibleRule(0.1, level=0.0)
        with pytest.raises(ValidationError):
            PosteriorCredibleRule(0.1, level=1.0)
        with pytest.raises(ValidationError):
            PosteriorCredibleRule(0.1, n_samples=0)


class TestDivergenceRule:
    def test_fires_on_window_vs_cumulative_gap(self):
        event = DivergenceRule(0.1).evaluate(
            context(epsilon=0.5, cumulative=0.2)
        )
        assert event is not None
        assert event.value == pytest.approx(0.3)
        assert "diverges" in event.message

    def test_silent_for_small_gap_or_cumulative_monitors(self):
        rule = DivergenceRule(0.1)
        assert rule.evaluate(context(epsilon=0.25, cumulative=0.2)) is None
        assert rule.evaluate(context(epsilon=9.0, cumulative=None)) is None

    def test_silent_when_gap_is_not_finite(self):
        rule = DivergenceRule(0.1)
        assert (
            rule.evaluate(context(epsilon=float("inf"), cumulative=0.2))
            is None
        )


class TestMetricThresholdRule:
    def test_fires_above_for_gap_style_metrics(self):
        rule = MetricThresholdRule("worst_case_gap", 0.25)
        assert rule.direction == "above"  # higher_is_unfair default
        event = rule.evaluate(
            metric_context({"worst_case_gap": 0.4}, batch_index=3)
        )
        assert event is not None
        assert event.rule == "metric_threshold"
        assert event.value == 0.4
        assert event.threshold == 0.25
        assert event.batch_index == 3
        assert "worst_case_gap = 0.4000 exceeds" in event.message
        assert (
            rule.evaluate(metric_context({"worst_case_gap": 0.25})) is None
        )

    def test_fires_below_for_ratio_style_metrics(self):
        # The EEOC 80% rule: low ratios are the unfair side.
        rule = MetricThresholdRule("demographic_parity_ratio", 0.8)
        assert rule.direction == "below"
        event = rule.evaluate(
            metric_context({"demographic_parity_ratio": 0.6})
        )
        assert event is not None
        assert "falls below" in event.message
        assert (
            rule.evaluate(metric_context({"demographic_parity_ratio": 0.9}))
            is None
        )

    def test_explicit_direction_overrides_the_polarity(self):
        rule = MetricThresholdRule(
            "demographic_parity_ratio", 0.99, direction="above"
        )
        event = rule.evaluate(
            metric_context({"demographic_parity_ratio": 1.0})
        )
        assert event is not None and "exceeds" in event.message

    def test_nan_metric_never_fires(self):
        rule = MetricThresholdRule("worst_case_gap", 0.1)
        values = {"worst_case_gap": float("nan")}
        assert rule.evaluate(metric_context(values)) is None

    def test_inert_without_a_metric_source(self):
        # RuleContext.metric defaults to None (e.g. a bare context built
        # by older call sites); the rule must not crash or fire.
        rule = MetricThresholdRule("worst_case_gap", 0.1)
        assert rule.evaluate(context()) is None

    def test_unknown_metric_rejected_at_construction(self):
        with pytest.raises(ValidationError, match="unknown metric"):
            MetricThresholdRule("sentiment", 0.5)

    def test_validation(self):
        with pytest.raises(ValidationError, match="direction"):
            MetricThresholdRule("worst_case_gap", 0.5, direction="sideways")
        with pytest.raises(ValidationError):
            MetricThresholdRule("worst_case_gap", float("nan"))
        with pytest.raises(ValidationError):
            MetricThresholdRule("worst_case_gap", 0.5, severity="shrug")


class TestDeclarativeRoundtrip:
    RULES = [
        EpsilonThresholdRule(0.25, severity="info"),
        PosteriorCredibleRule(
            0.2, level=0.1, n_samples=64, alpha=0.5, seed=9, severity="critical"
        ),
        DivergenceRule(0.15),
        MetricThresholdRule(
            "demographic_parity_ratio", 0.8, severity="critical"
        ),
        MetricThresholdRule("alpha_intersectional", 0.6, direction="above"),
    ]

    @pytest.mark.parametrize("rule", RULES, ids=lambda rule: rule.kind)
    def test_to_dict_from_dict_round_trip(self, rule):
        rebuilt = rule_from_dict(rule.to_dict())
        assert rebuilt == rule
        assert rebuilt.to_dict() == rule.to_dict()

    def test_rules_from_dicts_preserves_order(self):
        rebuilt = rules_from_dicts([rule.to_dict() for rule in self.RULES])
        assert list(rebuilt) == self.RULES

    def test_unknown_type_is_a_monitor_error(self):
        with pytest.raises(MonitorError, match="unknown rule type"):
            rule_from_dict({"type": "sentiment"})

    def test_bad_arguments_are_a_monitor_error(self):
        with pytest.raises(MonitorError, match="epsilon_threshold"):
            rule_from_dict({"type": "epsilon_threshold", "bogus": 1})
        with pytest.raises(MonitorError, match="object"):
            rule_from_dict(["not", "a", "dict"])
