"""End-to-end tests for the monitoring service HTTP API and its CLI.

The acceptance criterion lives here: for any monitor,
``GET /monitors/{name}/report`` epsilon after ingesting batches B1..Bn
over HTTP equals :func:`repro.core.empirical.dataset_edf` on the
concatenated rows — for windowed and cumulative monitors, and after a
kill + checkpoint-rotation resume — and the posterior summary equals
:meth:`FairnessAuditor.audit_contingency`'s.
"""

from __future__ import annotations

import io
import itertools
import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.audit.auditor import FairnessAuditor
from repro.cli import main
from repro.core.empirical import dataset_edf
from repro.monitor.registry import MonitorRegistry
from repro.monitor.service import MonitorService
from repro.tabular.table import Table

NAMES = ["gender", "race", "hired"]


def fake_clock(start: float = 1_700_000_000.0):
    counter = itertools.count()
    return lambda: start + float(next(counter))


def synthetic_rows(n_rows: int, seed: int = 5) -> list[list[str]]:
    rng = np.random.default_rng(seed)
    return [
        [f"g{rng.integers(2)}", f"r{rng.integers(3)}", f"y{rng.integers(2)}"]
        for _ in range(n_rows)
    ]


def offline_epsilon(rows, window=None, alpha=1.0):
    scope = rows if window is None else rows[-window:]
    return dataset_edf(
        Table.from_rows(NAMES, [tuple(row) for row in scope]),
        protected=NAMES[:2],
        outcome=NAMES[2],
        estimator=alpha,
    ).epsilon


class Client:
    """A minimal JSON client over urllib (no new dependencies)."""

    def __init__(self, url: str):
        self.url = url

    def request(self, method: str, path: str, payload=None):
        data = None if payload is None else json.dumps(payload).encode()
        request = urllib.request.Request(
            self.url + path, data=data, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=10) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def get(self, path):
        return self.request("GET", path)

    def post(self, path, payload):
        return self.request("POST", path, payload)


@pytest.fixture
def service(tmp_path):
    registry = MonitorRegistry.open(tmp_path / "data", clock=fake_clock())
    service = MonitorService(registry).start()
    yield service
    service.shutdown()


@pytest.fixture
def client(service):
    return Client(service.url)


BASE_CONFIG = {
    "name": "hiring",
    "protected": NAMES[:2],
    "outcome": NAMES[2],
    "alpha": 1.0,
}


@pytest.mark.service
class TestHttpApi:
    def test_healthz_counts_monitors_and_rows(self, client):
        status, body = client.get("/healthz")
        assert (status, body["status"]) == (200, "ok")
        assert body["monitors"] == 0
        client.post("/monitors", BASE_CONFIG)
        client.post(
            "/monitors/hiring/observe", {"rows": synthetic_rows(30)}
        )
        _, body = client.get("/healthz")
        assert body["monitors"] == 1
        assert body["rows_ingested"] == 30
        assert body["batches_ingested"] == 1

    def test_create_list_delete(self, client):
        status, body = client.post("/monitors", BASE_CONFIG)
        assert status == 201
        assert body["name"] == "hiring"
        assert client.get("/monitors")[1] == {"monitors": ["hiring"]}
        status, body = client.request("DELETE", "/monitors/hiring")
        assert (status, body) == (200, {"deleted": "hiring"})
        assert client.get("/monitors")[1] == {"monitors": []}

    def test_error_codes(self, client):
        assert client.get("/nope")[0] == 404
        assert client.get("/monitors/ghost/report")[0] == 404
        assert client.post("/monitors/ghost/observe", {"rows": [["a"]]})[0] == 404
        client.post("/monitors", BASE_CONFIG)
        assert client.post("/monitors", BASE_CONFIG)[0] == 409
        assert client.post("/monitors", {"name": "x"})[0] == 400
        assert client.post("/monitors/hiring/observe", {})[0] == 400
        assert client.post("/monitors/hiring/observe", {"rows": []})[0] == 400
        assert (
            client.post("/monitors/hiring/observe", {"rows": ["scalar"]})[0]
            == 400
        )
        # wrong row width is a 400, not a 500
        assert (
            client.post("/monitors/hiring/observe", {"rows": [["only-one"]]})[0]
            == 400
        )
        assert client.request("DELETE", "/healthz")[0] == 404
        assert client.request("DELETE", "/monitors")[0] == 405
        assert client.get("/monitors/hiring/observe")[0] == 405

    def test_keepalive_connection_survives_error_responses(self, service):
        # One persistent HTTP/1.1 connection: a POST whose body the
        # error path never reads (404/405) must not leave bytes in the
        # socket to be parsed as the next request line.
        import http.client

        connection = http.client.HTTPConnection(
            service.host, service.port, timeout=10
        )
        try:
            payload = json.dumps({"rows": [["g0", "r0", "y1"]] * 50})
            for path, expected in [
                ("/monitors/ghost/observe", 404),  # unknown monitor
                ("/monitors/ghost", 405),  # POST on a GET/DELETE route
            ]:
                connection.request("POST", path, body=payload)
                response = connection.getresponse()
                assert response.status == expected
                response.read()
                # The very next request on the SAME connection parses.
                connection.request("GET", "/healthz")
                response = connection.getresponse()
                assert response.status == 200
                assert json.loads(response.read())["status"] == "ok"
        finally:
            connection.close()

    def test_declarative_rules_fire_over_http(self, client):
        config = {
            **BASE_CONFIG,
            "rules": [
                {"type": "epsilon_threshold", "threshold": -1.0,
                 "severity": "info"},
            ],
        }
        client.post("/monitors", config)
        status, body = client.post(
            "/monitors/hiring/observe", {"rows": synthetic_rows(40)}
        )
        assert status == 200
        (alert,) = body["alerts"]
        assert alert["rule"] == "epsilon_threshold"
        _, alerts = client.get("/monitors/hiring/alerts")
        assert len(alerts["records"]) == 1
        _, history = client.get("/monitors/hiring/history")
        assert [r["batch_index"] for r in history["records"]] == [1]
        _, limited = client.get("/monitors/hiring/history?since=0&limit=0")
        assert limited["records"] == []

    @pytest.mark.parametrize(
        "window", [None, 200], ids=["cumulative", "windowed"]
    )
    def test_report_epsilon_is_bit_identical_to_offline(self, client, window):
        config = dict(BASE_CONFIG)
        if window is not None:
            config["window"] = window
        client.post("/monitors", config)
        rows = synthetic_rows(600)
        for start in range(0, 600, 120):
            status, body = client.post(
                "/monitors/hiring/observe",
                {"rows": rows[start : start + 120]},
            )
            assert status == 200
            assert body["epsilon"] == offline_epsilon(
                rows[: start + 120], window=window
            )
        status, report = client.get("/monitors/hiring/report")
        assert status == 200
        assert report["epsilon"] == offline_epsilon(rows, window=window)
        assert report["rows_seen"] == 600

    def test_report_posterior_matches_audit_contingency(self, client):
        client.post(
            "/monitors",
            {**BASE_CONFIG, "posterior_samples": 120, "seed": 13},
        )
        rows = synthetic_rows(300)
        client.post("/monitors/hiring/observe", {"rows": rows})
        _, report = client.get("/monitors/hiring/report")
        offline = FairnessAuditor(
            NAMES[:2], NAMES[2], estimator=1.0,
            posterior_samples=120, seed=13,
        ).audit_dataset(Table.from_rows(NAMES, [tuple(r) for r in rows]))
        posterior = report["posterior"]
        assert posterior["mean"] == offline.posterior.mean
        assert posterior["median"] == offline.posterior.median
        assert posterior["quantiles"] == {
            str(level): value
            for level, value in offline.posterior.quantiles.items()
        }

    def test_concurrent_http_ingestion_is_lossless(self, client, service):
        import threading

        client.post("/monitors", BASE_CONFIG)
        rows_by_thread = {
            which: synthetic_rows(60, seed=which) for which in range(6)
        }
        failures = []

        def poster(which):
            try:
                local = Client(service.url)
                for start in (0, 20, 40):
                    status, _ = local.post(
                        "/monitors/hiring/observe",
                        {"rows": rows_by_thread[which][start : start + 20]},
                    )
                    assert status == 200
            except BaseException as error:  # noqa: BLE001
                failures.append(error)

        threads = [
            threading.Thread(target=poster, args=(which,))
            for which in rows_by_thread
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert failures == []
        all_rows = [
            row for rows in rows_by_thread.values() for row in rows
        ]
        _, report = client.get("/monitors/hiring/report")
        assert report["rows_seen"] == len(all_rows)
        assert report["epsilon"] == offline_epsilon(all_rows)


@pytest.mark.service
class TestKillAndResume:
    """Bit-identity holds across kill + checkpoint-rotation resume."""

    @pytest.mark.parametrize(
        "window", [None, 150], ids=["cumulative", "windowed"]
    )
    def test_service_restart_after_torn_checkpoint(self, tmp_path, window):
        data_dir = tmp_path / "data"
        rows = synthetic_rows(500)
        batches = [rows[start : start + 100] for start in range(0, 500, 100)]

        registry = MonitorRegistry.open(data_dir, clock=fake_clock())
        service = MonitorService(registry, checkpoint_every=1).start()
        client = Client(service.url)
        config = dict(BASE_CONFIG)
        if window is not None:
            config["window"] = window
        client.post("/monitors", config)
        for batch in batches[:3]:
            client.post("/monitors/hiring/observe", {"rows": batch})
        # Simulate the kill: stop serving *without* the graceful-shutdown
        # checkpoint (only the per-batch ones exist), then tear the
        # newest generation as a crash mid-write would.
        newest = data_dir / "checkpoints" / "hiring.rcpk"
        service._stopped = True  # a real kill never runs shutdown()
        service._httpd.shutdown()
        service._httpd.server_close()
        blob = newest.read_bytes()
        newest.write_bytes(blob[: len(blob) // 2])

        restarted = MonitorRegistry.open(data_dir, clock=fake_clock())
        with MonitorService(restarted) as service:
            client = Client(service.url)
            _, report = client.get("/monitors/hiring/report")
            # The torn generation (batch 3) fell back to batch 2's.
            assert report["rows_seen"] == 200
            for batch in batches[2:]:  # client replays from the cursor
                client.post("/monitors/hiring/observe", {"rows": batch})
            _, report = client.get("/monitors/hiring/report")
            assert report["epsilon"] == offline_epsilon(rows, window=window)
            assert report["rows_seen"] == 500


@pytest.mark.service
class TestServeCli:
    """The ``monitor-serve`` subprocess: banner, API, clean SIGTERM exit."""

    def spawn(self, tmp_path, *extra):
        env = dict(os.environ)
        repo_src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
        env["PYTHONUNBUFFERED"] = "1"
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro", "monitor-serve",
                "--data-dir", str(tmp_path / "data"),
                "--port", "0",
                *extra,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )

    def test_serve_create_observe_sigterm(self, tmp_path):
        proc = self.spawn(tmp_path)
        try:
            banner = proc.stdout.readline()
            assert banner.startswith("monitor-serve: listening on http://")
            url = banner.split("listening on ")[1].split()[0]
            client = Client(url)
            assert client.get("/healthz")[0] == 200
            assert client.post("/monitors", BASE_CONFIG)[0] == 201
            rows = synthetic_rows(50)
            for batch in (rows[:25], rows[25:]):
                status, _ = client.post(
                    "/monitors/hiring/observe", {"rows": batch}
                )
                assert status == 200
            status, report = client.get("/monitors/hiring/report")
            assert status == 200
            assert report["epsilon"] == offline_epsilon(rows)
        finally:
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=15)
        assert proc.returncode == 0
        assert "shut down cleanly; checkpointed 1 monitor(s)" in out
        assert err == ""
        assert (tmp_path / "data" / "checkpoints" / "hiring.rcpk").exists()

        # And monitor-status reads the directory the service left behind.
        out_io = io.StringIO()
        assert (
            main(
                ["monitor-status", "--data-dir", str(tmp_path / "data")],
                out=out_io,
            )
            == 0
        )
        text = out_io.getvalue()
        assert "monitor hiring" in text
        assert "rows seen = 50" in text


class TestStatusCli:
    def test_missing_directory_fails_cleanly(self, tmp_path, capsys):
        code = main(
            ["monitor-status", "--data-dir", str(tmp_path / "ghost")],
            out=io.StringIO(),
        )
        assert code == 1
        assert "does not exist" in capsys.readouterr().err

    def test_bad_trend_window_rejected(self, tmp_path, capsys):
        code = main(
            [
                "monitor-status",
                "--data-dir", str(tmp_path),
                "--trend-window", "0",
            ],
            out=io.StringIO(),
        )
        assert code == 2
        assert "--trend-window" in capsys.readouterr().err
