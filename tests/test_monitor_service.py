"""End-to-end tests for the monitoring service HTTP API and its CLI.

The acceptance criterion lives here: for any monitor,
``GET /monitors/{name}/report`` epsilon after ingesting batches B1..Bn
over HTTP equals :func:`repro.core.empirical.dataset_edf` on the
concatenated rows — for windowed and cumulative monitors, and after a
kill + checkpoint-rotation resume — and the posterior summary equals
:meth:`FairnessAuditor.audit_contingency`'s.
"""

from __future__ import annotations

import io
import itertools
import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.audit.auditor import FairnessAuditor
from repro.cli import main
from repro.core.empirical import dataset_edf
from repro.monitor.registry import MonitorRegistry
from repro.monitor.service import MonitorService
from repro.tabular.table import Table

NAMES = ["gender", "race", "hired"]


def fake_clock(start: float = 1_700_000_000.0):
    counter = itertools.count()
    return lambda: start + float(next(counter))


def synthetic_rows(n_rows: int, seed: int = 5) -> list[list[str]]:
    rng = np.random.default_rng(seed)
    return [
        [f"g{rng.integers(2)}", f"r{rng.integers(3)}", f"y{rng.integers(2)}"]
        for _ in range(n_rows)
    ]


def offline_epsilon(rows, window=None, alpha=1.0):
    scope = rows if window is None else rows[-window:]
    return dataset_edf(
        Table.from_rows(NAMES, [tuple(row) for row in scope]),
        protected=NAMES[:2],
        outcome=NAMES[2],
        estimator=alpha,
    ).epsilon


class Client:
    """A minimal JSON client over urllib (no new dependencies)."""

    def __init__(self, url: str):
        self.url = url

    def request(self, method: str, path: str, payload=None):
        data = None if payload is None else json.dumps(payload).encode()
        request = urllib.request.Request(
            self.url + path, data=data, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=10) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def get(self, path):
        return self.request("GET", path)

    def post(self, path, payload):
        return self.request("POST", path, payload)


@pytest.fixture
def service(tmp_path):
    registry = MonitorRegistry.open(tmp_path / "data", clock=fake_clock())
    service = MonitorService(registry).start()
    yield service
    service.shutdown()


@pytest.fixture
def client(service):
    return Client(service.url)


BASE_CONFIG = {
    "name": "hiring",
    "protected": NAMES[:2],
    "outcome": NAMES[2],
    "alpha": 1.0,
}


@pytest.mark.service
class TestHttpApi:
    def test_healthz_counts_monitors_and_rows(self, client):
        status, body = client.get("/healthz")
        assert (status, body["status"]) == (200, "ok")
        assert body["monitors"] == 0
        client.post("/monitors", BASE_CONFIG)
        client.post(
            "/monitors/hiring/observe", {"rows": synthetic_rows(30)}
        )
        _, body = client.get("/healthz")
        assert body["monitors"] == 1
        assert body["rows_ingested"] == 30
        assert body["batches_ingested"] == 1

    def test_create_list_delete(self, client):
        status, body = client.post("/monitors", BASE_CONFIG)
        assert status == 201
        assert body["name"] == "hiring"
        assert client.get("/monitors")[1] == {"monitors": ["hiring"]}
        status, body = client.request("DELETE", "/monitors/hiring")
        assert (status, body) == (200, {"deleted": "hiring"})
        assert client.get("/monitors")[1] == {"monitors": []}

    def test_error_codes(self, client):
        assert client.get("/nope")[0] == 404
        assert client.get("/monitors/ghost/report")[0] == 404
        assert client.post("/monitors/ghost/observe", {"rows": [["a"]]})[0] == 404
        client.post("/monitors", BASE_CONFIG)
        assert client.post("/monitors", BASE_CONFIG)[0] == 409
        assert client.post("/monitors", {"name": "x"})[0] == 400
        assert client.post("/monitors/hiring/observe", {})[0] == 400
        assert client.post("/monitors/hiring/observe", {"rows": []})[0] == 400
        assert (
            client.post("/monitors/hiring/observe", {"rows": ["scalar"]})[0]
            == 400
        )
        # wrong row width is a 400, not a 500
        assert (
            client.post("/monitors/hiring/observe", {"rows": [["only-one"]]})[0]
            == 400
        )
        assert client.request("DELETE", "/healthz")[0] == 404
        assert client.request("DELETE", "/monitors")[0] == 405
        assert client.get("/monitors/hiring/observe")[0] == 405

    def test_keepalive_connection_survives_error_responses(self, service):
        # One persistent HTTP/1.1 connection: a POST whose body the
        # error path never reads (404/405) must not leave bytes in the
        # socket to be parsed as the next request line.
        import http.client

        connection = http.client.HTTPConnection(
            service.host, service.port, timeout=10
        )
        try:
            payload = json.dumps({"rows": [["g0", "r0", "y1"]] * 50})
            for path, expected in [
                ("/monitors/ghost/observe", 404),  # unknown monitor
                ("/monitors/ghost", 405),  # POST on a GET/DELETE route
            ]:
                connection.request("POST", path, body=payload)
                response = connection.getresponse()
                assert response.status == expected
                response.read()
                # The very next request on the SAME connection parses.
                connection.request("GET", "/healthz")
                response = connection.getresponse()
                assert response.status == 200
                assert json.loads(response.read())["status"] == "ok"
        finally:
            connection.close()

    def test_declarative_rules_fire_over_http(self, client):
        config = {
            **BASE_CONFIG,
            "rules": [
                {"type": "epsilon_threshold", "threshold": -1.0,
                 "severity": "info"},
            ],
        }
        client.post("/monitors", config)
        status, body = client.post(
            "/monitors/hiring/observe", {"rows": synthetic_rows(40)}
        )
        assert status == 200
        (alert,) = body["alerts"]
        assert alert["rule"] == "epsilon_threshold"
        _, alerts = client.get("/monitors/hiring/alerts")
        assert len(alerts["records"]) == 1
        _, history = client.get("/monitors/hiring/history")
        assert [r["batch_index"] for r in history["records"]] == [1]
        _, limited = client.get("/monitors/hiring/history?since=0&limit=0")
        assert limited["records"] == []

    @pytest.mark.parametrize(
        "window", [None, 200], ids=["cumulative", "windowed"]
    )
    def test_report_epsilon_is_bit_identical_to_offline(self, client, window):
        config = dict(BASE_CONFIG)
        if window is not None:
            config["window"] = window
        client.post("/monitors", config)
        rows = synthetic_rows(600)
        for start in range(0, 600, 120):
            status, body = client.post(
                "/monitors/hiring/observe",
                {"rows": rows[start : start + 120]},
            )
            assert status == 200
            assert body["epsilon"] == offline_epsilon(
                rows[: start + 120], window=window
            )
        status, report = client.get("/monitors/hiring/report")
        assert status == 200
        assert report["epsilon"] == offline_epsilon(rows, window=window)
        assert report["rows_seen"] == 600

    def test_report_posterior_matches_audit_contingency(self, client):
        client.post(
            "/monitors",
            {**BASE_CONFIG, "posterior_samples": 120, "seed": 13},
        )
        rows = synthetic_rows(300)
        client.post("/monitors/hiring/observe", {"rows": rows})
        _, report = client.get("/monitors/hiring/report")
        offline = FairnessAuditor(
            NAMES[:2], NAMES[2], estimator=1.0,
            posterior_samples=120, seed=13,
        ).audit_dataset(Table.from_rows(NAMES, [tuple(r) for r in rows]))
        posterior = report["posterior"]
        assert posterior["mean"] == offline.posterior.mean
        assert posterior["median"] == offline.posterior.median
        assert posterior["quantiles"] == {
            str(level): value
            for level, value in offline.posterior.quantiles.items()
        }

    def test_concurrent_http_ingestion_is_lossless(self, client, service):
        import threading

        client.post("/monitors", BASE_CONFIG)
        rows_by_thread = {
            which: synthetic_rows(60, seed=which) for which in range(6)
        }
        failures = []

        def poster(which):
            try:
                local = Client(service.url)
                for start in (0, 20, 40):
                    status, _ = local.post(
                        "/monitors/hiring/observe",
                        {"rows": rows_by_thread[which][start : start + 20]},
                    )
                    assert status == 200
            except BaseException as error:  # noqa: BLE001
                failures.append(error)

        threads = [
            threading.Thread(target=poster, args=(which,))
            for which in rows_by_thread
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert failures == []
        all_rows = [
            row for rows in rows_by_thread.values() for row in rows
        ]
        _, report = client.get("/monitors/hiring/report")
        assert report["rows_seen"] == len(all_rows)
        assert report["epsilon"] == offline_epsilon(all_rows)


@pytest.mark.service
class TestKillAndResume:
    """Bit-identity holds across kill + checkpoint-rotation resume."""

    @pytest.mark.parametrize(
        "window", [None, 150], ids=["cumulative", "windowed"]
    )
    def test_service_restart_after_torn_checkpoint(self, tmp_path, window):
        data_dir = tmp_path / "data"
        rows = synthetic_rows(500)
        batches = [rows[start : start + 100] for start in range(0, 500, 100)]

        registry = MonitorRegistry.open(data_dir, clock=fake_clock())
        service = MonitorService(registry, checkpoint_every=1).start()
        client = Client(service.url)
        config = dict(BASE_CONFIG)
        if window is not None:
            config["window"] = window
        client.post("/monitors", config)
        for batch in batches[:3]:
            client.post("/monitors/hiring/observe", {"rows": batch})
        # Simulate the kill: stop serving *without* the graceful-shutdown
        # checkpoint (only the per-batch ones exist), then tear the
        # newest generation as a crash mid-write would.
        newest = data_dir / "checkpoints" / "hiring.rcpk"
        service._stopped = True  # a real kill never runs shutdown()
        service._httpd.shutdown()
        service._httpd.server_close()
        blob = newest.read_bytes()
        newest.write_bytes(blob[: len(blob) // 2])

        restarted = MonitorRegistry.open(data_dir, clock=fake_clock())
        with MonitorService(restarted) as service:
            client = Client(service.url)
            _, report = client.get("/monitors/hiring/report")
            # The torn generation (batch 3) fell back to batch 2's, and
            # the WAL replayed batch 3 on top — every acknowledged batch
            # survives without any client-side resend.
            assert report["rows_seen"] == 300
            for batch in batches[3:]:
                client.post("/monitors/hiring/observe", {"rows": batch})
            _, report = client.get("/monitors/hiring/report")
            assert report["epsilon"] == offline_epsilon(rows, window=window)
            assert report["rows_seen"] == 500
            # Replay never duplicated a history record.
            _, history = client.get("/monitors/hiring/history")
            indices = [
                record["batch_index"] for record in history["records"]
            ]
            assert indices == [1, 2, 3, 4, 5]


@pytest.mark.service
class TestServeCli:
    """The ``monitor-serve`` subprocess: banner, API, clean SIGTERM exit."""

    def spawn(self, tmp_path, *extra):
        env = dict(os.environ)
        repo_src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
        env["PYTHONUNBUFFERED"] = "1"
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro", "monitor-serve",
                "--data-dir", str(tmp_path / "data"),
                "--port", "0",
                *extra,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )

    def test_serve_create_observe_sigterm(self, tmp_path):
        proc = self.spawn(tmp_path)
        try:
            banner = proc.stdout.readline()
            assert banner.startswith("monitor-serve: listening on http://")
            url = banner.split("listening on ")[1].split()[0]
            client = Client(url)
            assert client.get("/healthz")[0] == 200
            assert client.post("/monitors", BASE_CONFIG)[0] == 201
            rows = synthetic_rows(50)
            for batch in (rows[:25], rows[25:]):
                status, _ = client.post(
                    "/monitors/hiring/observe", {"rows": batch}
                )
                assert status == 200
            status, report = client.get("/monitors/hiring/report")
            assert status == 200
            assert report["epsilon"] == offline_epsilon(rows)
        finally:
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=15)
        assert proc.returncode == 0
        assert "shut down cleanly; checkpointed 1 monitor(s)" in out
        assert err == ""
        assert (tmp_path / "data" / "checkpoints" / "hiring.rcpk").exists()

        # And monitor-status reads the directory the service left behind.
        out_io = io.StringIO()
        assert (
            main(
                ["monitor-status", "--data-dir", str(tmp_path / "data")],
                out=out_io,
            )
            == 0
        )
        text = out_io.getvalue()
        assert "monitor hiring" in text
        assert "rows seen = 50" in text


class TestStatusCli:
    def test_missing_directory_fails_cleanly(self, tmp_path, capsys):
        code = main(
            ["monitor-status", "--data-dir", str(tmp_path / "ghost")],
            out=io.StringIO(),
        )
        assert code == 1
        assert "does not exist" in capsys.readouterr().err

    def test_bad_trend_window_rejected(self, tmp_path, capsys):
        code = main(
            [
                "monitor-status",
                "--data-dir", str(tmp_path),
                "--trend-window", "0",
            ],
            out=io.StringIO(),
        )
        assert code == 2
        assert "--trend-window" in capsys.readouterr().err


@pytest.mark.service
class TestBackpressure:
    """Bounded admission: a flooded monitor answers fast with 200 or 429
    — never a hang, a 500, or a silently dropped batch — and every
    acknowledged row is in the final count exactly once."""

    def test_saturated_queue_rejects_cleanly_and_loses_nothing(
        self, tmp_path, monkeypatch
    ):
        import threading

        registry = MonitorRegistry.open(tmp_path / "data", clock=fake_clock())
        service = MonitorService(registry, queue_depth=2).start()
        try:
            client = Client(service.url)
            assert client.post("/monitors", BASE_CONFIG)[0] == 201
            monitor = registry.get("hiring")
            original = monitor.observe

            def slow_observe(rows):
                time.sleep(0.05)
                return original(rows)

            monkeypatch.setattr(monitor, "observe", slow_observe)
            batches = [synthetic_rows(10, seed=100 + i) for i in range(16)]
            outcomes: list[tuple[int, int]] = []
            outcomes_lock = threading.Lock()

            def flood(index: int) -> None:
                status, _ = Client(service.url).post(
                    "/monitors/hiring/observe", {"rows": batches[index]}
                )
                with outcomes_lock:
                    outcomes.append((index, status))

            threads = [
                threading.Thread(target=flood, args=(i,))
                for i in range(len(batches))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert not any(thread.is_alive() for thread in threads)
            statuses = {status for _, status in outcomes}
            assert statuses <= {200, 429}, statuses
            assert 429 in statuses, "the flood never saturated the queue"
            acked = [i for i, status in outcomes if status == 200]
            assert monitor.rows_seen == 10 * len(acked)
            # Rejected callers retry once the flood has drained: nothing
            # is lost, nothing is double-counted.
            for index, status in outcomes:
                if status == 429:
                    retry, _ = client.post(
                        "/monitors/hiring/observe", {"rows": batches[index]}
                    )
                    assert retry == 200
            assert monitor.rows_seen == 10 * len(batches)
            history = registry.store.query(monitor="hiring", kind="batch")
            assert [r["batch_index"] for r in history] == list(
                range(1, len(batches) + 1)
            )
        finally:
            service.shutdown()

    def test_429_carries_retry_after(self, tmp_path):
        from repro.monitor.service import QUEUE_RETRY_AFTER

        registry = MonitorRegistry.open(tmp_path / "data", clock=fake_clock())
        service = MonitorService(registry, queue_depth=1).start()
        try:
            client = Client(service.url)
            client.post("/monitors", BASE_CONFIG)
            # Pin the lone slot so the next request is rejected.
            with service._inflight_lock:
                service._inflight["hiring"] = 1
            request = urllib.request.Request(
                service.url + "/monitors/hiring/observe",
                data=json.dumps({"rows": synthetic_rows(5)}).encode(),
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            error = excinfo.value
            assert error.code == 429
            assert float(error.headers["Retry-After"]) == QUEUE_RETRY_AFTER
            body = json.loads(error.read())
            assert body["retry_after"] == QUEUE_RETRY_AFTER
            assert "queue is full" in body["error"]
            with service._inflight_lock:
                service._inflight.pop("hiring", None)
            assert (
                client.post(
                    "/monitors/hiring/observe", {"rows": synthetic_rows(5)}
                )[0]
                == 200
            )
        finally:
            service.shutdown()


@pytest.mark.service
class TestDegradedWal:
    def test_wal_failure_returns_503_then_heals(self, tmp_path):
        from faults import FaultyFileSystem

        filesystem = FaultyFileSystem()
        registry = MonitorRegistry.open(
            tmp_path / "data",
            clock=fake_clock(),
            wal_filesystem=filesystem,
        )
        service = MonitorService(registry).start()
        try:
            client = Client(service.url)
            client.post("/monitors", BASE_CONFIG)
            rows = synthetic_rows(10)
            assert client.post("/monitors/hiring/observe", {"rows": rows})[0] == 200
            # The next WAL fsync dies: the observe must be rejected with
            # a machine-readable 503, not acknowledged or half-applied.
            filesystem.fail_fsync_at.add(filesystem.fsync_calls + 1)
            request = urllib.request.Request(
                service.url + "/monitors/hiring/observe",
                data=json.dumps({"rows": rows}).encode(),
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            error = excinfo.value
            assert error.code == 503
            assert float(error.headers["Retry-After"]) > 0
            body = json.loads(error.read())
            assert body["degraded"] is True
            assert body["retry_after"] > 0
            assert registry.get("hiring").rows_seen == 10  # not applied
            _, health = client.get("/healthz")
            assert health["status"] == "degraded"
            assert health["durability"]["hiring"]["wal_degraded"] is True
            # The fault was one-shot: the probe append heals the log.
            status, _ = client.post(
                "/monitors/hiring/observe", {"rows": rows}
            )
            assert status == 200
            assert registry.get("hiring").rows_seen == 20
            _, health = client.get("/healthz")
            assert health["status"] == "ok"
            assert health["durability"]["hiring"]["wal_degraded"] is False
        finally:
            service.shutdown()

    def test_indeterminate_wal_failure_maps_to_non_retryable_500(
        self, tmp_path, monkeypatch
    ):
        from repro.exceptions import WalError
        from repro.monitor.registry import Monitor

        registry = MonitorRegistry.open(tmp_path / "data", clock=fake_clock())
        service = MonitorService(registry).start()
        try:
            client = Client(service.url)
            client.post("/monitors", BASE_CONFIG)

            def broken_observe(self, rows):
                raise WalError(
                    "write-ahead log fsync failed; durability of the "
                    "batch is indeterminate",
                    indeterminate=True,
                )

            monkeypatch.setattr(Monitor, "observe", broken_observe)
            request = urllib.request.Request(
                service.url + "/monitors/hiring/observe",
                data=json.dumps({"rows": synthetic_rows(5)}).encode(),
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            error = excinfo.value
            # 500, not 503: the batch may be durable and replayed after a
            # crash, so the client must not be invited to retry it.
            assert error.code == 500
            assert error.headers.get("Retry-After") is None
            body = json.loads(error.read())
            assert body["degraded"] is True
            assert body["indeterminate"] is True
            assert "indeterminate" in body["error"]
        finally:
            service.shutdown()

    def test_healthz_reports_checkpoint_age_and_replay_lag(self, tmp_path):
        registry = MonitorRegistry.open(tmp_path / "data", clock=fake_clock())
        service = MonitorService(registry, checkpoint_every=2).start()
        try:
            client = Client(service.url)
            client.post("/monitors", BASE_CONFIG)
            _, health = client.get("/healthz")
            durability = health["durability"]["hiring"]
            assert durability["applied_seq"] == 0
            assert durability["last_checkpoint_ts"] is None
            assert durability["wal_replay_lag"] == 0
            client.post("/monitors/hiring/observe", {"rows": synthetic_rows(5)})
            _, health = client.get("/healthz")
            durability = health["durability"]["hiring"]
            # One applied batch, none checkpointed: a restart replays 1.
            assert durability["applied_seq"] == 1
            assert durability["wal_last_seq"] == 1
            assert durability["wal_replay_lag"] == 1
            client.post("/monitors/hiring/observe", {"rows": synthetic_rows(5)})
            _, health = client.get("/healthz")
            durability = health["durability"]["hiring"]
            # checkpoint_every=2 checkpointed at batch 2: caught up.
            assert durability["applied_seq"] == 2
            assert durability["wal_replay_lag"] == 0
            assert durability["last_checkpoint_ts"] is not None
            assert durability["last_checkpoint_age"] >= 0
            assert durability["inflight"] == 0
        finally:
            service.shutdown()


@pytest.mark.service
class TestUniformErrorBodies:
    """Every error path answers the same machine-readable JSON shape:
    an ``"error"`` string (plus optional typed extras), never HTML and
    never a traceback."""

    @pytest.fixture
    def strict_service(self, tmp_path):
        registry = MonitorRegistry.open(tmp_path / "data", clock=fake_clock())
        service = MonitorService(registry, queue_depth=1).start()
        client = Client(service.url)
        assert client.post("/monitors", BASE_CONFIG)[0] == 201
        yield service
        service.shutdown()

    @pytest.mark.parametrize(
        "scenario,expected",
        [
            ("bad_config", 400),
            ("unknown_monitor", 404),
            ("bad_method", 405),
            ("duplicate_monitor", 409),
            ("oversized_body", 413),
            ("queue_full", 429),
            ("handler_bug", 500),
        ],
    )
    def test_error_body_shape(self, strict_service, scenario, expected, monkeypatch):
        import http.client

        service = strict_service
        client = Client(service.url)
        if scenario == "bad_config":
            status, body = client.post("/monitors", {"name": "broken"})
        elif scenario == "unknown_monitor":
            status, body = client.get("/monitors/ghost/report")
        elif scenario == "bad_method":
            status, body = client.request("DELETE", "/monitors")
        elif scenario == "duplicate_monitor":
            status, body = client.post("/monitors", BASE_CONFIG)
        elif scenario == "oversized_body":
            from repro.monitor.service import MAX_BODY_BYTES

            connection = http.client.HTTPConnection(
                service.host, service.port, timeout=10
            )
            try:
                connection.putrequest("POST", "/monitors/hiring/observe")
                connection.putheader(
                    "Content-Length", str(MAX_BODY_BYTES + 1)
                )
                connection.endheaders()
                response = connection.getresponse()
                status, body = response.status, json.loads(response.read())
            finally:
                connection.close()
        elif scenario == "queue_full":
            with service._inflight_lock:
                service._inflight["hiring"] = 1
            status, body = client.post(
                "/monitors/hiring/observe", {"rows": synthetic_rows(5)}
            )
            with service._inflight_lock:
                service._inflight.pop("hiring", None)
        elif scenario == "handler_bug":
            def explode(name):
                raise RuntimeError("sensitive internal detail")

            monkeypatch.setattr(service.registry, "report", explode)
            status, body = client.get("/monitors/hiring/report")
        assert status == expected
        assert isinstance(body["error"], str) and body["error"]
        assert "Traceback" not in body["error"]
        # Internals never leak through the catch-all 500.
        assert "sensitive internal detail" not in body["error"]
        for value in body.values():
            assert isinstance(value, (str, int, float, bool))
