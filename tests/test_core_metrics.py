"""Tests for repro.core.metrics: the FairnessMetric contract and registry,
the count kernels, and bit-identity with the legacy row-level algorithms.

The kernels promise *bit-identity* with the mask-based row-level code they
replaced: rates from integer counts (``positive / total``) are the same
IEEE division ``np.mean`` performs on 0/1 flag slices (0/1 sums are exact
in any order), and the extrema/log/subtraction steps are the same scalar
operations applied to the same floats. The references here re-implement
the *old* list-comprehension path independently, so a kernel regression
cannot hide behind the adapters (which now call the kernels)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.metrics import (
    FairnessMetric,
    alpha_intersectional_counts,
    calibration_cell_stats,
    demographic_parity_difference_counts,
    demographic_parity_epsilon_counts,
    demographic_parity_ratio_counts,
    equalized_odds_gap_counts,
    factorize_labels,
    get_metric,
    group_outcome_counts,
    metric_values,
    outcome_rate_stack,
    positive_rate_stack,
    register_metric,
    registered_metrics,
    subgroup_violation_counts,
    unregister_metric,
    worst_case_gap_counts,
    worst_case_ratio_counts,
)
from repro.core.sweep import metric_subset_sweep
from repro.exceptions import ValidationError
from repro.metrics import (
    demographic_parity_difference,
    demographic_parity_epsilon,
    demographic_parity_ratio,
    statistical_parity_subgroup_fairness,
)
from repro.tabular.table import Table

# Mixed-type group labels: distinct str/int/float/None/bool values, with
# the 1 == True == 1.0 hash-collapse trap included on purpose.
GROUP_POOL = [0, 1, True, 1.0, "1", "F", "M", 2.5, None]


# ----------------------------------------------------------------------
# Independent legacy references (the pre-port mask-based algorithms)
# ----------------------------------------------------------------------
def legacy_rates(predictions, groups, positive):
    """sorted(set(...), key=str) levels -> flags[mask].mean()."""
    flags = np.asarray(
        [1.0 if p == positive else 0.0 for p in predictions], dtype=float
    )
    levels = sorted(set(groups), key=str)
    return [
        float(flags[np.asarray([g == level for g in groups])].mean())
        for level in levels
    ]


def legacy_log_side(high, low):
    if high == 0.0:
        return None  # vacuous side: nobody receives the outcome
    if low == 0.0:
        return math.inf
    return float(np.log(np.float64(high) / np.float64(low)))


def legacy_epsilon(rates):
    sides = [
        legacy_log_side(max(rates), min(rates)),
        legacy_log_side(1.0 - min(rates), 1.0 - max(rates)),
    ]
    sides = [side for side in sides if side is not None]
    return max(sides) if sides else 0.0


def legacy_subgroup_worst(predictions, groups, positive):
    flags = np.asarray(
        [1.0 if p == positive else 0.0 for p in predictions], dtype=float
    )
    base = float(flags.mean())
    worst = -math.inf
    for level in sorted(set(groups), key=str):
        mask = np.asarray([g == level for g in groups])
        rate = float(flags[mask].mean())
        mass = float(mask.sum() / len(groups))
        worst = max(worst, mass * abs(rate - base))
    return worst


@st.composite
def prediction_tables(draw, min_groups=1, max_rows=40):
    """(predictions, groups) with 0/1 predictions and mixed-type groups."""
    rows = draw(
        st.lists(
            st.tuples(st.integers(0, 1), st.sampled_from(GROUP_POOL)),
            min_size=1,
            max_size=max_rows,
        )
    )
    predictions = [p for p, _ in rows]
    groups = [g for _, g in rows]
    assume(len(set(groups)) >= min_groups)
    return predictions, groups


def counts_from_rows(predictions, groups, positive=1):
    levels, codes = factorize_labels(groups)
    flags = np.asarray(
        [1.0 if p == positive else 0.0 for p in predictions], dtype=float
    )
    return group_outcome_counts(codes, flags, len(levels))


# ----------------------------------------------------------------------
# Bit-identity: count kernels vs the legacy row-level algorithms
# ----------------------------------------------------------------------
class TestKernelBitIdentity:
    @settings(max_examples=200, deadline=None)
    @given(prediction_tables(min_groups=2))
    def test_demographic_parity_family(self, table):
        predictions, groups = table
        counts = counts_from_rows(predictions, groups)
        rates = legacy_rates(predictions, groups, positive=1)

        difference = float(demographic_parity_difference_counts(counts))
        assert difference == max(rates) - min(rates)

        ratio = float(demographic_parity_ratio_counts(counts))
        expected = 1.0 if max(rates) == 0.0 else min(rates) / max(rates)
        assert ratio == expected

        epsilon = float(demographic_parity_epsilon_counts(counts))
        assert epsilon == legacy_epsilon(rates)

    @settings(max_examples=200, deadline=None)
    @given(prediction_tables(min_groups=2))
    def test_adapters_delegate_to_the_kernels(self, table):
        predictions, groups = table
        counts = counts_from_rows(predictions, groups)
        assert demographic_parity_difference(
            predictions, groups, positive=1
        ) == float(demographic_parity_difference_counts(counts))
        assert demographic_parity_ratio(
            predictions, groups, positive=1
        ) == float(demographic_parity_ratio_counts(counts))
        assert demographic_parity_epsilon(
            predictions, groups, positive=1
        ) == float(demographic_parity_epsilon_counts(counts))

    @settings(max_examples=200, deadline=None)
    @given(prediction_tables(min_groups=1))
    def test_subgroup_violation(self, table):
        predictions, groups = table
        counts = counts_from_rows(predictions, groups)
        assert float(subgroup_violation_counts(counts)) == (
            legacy_subgroup_worst(predictions, groups, positive=1)
        )
        violations = statistical_parity_subgroup_fairness(
            predictions, groups, positive=1
        )
        assert max(v.violation for v in violations) == float(
            subgroup_violation_counts(counts)
        )

    @settings(max_examples=150, deadline=None)
    @given(prediction_tables(min_groups=2))
    def test_rate_stack_matches_mask_means(self, table):
        predictions, groups = table
        counts = counts_from_rows(predictions, groups)
        rates, mass = positive_rate_stack(counts)
        # Level *order* is ambiguous when two levels share a str key
        # (e.g. 1 vs "1"); the rate multiset is what must match.
        assert sorted(rates.tolist()) == sorted(
            legacy_rates(predictions, groups, 1)
        )
        assert mass.sum() == len(predictions)


class TestKernelEdges:
    def test_padded_and_empty_groups_are_excluded(self):
        counts = np.array(
            [[3.0, 1.0], [np.nan, np.nan], [0.0, 0.0], [1.0, 3.0]]
        )
        rates, mass = positive_rate_stack(counts)
        assert mass.tolist() == [4.0, 0.0, 0.0, 4.0]
        assert np.isnan(rates[1]) and np.isnan(rates[2])
        assert float(demographic_parity_difference_counts(counts)) == 0.5

    def test_single_group_per_label_edge(self):
        # One populated group: no pairwise comparison exists.
        counts = np.array([[3.0, 1.0], [0.0, 0.0]])
        assert math.isnan(float(demographic_parity_difference_counts(counts)))
        assert math.isnan(float(demographic_parity_epsilon_counts(counts)))
        assert math.isnan(float(worst_case_gap_counts(counts)))
        # ...but the Kearns violation is defined (trivially zero).
        assert float(subgroup_violation_counts(counts)) == 0.0

    def test_empty_slice_is_nan_everywhere(self):
        counts = np.zeros((2, 2))
        for name in registered_metrics():
            assert math.isnan(float(get_metric(name)(counts)))

    def test_stacked_batch_matches_per_slice_calls(self):
        rng = np.random.default_rng(0)
        stack = rng.integers(0, 9, size=(5, 4, 3)).astype(float)
        stack[2, -1] = np.nan  # padded group in slice 2
        batched = metric_values(stack)
        for row in range(5):
            single = metric_values(stack[row])
            for name, column in batched.items():
                one = float(single[name])
                assert float(column[row]) == one or (
                    math.isnan(float(column[row])) and math.isnan(one)
                )

    def test_input_validation(self):
        with pytest.raises(ValidationError, match="n_groups"):
            outcome_rate_stack(np.array([1.0, 2.0]))
        with pytest.raises(ValidationError, match="two outcome"):
            outcome_rate_stack(np.array([[1.0], [2.0]]))
        with pytest.raises(ValidationError, match="non-negative"):
            outcome_rate_stack(np.array([[1.0, -2.0]]))


# ----------------------------------------------------------------------
# The PAPERS.md backends: Ghosh et al. 2021 and Maheshwari et al. 2023
# ----------------------------------------------------------------------
class TestWorstCaseComparisons:
    @settings(max_examples=150, deadline=None)
    @given(prediction_tables(min_groups=2))
    def test_worst_case_dominates_the_positive_outcome_view(self, table):
        predictions, groups = table
        counts = counts_from_rows(predictions, groups)
        gap = float(worst_case_gap_counts(counts))
        ratio = float(worst_case_ratio_counts(counts))
        assert gap >= float(demographic_parity_difference_counts(counts))
        assert ratio <= float(demographic_parity_ratio_counts(counts))
        assert 0.0 <= gap <= 1.0 and 0.0 <= ratio <= 1.0

    def test_binary_outcome_gap_is_symmetric(self):
        counts = np.array([[6.0, 2.0], [1.0, 7.0]])
        # Binary rates sum to 1 per group, so both outcomes carry the
        # same gap and the worst case equals the demographic-parity one.
        assert float(worst_case_gap_counts(counts)) == pytest.approx(
            float(demographic_parity_difference_counts(counts))
        )

    def test_three_outcomes_catch_a_hidden_disparity(self):
        # Positive rates are equal, but the first two outcomes differ:
        # the demographic-parity view sees nothing, the worst case does.
        counts = np.array([[8.0, 0.0, 2.0], [0.0, 8.0, 2.0]])
        assert float(demographic_parity_difference_counts(counts)) == 0.0
        assert float(worst_case_gap_counts(counts)) == 0.8
        assert float(worst_case_ratio_counts(counts)) == 0.0

    def test_vacuous_outcome_is_neutral_in_ratio_form(self):
        counts = np.array([[4.0, 0.0, 4.0], [2.0, 0.0, 6.0]])
        assert float(worst_case_ratio_counts(counts)) == 0.5


class TestAlphaIntersectional:
    @settings(max_examples=150, deadline=None)
    @given(
        prediction_tables(min_groups=2),
        st.floats(0.0, 1.0, allow_nan=False),
    )
    def test_closed_form_identity(self, table, alpha):
        predictions, groups = table
        counts = counts_from_rows(predictions, groups)
        rates = legacy_rates(predictions, groups, positive=1)
        # alpha*(max-min) + (1-alpha)*(1-min) == alpha*max - min + (1-alpha)
        assert float(
            alpha_intersectional_counts(counts, alpha)
        ) == pytest.approx(alpha * max(rates) - min(rates) + (1.0 - alpha))

    def test_pure_gap_and_pure_shortfall_endpoints(self):
        counts = np.array([[5.0, 5.0], [2.0, 8.0]])  # rates 0.5 and 0.8
        assert float(alpha_intersectional_counts(counts, 1.0)) == float(
            demographic_parity_difference_counts(counts)
        )
        assert float(
            alpha_intersectional_counts(counts, 0.0)
        ) == pytest.approx(0.5)

    def test_leveling_down_is_penalised_not_rewarded(self):
        # rates 0.5 / 0.8 -> level everyone down to 0.3 / 0.5. The pure
        # gap *shrinks* (0.3 -> 0.2: looks like progress). The measure
        # moves by alpha * d(max) - d(min) = 0.2 - 0.3 * alpha, so any
        # alpha weighting the shortfall enough (here < 2/3, covering the
        # 0.5 default) sees through the leveling-down and *rises*.
        before = np.array([[5.0, 5.0], [2.0, 8.0]])
        after = np.array([[7.0, 3.0], [5.0, 5.0]])
        gap_before = float(demographic_parity_difference_counts(before))
        gap_after = float(demographic_parity_difference_counts(after))
        assert gap_after < gap_before  # the gap metric is fooled
        for alpha in (0.0, 0.25, 0.5):
            assert float(
                alpha_intersectional_counts(after, alpha)
            ) > float(alpha_intersectional_counts(before, alpha))

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(st.integers(2, 9), min_size=2, max_size=5),
        st.integers(1, 3),
        st.floats(0.0, 0.99, allow_nan=False),
    )
    def test_uniform_degradation_raises_the_measure(
        self, positives, delta, alpha
    ):
        # Every group loses `delta` positives out of 10: max and min both
        # drop by delta/10, the gap is unchanged, the shortfall grows.
        assume(min(positives) - delta >= 0)
        build = lambda ks: np.stack(
            [np.asarray([10.0 - k, k]) for k in ks]
        )
        before = build(positives)
        after = build([k - delta for k in positives])
        assert float(alpha_intersectional_counts(after, alpha)) > float(
            alpha_intersectional_counts(before, alpha)
        )
        assert float(alpha_intersectional_counts(after, 1.0)) == pytest.approx(
            float(alpha_intersectional_counts(before, 1.0))
        )

    def test_alpha_validated(self):
        counts = np.array([[1.0, 1.0], [1.0, 1.0]])
        for alpha in (-0.1, 1.5, math.nan):
            with pytest.raises(ValidationError, match="alpha"):
                alpha_intersectional_counts(counts, alpha)


# ----------------------------------------------------------------------
# Kernels with extra structure: equalized odds and calibration
# ----------------------------------------------------------------------
class TestEqualizedOddsKernel:
    def test_max_over_labels(self):
        # label 0: TNR-side gap 0.5; label 1: TPR gap 0.25.
        counts = np.array(
            [
                [[2.0, 2.0], [4.0, 0.0]],
                [[1.0, 3.0], [0.0, 4.0]],
            ]
        )
        assert float(equalized_odds_gap_counts(counts)) == 0.5

    def test_label_in_one_group_constrains_nothing(self):
        counts = np.array(
            [
                [[2.0, 2.0], [0.0, 0.0]],  # label 0 only in group 0
                [[1.0, 3.0], [2.0, 2.0]],  # label 1 in both
            ]
        )
        assert float(equalized_odds_gap_counts(counts)) == 0.25

    def test_no_common_label_is_nan_not_zero(self):
        counts = np.array(
            [
                [[2.0, 2.0], [0.0, 0.0]],
                [[0.0, 0.0], [1.0, 3.0]],
            ]
        )
        assert math.isnan(float(equalized_odds_gap_counts(counts)))

    def test_needs_a_label_axis(self):
        with pytest.raises(ValidationError, match="n_labels"):
            equalized_odds_gap_counts(np.array([[1.0, 2.0]]))


class TestCalibrationCellStats:
    def test_matches_mask_based_cell_means(self, rng):
        n = 300
        scores = rng.random(n)
        flags = (rng.random(n) < scores).astype(float)
        cells = rng.integers(0, 4, size=n)
        counts = np.bincount(cells, minlength=4).astype(float)
        positives = np.bincount(cells, weights=flags, minlength=4)
        sums = np.asarray(
            [scores[cells == c].sum() for c in range(4)]
        )
        mean_score, positive_rate, gap = calibration_cell_stats(
            counts, positives, sums
        )
        for c in range(4):
            member = scores[cells == c]
            assert mean_score[c] == member.mean()
            assert positive_rate[c] == flags[cells == c].mean()
            assert gap[c] == abs(positive_rate[c] - mean_score[c])

    def test_empty_cells_are_nan(self):
        mean_score, positive_rate, gap = calibration_cell_stats(
            [2.0, 0.0], [1.0, 0.0], [0.8, 0.0]
        )
        assert mean_score[0] == 0.4 and positive_rate[0] == 0.5
        assert np.isnan([mean_score[1], positive_rate[1], gap[1]]).all()

    def test_shape_and_sign_validation(self):
        with pytest.raises(ValidationError, match="share one shape"):
            calibration_cell_stats([1.0], [1.0, 2.0], [0.5])
        with pytest.raises(ValidationError, match="non-negative"):
            calibration_cell_stats([-1.0], [0.0], [0.0])


# ----------------------------------------------------------------------
# factorize_labels: the vectorised grouping shared by every adapter
# ----------------------------------------------------------------------
class TestFactorizeLabels:
    @settings(max_examples=150, deadline=None)
    @given(st.lists(st.sampled_from(GROUP_POOL), min_size=1, max_size=40))
    def test_levels_and_codes_reproduce_the_legacy_grouping(self, values):
        levels, codes = factorize_labels(values)
        # Same distinct levels as set(), in str order (ties — e.g. 1 vs
        # "1", both str "1" — are broken by first appearance).
        assert set(levels) == set(values)
        assert [str(level) for level in levels] == sorted(
            str(level) for level in levels
        )
        for value, code in zip(values, codes):
            assert value == levels[code]

    def test_hash_collapse_keeps_the_first_seen_representative(self):
        levels, codes = factorize_labels([True, 1, 1.0, "x"])
        assert levels == [True, "x"]  # 1 == 1.0 == True collapse
        assert codes.tolist() == [0, 0, 0, 1]

    def test_mixed_types_do_not_raise(self):
        # np.unique would raise '<' not supported between str and int here.
        levels, codes = factorize_labels([1, "F", None, 2.5, "F"])
        assert len(levels) == 4 and codes.tolist() == [0, 2, 3, 1, 2]


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------
class TestRegistry:
    BUILTINS = (
        "demographic_parity_difference",
        "demographic_parity_ratio",
        "demographic_parity_epsilon",
        "subgroup_fairness",
        "worst_case_gap",
        "worst_case_ratio",
        "alpha_intersectional",
    )

    def test_builtins_registered_in_order(self):
        assert registered_metrics()[:7] == self.BUILTINS
        for name in self.BUILTINS:
            metric = get_metric(name)
            assert metric.name == name and metric.description

    def test_ratio_metrics_declare_their_polarity(self):
        assert not get_metric("demographic_parity_ratio").higher_is_unfair
        assert not get_metric("worst_case_ratio").higher_is_unfair
        assert get_metric("worst_case_gap").higher_is_unfair

    def test_unknown_names_fail_listing_the_registry(self):
        with pytest.raises(ValidationError, match="demographic_parity_ratio"):
            get_metric("sentiment")
        with pytest.raises(ValidationError, match="unknown metric"):
            unregister_metric("sentiment")
        with pytest.raises(ValidationError, match="unknown metric"):
            metric_values(np.ones((2, 2)), ["sentiment"])

    def test_register_unregister_round_trip(self):
        metric = FairnessMetric(
            name="test_gap_squared",
            kernel=lambda counts: demographic_parity_difference_counts(
                counts
            )
            ** 2,
            description="squared gap (test)",
        )
        register_metric(metric)
        try:
            assert "test_gap_squared" in registered_metrics()
            counts = np.array([[1.0, 3.0], [3.0, 1.0]])
            assert float(get_metric("test_gap_squared")(counts)) == 0.25
            with pytest.raises(ValidationError, match="already registered"):
                register_metric(metric)
            register_metric(metric, overwrite=True)  # idempotent escape
        finally:
            assert unregister_metric("test_gap_squared") is metric
        assert "test_gap_squared" not in registered_metrics()

    def test_custom_metric_flows_through_the_sweep(self, hiring_table):
        register_metric(
            FairnessMetric(
                name="test_constant",
                kernel=lambda counts: np.full(counts.shape[:-2], 7.0),
                description="constant (test)",
            )
        )
        try:
            sweep = metric_subset_sweep(
                hiring_table, ["gender", "race"], "hired"
            )
            assert "test_constant" in sweep.metric_names
            assert all(
                row["test_constant"] == 7.0 for row in sweep.table.values()
            )
        finally:
            unregister_metric("test_constant")

    def test_contract_validation(self):
        with pytest.raises(ValidationError, match="name"):
            FairnessMetric(name=" ", kernel=lambda c: c, description="d")
        with pytest.raises(ValidationError, match="callable"):
            FairnessMetric(name="x", kernel=None, description="d")
        with pytest.raises(ValidationError, match="FairnessMetric"):
            register_metric(lambda counts: counts)

    def test_metric_values_selects_and_orders(self):
        counts = np.array([[1.0, 3.0], [3.0, 1.0]])
        values = metric_values(counts)
        assert tuple(values) == registered_metrics()
        subset = metric_values(
            counts, ["worst_case_gap", "demographic_parity_ratio"]
        )
        assert tuple(subset) == (
            "worst_case_gap",
            "demographic_parity_ratio",
        )
        assert float(subset["worst_case_gap"]) == 0.5


# ----------------------------------------------------------------------
# The sweep engine: one stacked pass == per-subset standalone calls
# ----------------------------------------------------------------------
class TestMetricSweepBitIdentity:
    def rows(self, n=240, seed=17):
        rng = np.random.default_rng(seed)
        return [
            (
                f"g{rng.integers(2)}",
                f"r{rng.integers(3)}",
                f"n{rng.integers(2)}",
                "yes" if rng.random() < 0.3 + 0.2 * rng.integers(2) else "no",
            )
            for _ in range(n)
        ]

    def test_every_subset_and_metric_matches_the_standalone_path(self):
        rows = self.rows()
        names = ["gender", "race", "nation"]
        table = Table.from_rows([*names, "hired"], rows)
        sweep = metric_subset_sweep(table, names, "hired")
        assert sweep.positive_outcome == "yes"
        assert len(sweep.table) == 2 ** len(names) - 1

        for subset in sweep.table:
            indices = [names.index(attr) for attr in subset]
            groups = [tuple(row[i] for i in indices) for row in rows]
            predictions = [row[-1] for row in rows]
            expected = {
                "demographic_parity_difference": (
                    demographic_parity_difference(
                        predictions, groups, positive="yes"
                    )
                ),
                "demographic_parity_ratio": demographic_parity_ratio(
                    predictions, groups, positive="yes"
                ),
                "demographic_parity_epsilon": demographic_parity_epsilon(
                    predictions, groups, positive="yes"
                ),
                "subgroup_fairness": max(
                    v.violation
                    for v in statistical_parity_subgroup_fairness(
                        predictions, groups, positive="yes"
                    )
                ),
            }
            for metric, value in expected.items():
                assert sweep.value(subset, metric) == value, (subset, metric)

    def test_sweep_accepts_a_metric_subset_and_rejects_unknowns(self):
        table = Table.from_rows(
            ["gender", "hired"],
            [("F", "yes"), ("F", "no"), ("M", "yes"), ("M", "yes")],
        )
        sweep = metric_subset_sweep(
            table, ["gender"], "hired", metrics=["worst_case_gap"]
        )
        assert sweep.metric_names == ("worst_case_gap",)
        assert sweep.value("gender", "worst_case_gap") == 0.5
        with pytest.raises(ValidationError, match="not swept"):
            sweep.value("gender", "demographic_parity_ratio")
        with pytest.raises(ValidationError, match="unknown metric"):
            metric_subset_sweep(table, ["gender"], "hired", metrics=["ghost"])
