"""Tests for repro.tabular.csv_io."""

import pytest

from repro.exceptions import CsvParseError, SchemaError
from repro.tabular.csv_io import read_csv, read_csv_text, write_csv
from repro.tabular.schema import Field, Schema
from repro.tabular.table import Table


class TestReadCsvText:
    def test_header_and_inference(self):
        table = read_csv_text("a,b\n1,x\n2,y\n")
        assert table.column("a").kind == "numeric"
        assert table.column("b").to_list() == ["x", "y"]

    def test_whitespace_stripped(self):
        table = read_csv_text("a, b\n 1 , x \n")
        assert table.column_names == ["a", "b"]
        assert table.column("b").to_list() == ["x"]

    def test_no_header_with_names(self):
        table = read_csv_text("1,x\n", header=False, column_names=["n", "c"])
        assert table.column("n").values.tolist() == [1.0]

    def test_no_header_without_names_rejected(self):
        with pytest.raises(CsvParseError):
            read_csv_text("1,2\n", header=False)

    def test_schema_parsing(self):
        schema = Schema(
            [Field("n", "numeric"), Field("c", "categorical", levels=("x", "y"))]
        )
        table = read_csv_text("n,c\n3,y\n", schema=schema)
        assert table.column("c").levels == ("x", "y")

    def test_schema_violation(self):
        schema = Schema([Field("n", "numeric")])
        with pytest.raises(SchemaError):
            read_csv_text("n\nabc\n", schema=schema)

    def test_ragged_row_rejected(self):
        with pytest.raises(CsvParseError, match="cells"):
            read_csv_text("a,b\n1\n")

    def test_empty_rejected(self):
        with pytest.raises(CsvParseError):
            read_csv_text("\n\n")

    def test_header_only_rejected(self):
        with pytest.raises(CsvParseError, match="no data rows"):
            read_csv_text("a,b\n")

    def test_comment_lines_skipped(self):
        table = read_csv_text(
            "|comment\na\n1\n", skip_comment_prefix="|"
        )
        assert table.column("a").values.tolist() == [1.0]

    def test_missing_token_replacement(self):
        table = read_csv_text(
            "c\n?\nx\n", missing_token="?", missing_replacement="Unknown"
        )
        assert table.column("c").to_list() == ["Unknown", "x"]

    def test_missing_token_kept_by_default(self):
        table = read_csv_text("c\n?\nx\n")
        assert "?" in table.column("c").to_list()

    def test_blank_lines_ignored(self):
        table = read_csv_text("a\n\n1\n\n2\n")
        assert table.n_rows == 2


class TestRoundtrip:
    def test_write_then_read(self, tmp_path, numeric_table):
        path = tmp_path / "data.csv"
        write_csv(numeric_table, path)
        back = read_csv(path)
        assert back.to_dict() == numeric_table.to_dict()

    def test_integral_floats_written_as_ints(self, tmp_path):
        table = Table.from_dict({"x": [1.0, 2.5]})
        path = tmp_path / "data.csv"
        write_csv(table, path)
        content = path.read_text()
        assert "1\n" in content.replace("\r", "")
        assert "2.5" in content

    def test_adult_style_file(self, tmp_path):
        path = tmp_path / "adult.data"
        path.write_text(
            "39, State-gov, 77516, Bachelors, 13, <=50K\n"
            "50, ?, 83311, HS-grad, 9, >50K.\n"
        )
        table = read_csv(
            path,
            header=False,
            column_names=["age", "workclass", "fnlwgt", "edu", "edu_num", "income"],
        )
        assert table.n_rows == 2
        assert table.column("age").values.tolist() == [39.0, 50.0]
        assert "?" in table.column("workclass").to_list()
