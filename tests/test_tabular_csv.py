"""Tests for repro.tabular.csv_io."""

import pytest

from repro.exceptions import CsvParseError, SchemaError
from repro.tabular.csv_io import read_csv, read_csv_text, write_csv
from repro.tabular.schema import Field, Schema
from repro.tabular.table import Table


class TestReadCsvText:
    def test_header_and_inference(self):
        table = read_csv_text("a,b\n1,x\n2,y\n")
        assert table.column("a").kind == "numeric"
        assert table.column("b").to_list() == ["x", "y"]

    def test_whitespace_stripped(self):
        table = read_csv_text("a, b\n 1 , x \n")
        assert table.column_names == ["a", "b"]
        assert table.column("b").to_list() == ["x"]

    def test_no_header_with_names(self):
        table = read_csv_text("1,x\n", header=False, column_names=["n", "c"])
        assert table.column("n").values.tolist() == [1.0]

    def test_no_header_without_names_rejected(self):
        with pytest.raises(CsvParseError):
            read_csv_text("1,2\n", header=False)

    def test_schema_parsing(self):
        schema = Schema(
            [Field("n", "numeric"), Field("c", "categorical", levels=("x", "y"))]
        )
        table = read_csv_text("n,c\n3,y\n", schema=schema)
        assert table.column("c").levels == ("x", "y")

    def test_schema_violation(self):
        schema = Schema([Field("n", "numeric")])
        with pytest.raises(SchemaError):
            read_csv_text("n\nabc\n", schema=schema)

    def test_ragged_row_rejected(self):
        with pytest.raises(CsvParseError, match="cells"):
            read_csv_text("a,b\n1\n")

    def test_empty_rejected(self):
        with pytest.raises(CsvParseError):
            read_csv_text("\n\n")

    def test_header_only_rejected(self):
        with pytest.raises(CsvParseError, match="no data rows"):
            read_csv_text("a,b\n")

    def test_comment_lines_skipped(self):
        table = read_csv_text(
            "|comment\na\n1\n", skip_comment_prefix="|"
        )
        assert table.column("a").values.tolist() == [1.0]

    def test_missing_token_replacement(self):
        table = read_csv_text(
            "c\n?\nx\n", missing_token="?", missing_replacement="Unknown"
        )
        assert table.column("c").to_list() == ["Unknown", "x"]

    def test_missing_token_kept_by_default(self):
        table = read_csv_text("c\n?\nx\n")
        assert "?" in table.column("c").to_list()

    def test_blank_lines_ignored(self):
        table = read_csv_text("a\n\n1\n\n2\n")
        assert table.n_rows == 2


class TestRoundtrip:
    def test_write_then_read(self, tmp_path, numeric_table):
        path = tmp_path / "data.csv"
        write_csv(numeric_table, path)
        back = read_csv(path)
        assert back.to_dict() == numeric_table.to_dict()

    def test_integral_floats_written_as_ints(self, tmp_path):
        table = Table.from_dict({"x": [1.0, 2.5]})
        path = tmp_path / "data.csv"
        write_csv(table, path)
        content = path.read_text()
        assert "1\n" in content.replace("\r", "")
        assert "2.5" in content

    def test_adult_style_file(self, tmp_path):
        path = tmp_path / "adult.data"
        path.write_text(
            "39, State-gov, 77516, Bachelors, 13, <=50K\n"
            "50, ?, 83311, HS-grad, 9, >50K.\n"
        )
        table = read_csv(
            path,
            header=False,
            column_names=["age", "workclass", "fnlwgt", "edu", "edu_num", "income"],
        )
        assert table.n_rows == 2
        assert table.column("age").values.tolist() == [39.0, 50.0]
        assert "?" in table.column("workclass").to_list()


class TestIterCsvChunks:
    @pytest.fixture
    def csv_path(self, tmp_path):
        path = tmp_path / "stream.csv"
        lines = ["g,r,y"]
        for index in range(25):
            lines.append(f"g{index % 2},r{index % 3},y{index % 2}")
        path.write_text("\n".join(lines) + "\n")
        return path

    def test_chunks_cover_all_rows_in_order(self, csv_path):
        from repro.tabular.csv_io import iter_csv_chunks

        chunks = list(iter_csv_chunks(csv_path, chunk_rows=10))
        assert [chunk.n_rows for chunk in chunks] == [10, 10, 5]
        streamed = [
            row
            for chunk in chunks
            for row in zip(*(chunk.column(n).to_list() for n in ["g", "r", "y"]))
        ]
        table = read_csv(csv_path)
        assert streamed == list(
            zip(*(table.column(n).to_list() for n in ["g", "r", "y"]))
        )

    def test_columns_projection(self, csv_path):
        from repro.tabular.csv_io import iter_csv_chunks

        chunk = next(iter(iter_csv_chunks(csv_path, chunk_rows=5, columns=["y", "g"])))
        assert chunk.column_names == ["y", "g"]

    def test_unknown_column_rejected(self, csv_path):
        from repro.tabular.csv_io import iter_csv_chunks

        with pytest.raises(CsvParseError):
            next(iter(iter_csv_chunks(csv_path, columns=["ghost"])))

    def test_all_columns_categorical_without_schema(self, tmp_path):
        from repro.tabular.csv_io import iter_csv_chunks

        path = tmp_path / "mixed.csv"
        path.write_text("age,label\n1,a\n2,b\n")
        chunk = next(iter(iter_csv_chunks(path)))
        assert chunk.column("age").kind == "categorical"

    def test_schema_controls_kinds(self, tmp_path):
        from repro.tabular.csv_io import iter_csv_chunks

        path = tmp_path / "mixed.csv"
        path.write_text("age,label\n1,a\n2,b\n")
        schema = Schema([Field("age", "numeric")])
        chunk = next(iter(iter_csv_chunks(path, schema=schema)))
        assert chunk.column("age").kind == "numeric"
        assert chunk.column("label").kind == "categorical"

    def test_empty_file_raises_after_exhaustion(self, tmp_path):
        from repro.tabular.csv_io import iter_csv_chunks

        path = tmp_path / "empty.csv"
        path.write_text("g,r,y\n")
        with pytest.raises(CsvParseError):
            list(iter_csv_chunks(path))

    def test_ragged_row_rejected(self, tmp_path):
        from repro.tabular.csv_io import iter_csv_chunks

        path = tmp_path / "ragged.csv"
        path.write_text("g,y\na,1\nb\n")
        with pytest.raises(CsvParseError):
            list(iter_csv_chunks(path))

    def test_bad_chunk_rows_rejected(self, csv_path):
        from repro.tabular.csv_io import iter_csv_chunks

        with pytest.raises(CsvParseError):
            list(iter_csv_chunks(csv_path, chunk_rows=0))
