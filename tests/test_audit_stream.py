"""Tests for repro.audit.stream (the sliding-window streaming auditor)."""

import numpy as np
import pytest

from repro.audit.auditor import FairnessAuditor
from repro.audit.stream import StreamingAuditor
from repro.core.empirical import dataset_edf
from repro.core.estimators import MLEEstimator
from repro.exceptions import CheckpointError, ValidationError
from repro.tabular.table import Table

NAMES = ["gender", "race", "hired"]


def stream_rows(n=600, seed=7):
    rng = np.random.default_rng(seed)
    genders = ["F", "M"]
    races = ["X", "Y", "Z"]
    outcomes = ["no", "yes"]
    return [
        (
            genders[rng.integers(2)],
            races[rng.integers(3)],
            outcomes[rng.integers(2)],
        )
        for _ in range(n)
    ]


def window_reference_epsilon(rows, estimator=None):
    table = Table.from_rows(NAMES, rows)
    return dataset_edf(
        table, protected=["gender", "race"], outcome="hired", estimator=estimator
    ).epsilon


class TestWindowedEpsilon:
    @pytest.mark.parametrize("estimator", [None, 1.0])
    def test_matches_full_recompute_after_every_chunk(self, estimator):
        rows = stream_rows()
        auditor = StreamingAuditor(
            ["gender", "race"], "hired", estimator=estimator, window=150
        )
        for start in range(0, len(rows), 47):
            chunk = rows[start : start + 47]
            epsilon = auditor.observe(chunk)
            upto = min(start + 47, len(rows))
            window = rows[max(0, upto - 150) : upto]
            assert epsilon == window_reference_epsilon(window, estimator)
        assert auditor.rows_seen == len(rows)
        assert auditor.n_window_rows == 150

    def test_cumulative_mode_never_evicts(self):
        rows = stream_rows(200)
        auditor = StreamingAuditor(["gender", "race"], "hired")
        auditor.observe(rows)
        assert auditor.window is None
        assert auditor.n_window_rows == len(rows)
        assert auditor.epsilon() == window_reference_epsilon(rows)

    def test_empty_stream_has_zero_epsilon(self):
        auditor = StreamingAuditor(["gender"], "hired", window=10)
        assert auditor.epsilon() == 0.0
        assert auditor.observe([]) == 0.0

    def test_single_outcome_level_is_vacuous(self):
        auditor = StreamingAuditor(["gender"], "hired")
        assert auditor.observe([("A", "yes"), ("B", "yes")]) == 0.0

    def test_window_must_be_positive(self):
        with pytest.raises(ValidationError):
            StreamingAuditor(["gender"], "hired", window=0)


class TestObserveTable:
    def test_observe_table_matches_observe_rows(self, hiring_table):
        rows = list(
            zip(*(hiring_table.column(name).to_list() for name in NAMES))
        )
        by_rows = StreamingAuditor(["gender", "race"], "hired")
        by_table = StreamingAuditor(["gender", "race"], "hired")
        eps_rows = by_rows.observe(rows)
        eps_table = by_table.observe_table(hiring_table)
        assert eps_rows == eps_table
        assert by_rows.n_window_rows == by_table.n_window_rows

    def test_observe_table_windowed_evicts(self, hiring_table):
        auditor = StreamingAuditor(["gender", "race"], "hired", window=10)
        auditor.observe_table(hiring_table)
        assert auditor.n_window_rows == 10
        assert auditor.rows_seen == hiring_table.n_rows

    def test_extra_columns_are_ignored(self, hiring_table):
        extra = hiring_table.with_column(
            hiring_table.column("gender").rename("shadow")
        )
        auditor = StreamingAuditor(["gender", "race"], "hired")
        auditor.observe_table(extra)
        assert auditor.n_window_rows == hiring_table.n_rows


class TestFullAudit:
    def test_audit_matches_fairness_auditor_bitwise(self, hiring_table):
        rows = list(
            zip(*(hiring_table.column(name).to_list() for name in NAMES))
        )
        streaming = StreamingAuditor(
            ["gender", "race"], "hired", posterior_samples=25, seed=11
        )
        streaming.observe(rows)
        reference = FairnessAuditor(
            ["gender", "race"], "hired", posterior_samples=25, seed=11
        ).audit_dataset(hiring_table)
        audit = streaming.audit()
        assert audit.sweep.full_epsilon == reference.sweep.full_epsilon
        for subset, result in reference.sweep.results.items():
            assert audit.sweep.results[subset].epsilon == result.epsilon
        assert audit.posterior.mean == reference.posterior.mean
        assert audit.posterior.quantiles == reference.posterior.quantiles
        assert audit.to_text() == reference.to_text()

    def test_repeated_audits_are_deterministic(self, hiring_table):
        auditor = StreamingAuditor(
            ["gender", "race"], "hired", posterior_samples=10, seed=2
        )
        auditor.observe_table(hiring_table)
        assert auditor.audit().to_text() == auditor.audit().to_text()


class TestStreamingMetricValues:
    def test_all_nan_before_any_data(self):
        from repro.core.metrics import registered_metrics

        auditor = StreamingAuditor(["gender"], "hired", window=10)
        values = auditor.metric_values()
        assert tuple(values) == registered_metrics()
        assert all(np.isnan(value) for value in values.values())

    def test_single_outcome_level_is_undefined_not_wrong(self):
        auditor = StreamingAuditor(["gender"], "hired")
        auditor.observe([("A", "yes"), ("B", "yes")])
        values = auditor.metric_values(["demographic_parity_ratio"])
        assert np.isnan(values["demographic_parity_ratio"])

    def test_unknown_names_fail_loudly_even_when_empty(self):
        auditor = StreamingAuditor(["gender"], "hired")
        with pytest.raises(ValidationError, match="unknown metric"):
            auditor.metric_values(["sentiment"])
        auditor.observe([("A", "yes"), ("B", "no")])
        with pytest.raises(ValidationError, match="unknown metric"):
            auditor.metric_values(["sentiment"])

    def test_windowed_values_match_the_standalone_metrics(self):
        """Sliding-window metric_values == repro.metrics on the window's
        rows, bitwise, through updates *and* retractions."""
        from repro.metrics import (
            demographic_parity_difference,
            demographic_parity_epsilon,
            demographic_parity_ratio,
            statistical_parity_subgroup_fairness,
        )

        rows = stream_rows(470)
        auditor = StreamingAuditor(["gender", "race"], "hired", window=150)
        for start in range(0, len(rows), 80):
            auditor.observe(rows[start : start + 80])
            upto = min(start + 80, len(rows))
            window = rows[max(0, upto - 150) : upto]
            groups = [(gender, race) for gender, race, _ in window]
            outcomes = [outcome for *_, outcome in window]
            values = auditor.metric_values()
            # The canonical snapshot puts "yes" last: the positive level.
            assert values["demographic_parity_difference"] == (
                demographic_parity_difference(outcomes, groups, "yes")
            )
            assert values["demographic_parity_ratio"] == (
                demographic_parity_ratio(outcomes, groups, "yes")
            )
            assert values["demographic_parity_epsilon"] == (
                demographic_parity_epsilon(outcomes, groups, "yes")
            )
            assert values["subgroup_fairness"] == max(
                v.violation
                for v in statistical_parity_subgroup_fairness(
                    outcomes, groups, "yes"
                )
            )

    def test_matches_the_full_subset_sweep_engine(self):
        from repro.core.sweep import metric_subset_sweep

        rows = stream_rows(300, seed=21)
        auditor = StreamingAuditor(["gender", "race"], "hired")
        auditor.observe(rows)
        sweep = metric_subset_sweep(
            Table.from_rows(NAMES, rows), ["gender", "race"], "hired"
        )
        assert auditor.metric_values() == sweep.full


class TestIncrementalCacheCorrectness:
    def test_dirty_rows_only_is_bitwise_exact(self):
        """Interleaved updates/evictions across schema growth stay exact."""
        rows = stream_rows(300, seed=12)
        auditor = StreamingAuditor(["gender", "race"], "hired", window=80)
        # Feed one row at a time so the dirty set is minimal every step.
        for index, row in enumerate(rows):
            epsilon = auditor.observe([row])
            window = rows[max(0, index + 1 - 80) : index + 1]
            if len({r[-1] for r in window}) < 2:
                # One observed outcome level: vacuously fair mid-stream
                # (the one-shot path cannot even express this window).
                assert epsilon == 0.0
            else:
                assert epsilon == window_reference_epsilon(window)

    def test_user_defined_estimator_falls_back_to_full_recompute(self):
        class ShadowMLE(MLEEstimator):
            """Same numbers, but no row-wise promise (subclass)."""

        rows = stream_rows(120, seed=3)
        auditor = StreamingAuditor(
            ["gender", "race"], "hired", estimator=ShadowMLE(), window=50
        )
        for start in range(0, len(rows), 30):
            chunk = rows[start : start + 30]
            epsilon = auditor.observe(chunk)
            upto = min(start + 30, len(rows))
            window = rows[max(0, upto - 50) : upto]
            assert epsilon == window_reference_epsilon(window)


class TestCheckpointing:
    def test_state_roundtrip_resumes_stream(self):
        rows = stream_rows(200, seed=5)
        auditor = StreamingAuditor(["gender", "race"], "hired", window=60)
        auditor.observe(rows[:150])
        state = auditor.state_dict()

        resumed = StreamingAuditor(["gender", "race"], "hired", window=60)
        resumed.restore(state)
        assert resumed.epsilon() == auditor.epsilon()
        assert resumed.observe(rows[150:]) == auditor.observe(rows[150:])
        assert resumed.rows_seen == auditor.rows_seen

    def test_window_mismatch_rejected(self):
        auditor = StreamingAuditor(["gender"], "hired", window=5)
        auditor.observe([("A", "yes"), ("B", "no")])
        state = auditor.state_dict()
        other = StreamingAuditor(["gender"], "hired", window=9)
        with pytest.raises(ValidationError):
            other.restore(state)

    def test_live_stale_seq_is_loud_and_replay_skips(self):
        auditor = StreamingAuditor(["gender"], "hired")
        auditor.observe([("g0", "y1"), ("g1", "y0")], seq=1)
        assert auditor.applied_seq == 1
        before = auditor.epsilon()
        # Replay of an already-applied sequence is an idempotent no-op.
        assert auditor.observe([("g0", "y1")], seq=1, replay=True) == before
        assert auditor.rows_seen == 2
        # A *live* batch with a stale sequence means the WAL counter fell
        # behind the checkpoint cursor; silently skipping would drop an
        # acknowledged batch.
        with pytest.raises(CheckpointError, match="applied cursor"):
            auditor.observe([("g0", "y1")], seq=1)
        assert auditor.rows_seen == 2


class TestShardedPipeline:
    def test_merge_then_audit_equals_single_stream(self):
        rows = stream_rows(240, seed=9)
        shards = [
            StreamingAuditor(["gender", "race"], "hired") for _ in range(3)
        ]
        for index, row in enumerate(rows):
            shards[index % 3].observe([row])
        merged = shards[0].accumulator.merge(
            shards[1].accumulator
        ).merge(shards[2].accumulator)

        single = StreamingAuditor(["gender", "race"], "hired")
        single.observe(rows)
        assert np.array_equal(
            merged.snapshot().counts, single.accumulator.snapshot().counts
        )
        auditor = FairnessAuditor(["gender", "race"], "hired")
        assert (
            auditor.audit_contingency(merged.snapshot()).to_text()
            == auditor.audit_dataset(Table.from_rows(NAMES, rows)).to_text()
        )


def test_audit_contingency_rejects_mismatched_factors(hiring_table):
    from repro.tabular.crosstab import ContingencyTable

    contingency = ContingencyTable.from_table(hiring_table, ["gender"], "hired")
    auditor = FairnessAuditor(["gender", "race"], "hired")
    with pytest.raises(ValidationError):
        auditor.audit_contingency(contingency)
