"""Tests for repro.learn.preprocessing, metrics, and model_selection."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.learn.metrics import (
    accuracy,
    confusion_matrix,
    error_rate,
    f1_score,
    log_loss,
    precision,
    recall,
)
from repro.learn.model_selection import KFold, train_test_split
from repro.learn.preprocessing import StandardScaler, TableVectorizer
from repro.tabular.table import Table


class TestStandardScaler:
    def test_zero_mean_unit_variance(self, rng):
        X = rng.normal(5.0, 3.0, size=(500, 2))
        Z = StandardScaler().fit_transform(X)
        assert Z.mean(axis=0) == pytest.approx([0.0, 0.0], abs=1e-9)
        assert Z.std(axis=0) == pytest.approx([1.0, 1.0], abs=1e-9)

    def test_constant_column_not_scaled(self):
        X = np.array([[1.0], [1.0], [1.0]])
        Z = StandardScaler().fit_transform(X)
        assert Z.tolist() == [[0.0], [0.0], [0.0]]

    def test_transform_uses_training_statistics(self):
        scaler = StandardScaler().fit(np.array([[0.0], [2.0]]))
        assert scaler.transform(np.array([[4.0]]))[0, 0] == pytest.approx(3.0)

    def test_unfitted_rejected(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.zeros((1, 1)))

    def test_width_checked(self):
        scaler = StandardScaler().fit(np.zeros((2, 2)))
        with pytest.raises(ValidationError):
            scaler.transform(np.zeros((2, 3)))


class TestTableVectorizer:
    @pytest.fixture
    def table(self) -> Table:
        return Table.from_dict(
            {
                "age": [20.0, 30.0, 40.0],
                "city": ["x", "y", "x"],
                "label": ["n", "p", "n"],
            }
        )

    def test_auto_selection_excludes(self, table):
        vectorizer = TableVectorizer(exclude=["label"])
        X = vectorizer.fit_transform(table)
        assert vectorizer.numeric_columns_ == ["age"]
        assert vectorizer.categorical_columns_ == ["city"]
        # age + one-hot city with first level dropped -> 2 features.
        assert X.shape == (3, 2)

    def test_feature_names(self, table):
        vectorizer = TableVectorizer(exclude=["label"])
        vectorizer.fit(table)
        assert vectorizer.feature_names_ == ["age", "city=y"]

    def test_drop_first_false(self, table):
        vectorizer = TableVectorizer(exclude=["label"], drop_first=False)
        X = vectorizer.fit_transform(table)
        assert X.shape == (3, 3)

    def test_one_hot_values(self, table):
        vectorizer = TableVectorizer(
            numeric=[], categorical=["city"], drop_first=False
        )
        X = vectorizer.fit_transform(table)
        assert X.tolist() == [[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]]

    def test_standardization_applied(self, table):
        vectorizer = TableVectorizer(numeric=["age"], categorical=[])
        X = vectorizer.fit_transform(table)
        assert X[:, 0].mean() == pytest.approx(0.0, abs=1e-12)

    def test_no_standardize(self, table):
        vectorizer = TableVectorizer(
            numeric=["age"], categorical=[], standardize=False
        )
        X = vectorizer.fit_transform(table)
        assert X[:, 0].tolist() == [20.0, 30.0, 40.0]

    def test_transform_new_table_with_subset_levels(self, table):
        vectorizer = TableVectorizer(exclude=["label"]).fit(table)
        new = Table.from_dict(
            {"age": [50.0], "city": ["y"], "label": ["p"]}
        )
        X = vectorizer.transform(new)
        assert X.shape == (1, 2)
        assert X[0, 1] == 1.0  # city=y

    def test_overlap_rejected(self, table):
        with pytest.raises(ValidationError):
            TableVectorizer(numeric=["age"], categorical=["age"]).fit(table)

    def test_unfitted_rejected(self, table):
        with pytest.raises(NotFittedError):
            TableVectorizer().transform(table)

    def test_no_features_rejected(self):
        table = Table.from_dict({"label": ["a", "b"]})
        with pytest.raises(ValidationError):
            TableVectorizer(exclude=["label"]).fit_transform(table)


class TestMetrics:
    def test_accuracy_and_error(self):
        assert accuracy(["a", "b"], ["a", "a"]) == 0.5
        assert error_rate(["a", "b"], ["a", "a"]) == 0.5
        assert error_rate(["a", "b"], ["a", "a"], percent=True) == 50.0

    def test_confusion_matrix(self):
        matrix, labels = confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1])
        assert labels == [0, 1]
        assert matrix.tolist() == [[1, 1], [0, 2]]

    def test_precision_recall_f1(self):
        y_true = [1, 1, 0, 0, 1]
        y_pred = [1, 0, 1, 0, 1]
        assert precision(y_true, y_pred, positive=1) == pytest.approx(2 / 3)
        assert recall(y_true, y_pred, positive=1) == pytest.approx(2 / 3)
        assert f1_score(y_true, y_pred, positive=1) == pytest.approx(2 / 3)

    def test_degenerate_precision(self):
        assert precision([0, 0], [0, 0], positive=1) == 0.0
        assert recall([0, 0], [1, 1], positive=1) == 0.0
        assert f1_score([0, 0], [0, 0], positive=1) == 0.0

    def test_log_loss(self):
        probs = np.array([[0.9, 0.1], [0.2, 0.8]])
        value = log_loss(["a", "b"], probs, classes=["a", "b"])
        assert value == pytest.approx(-(np.log(0.9) + np.log(0.8)) / 2)

    def test_log_loss_clipping(self):
        probs = np.array([[1.0, 0.0]])
        assert np.isfinite(log_loss(["b"], probs, classes=["a", "b"]))

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            accuracy([1], [1, 2])


class TestTrainTestSplit:
    def test_sizes(self, rng):
        table = Table.from_dict({"x": list(range(100))}, categorical=["x"])
        train, test = train_test_split(table, test_size=0.25, seed=0)
        assert test.n_rows == 25
        assert train.n_rows == 75

    def test_partition(self):
        table = Table.from_dict({"x": list(range(20))}, categorical=["x"])
        train, test = train_test_split(table, test_size=0.3, seed=1)
        combined = sorted(train.column("x").to_list() + test.column("x").to_list())
        assert combined == list(range(20))

    def test_deterministic(self):
        table = Table.from_dict({"x": list(range(30))}, categorical=["x"])
        first = train_test_split(table, seed=5)[1].column("x").to_list()
        second = train_test_split(table, seed=5)[1].column("x").to_list()
        assert first == second

    def test_stratified_preserves_proportions(self):
        table = Table.from_dict(
            {"g": ["a"] * 80 + ["b"] * 20, "v": list(range(100))},
        )
        train, test = train_test_split(table, test_size=0.25, seed=0, stratify="g")
        counts = test.value_counts("g")
        assert counts[("a")] == 20
        assert counts[("b")] == 5

    def test_invalid_fraction(self):
        table = Table.from_dict({"x": [1.0, 2.0]})
        with pytest.raises(ValidationError):
            train_test_split(table, test_size=1.0)


class TestKFold:
    def test_folds_partition_rows(self):
        folds = list(KFold(n_splits=4, seed=0).split(20))
        assert len(folds) == 4
        all_test = sorted(
            index for _, test in folds for index in test.tolist()
        )
        assert all_test == list(range(20))

    def test_train_test_disjoint(self):
        for train, test in KFold(n_splits=3, seed=0).split(9):
            assert set(train.tolist()).isdisjoint(test.tolist())

    def test_too_few_rows(self):
        with pytest.raises(ValidationError):
            list(KFold(n_splits=5).split(3))

    def test_cross_validate(self, rng):
        from repro.learn.logistic_regression import LogisticRegression

        X = rng.normal(size=(100, 1))
        y = (X[:, 0] > 0).astype(int)
        scores = KFold(n_splits=5, seed=0).cross_validate(
            lambda: LogisticRegression(), X, y
        )
        assert len(scores) == 5
        assert min(scores) > 0.8

    def test_min_splits(self):
        with pytest.raises(ValidationError):
            KFold(n_splits=1)
