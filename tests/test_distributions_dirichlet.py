"""Tests for repro.distributions.dirichlet."""

import numpy as np
import pytest

from repro.distributions.dirichlet import (
    Dirichlet,
    DirichletMultinomial,
    GroupOutcomePosterior,
)
from repro.exceptions import ValidationError


class TestDirichlet:
    def test_mean(self):
        assert Dirichlet([1.0, 3.0]).mean().tolist() == [0.25, 0.75]

    def test_symmetric(self):
        dirichlet = Dirichlet.symmetric(2.0, 4)
        assert dirichlet.alpha.tolist() == [2.0] * 4

    def test_samples_are_distributions(self):
        samples = Dirichlet([1.0, 2.0, 3.0]).sample(100, seed=0)
        assert samples.shape == (100, 3)
        assert np.allclose(samples.sum(axis=1), 1.0)
        assert (samples >= 0).all()

    def test_sample_mean_matches(self):
        dirichlet = Dirichlet([5.0, 15.0])
        samples = dirichlet.sample(50_000, seed=1)
        assert samples.mean(axis=0) == pytest.approx(
            dirichlet.mean(), abs=0.005
        )

    def test_validation(self):
        with pytest.raises(ValidationError):
            Dirichlet([1.0])  # too short
        with pytest.raises(ValidationError):
            Dirichlet([1.0, 0.0])  # non-positive
        with pytest.raises(ValidationError):
            Dirichlet.symmetric(-1.0, 3)


class TestDirichletMultinomial:
    def test_posterior_mean_is_equation_seven(self):
        model = DirichletMultinomial([3.0, 1.0], prior_concentration=1.0)
        assert model.posterior_mean().tolist() == [4.0 / 6.0, 2.0 / 6.0]

    def test_posterior_alpha(self):
        model = DirichletMultinomial([2.0, 5.0], prior_concentration=0.5)
        assert model.posterior.alpha.tolist() == [2.5, 5.5]

    def test_sampling(self):
        samples = DirichletMultinomial([10.0, 10.0]).sample_probabilities(
            20, seed=0
        )
        assert samples.shape == (20, 2)

    def test_validation(self):
        with pytest.raises(ValidationError):
            DirichletMultinomial([-1.0, 1.0])
        with pytest.raises(ValidationError):
            DirichletMultinomial([1.0, 1.0], prior_concentration=0.0)


class TestGroupOutcomePosterior:
    def test_posterior_mean_matrix(self):
        posterior = GroupOutcomePosterior(
            np.array([[3.0, 1.0], [0.0, 0.0]]), prior_concentration=1.0
        )
        matrix = posterior.posterior_mean_matrix()
        assert matrix[0].tolist() == [4.0 / 6.0, 2.0 / 6.0]
        assert np.isnan(matrix[1]).all()

    def test_observed_mask(self):
        posterior = GroupOutcomePosterior(np.array([[1.0, 0.0], [0.0, 0.0]]))
        assert posterior.observed_mask().tolist() == [True, False]

    def test_sample_matrix_shape(self):
        posterior = GroupOutcomePosterior(np.array([[5.0, 5.0], [1.0, 9.0]]))
        sample = posterior.sample_matrix(seed=0)
        assert sample.shape == (2, 2)
        assert np.allclose(sample.sum(axis=1), 1.0)

    def test_sample_matrices(self):
        posterior = GroupOutcomePosterior(np.array([[5.0, 5.0]]))
        stack = posterior.sample_matrices(7, seed=0)
        assert stack.shape == (7, 1, 2)

    def test_empty_group_stays_nan_in_samples(self):
        posterior = GroupOutcomePosterior(np.array([[5.0, 5.0], [0.0, 0.0]]))
        sample = posterior.sample_matrix(seed=0)
        assert np.isnan(sample[1]).all()

    def test_validation(self):
        with pytest.raises(ValidationError):
            GroupOutcomePosterior(np.array([1.0, 2.0]))  # not 2-D
        with pytest.raises(ValidationError):
            GroupOutcomePosterior(np.array([[1.0, -2.0]]))
