"""Tests for repro.learn.logistic_regression."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.learn.logistic_regression import (
    LogisticRegression,
    log_sigmoid,
    sigmoid,
)


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(np.array([0.0]))[0] == 0.5

    def test_symmetry(self):
        z = np.array([1.7])
        assert sigmoid(z)[0] + sigmoid(-z)[0] == pytest.approx(1.0)

    def test_extreme_values_stable(self):
        values = sigmoid(np.array([-1000.0, 1000.0]))
        assert values[0] == 0.0
        assert values[1] == 1.0

    def test_log_sigmoid_matches(self):
        z = np.array([-3.0, 0.0, 3.0])
        assert log_sigmoid(z) == pytest.approx(np.log(sigmoid(z)))

    def test_log_sigmoid_no_overflow(self):
        assert log_sigmoid(np.array([-1000.0]))[0] == pytest.approx(-1000.0)


class TestFitting:
    def test_separable_data_classified_perfectly(self):
        X = np.array([[0.0], [1.0], [10.0], [11.0]])
        y = ["a", "a", "b", "b"]
        model = LogisticRegression(l2=1e-6).fit(X, y)
        assert model.predict(X).tolist() == y
        assert model.score(X, y) == 1.0

    def test_recovers_known_coefficients(self, rng):
        """With abundant data the MLE approaches the true parameters."""
        n = 40_000
        X = rng.normal(size=(n, 2))
        logits = 1.5 * X[:, 0] - 2.0 * X[:, 1] + 0.5
        y = (rng.random(n) < sigmoid(logits)).astype(int)
        model = LogisticRegression(l2=1e-8).fit(X, y)
        assert model.coef_[0] == pytest.approx(1.5, abs=0.1)
        assert model.coef_[1] == pytest.approx(-2.0, abs=0.1)
        assert model.intercept_ == pytest.approx(0.5, abs=0.1)

    def test_gradient_matches_numeric(self, rng):
        """Analytic gradient agrees with finite differences."""
        from scipy import optimize

        X = rng.normal(size=(60, 3))
        y = (rng.random(60) < 0.5).astype(int)
        model = LogisticRegression(l2=0.1)
        codes = y.astype(float)
        design = np.column_stack([np.ones(60), X])

        def objective(w):
            z = design @ w
            nll = -np.sum(codes * log_sigmoid(z) + (1 - codes) * log_sigmoid(-z))
            mask = np.ones(4)
            mask[0] = 0.0
            return (nll + 0.05 * np.sum((w * mask) ** 2)) / 60

        def gradient(w):
            z = design @ w
            mask = np.ones(4)
            mask[0] = 0.0
            return (design.T @ (sigmoid(z) - codes) + 0.1 * w * mask) / 60

        w0 = rng.normal(size=4)
        error = optimize.check_grad(objective, gradient, w0)
        assert error < 1e-5

    def test_l2_shrinks_coefficients(self, rng):
        X = rng.normal(size=(200, 2))
        y = (X[:, 0] + rng.normal(size=200) > 0).astype(int)
        loose = LogisticRegression(l2=1e-8).fit(X, y)
        tight = LogisticRegression(l2=100.0).fit(X, y)
        assert np.linalg.norm(tight.coef_) < np.linalg.norm(loose.coef_)

    def test_sample_weights(self):
        X = np.array([[0.0], [1.0], [0.5]])
        y = [0, 1, 1]
        weights = np.array([1.0, 1.0, 0.0])
        weighted = LogisticRegression(l2=1e-6).fit(X, y, sample_weight=weights)
        unweighted_small = LogisticRegression(l2=1e-6).fit(X[:2], y[:2])
        assert weighted.coef_[0] == pytest.approx(
            unweighted_small.coef_[0], rel=0.05
        )

    def test_multiclass_rejected(self):
        with pytest.raises(ValidationError, match="2 classes"):
            LogisticRegression().fit(np.zeros((3, 1)), ["a", "b", "c"])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            LogisticRegression().fit(np.zeros((3, 1)), [0, 1])

    def test_nan_features_rejected(self):
        with pytest.raises(ValidationError):
            LogisticRegression().fit(np.array([[np.nan], [1.0]]), [0, 1])


class TestPrediction:
    @pytest.fixture
    def model(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        return LogisticRegression(l2=1e-6).fit(X, ["lo", "lo", "hi", "hi"])

    def test_classes_sorted(self, model):
        assert model.classes_ == ("hi", "lo")

    def test_predict_proba_rows_sum(self, model):
        probs = model.predict_proba(np.array([[1.5], [0.0]]))
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_proba_column_alignment(self, model):
        """Column 1 is the positive class = classes_[1] ('lo')."""
        probs = model.predict_proba(np.array([[0.0]]))
        assert probs[0, 1] > 0.5  # x=0 is 'lo'

    def test_unfitted_prediction_rejected(self):
        with pytest.raises(NotFittedError):
            LogisticRegression().predict(np.zeros((1, 1)))

    def test_feature_count_checked(self, model):
        with pytest.raises(ValidationError):
            model.predict(np.zeros((1, 5)))

    def test_no_intercept_option(self):
        X = np.array([[1.0], [-1.0], [2.0], [-2.0]])
        y = [1, 0, 1, 0]
        model = LogisticRegression(l2=1e-6, fit_intercept=False).fit(X, y)
        assert model.intercept_ == 0.0
        assert model.predict(X).tolist() == [1, 0, 1, 0]
