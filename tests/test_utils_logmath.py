"""Tests for repro.utils.logmath."""

import math

import numpy as np
import pytest

from repro.utils.logmath import log_ratio, logsumexp, safe_log


class TestSafeLog:
    def test_scalar(self):
        assert safe_log(math.e) == pytest.approx(1.0)

    def test_zero_maps_to_neg_inf(self):
        assert safe_log(0.0) == -math.inf

    def test_array(self):
        result = safe_log(np.array([1.0, 0.0]))
        assert result[0] == 0.0
        assert result[1] == -math.inf


class TestLogRatio:
    def test_basic(self):
        assert log_ratio(2.0, 1.0) == pytest.approx(math.log(2))

    def test_symmetry(self):
        assert log_ratio(3.0, 7.0) == pytest.approx(-log_ratio(7.0, 3.0))

    def test_zero_denominator_is_inf(self):
        assert log_ratio(0.5, 0.0) == math.inf

    def test_zero_numerator_is_neg_inf(self):
        assert log_ratio(0.0, 0.5) == -math.inf

    def test_zero_over_zero_is_nan(self):
        assert math.isnan(log_ratio(0.0, 0.0))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            log_ratio(-1.0, 1.0)


class TestLogSumExp:
    def test_matches_naive(self):
        values = np.array([-1.0, 0.0, 2.5])
        assert logsumexp(values) == pytest.approx(np.log(np.exp(values).sum()))

    def test_large_values_do_not_overflow(self):
        values = np.array([1000.0, 1000.0])
        assert logsumexp(values) == pytest.approx(1000.0 + math.log(2))

    def test_all_neg_inf(self):
        assert logsumexp(np.array([-math.inf, -math.inf])) == -math.inf

    def test_axis(self):
        values = np.array([[0.0, 0.0], [1.0, 1.0]])
        result = logsumexp(values, axis=1)
        assert result == pytest.approx([math.log(2), 1 + math.log(2)])

    def test_empty(self):
        assert logsumexp(np.array([])) == -math.inf
