"""Tests for the fairness extensions: DF-regularised logistic regression
and the epsilon-clamping post-processor."""

import math

import numpy as np
import pytest

from repro.core.epsilon import epsilon_from_probabilities
from repro.exceptions import NotFittedError, ValidationError
from repro.learn.fair_logistic import FairLogisticRegression, soft_edf_penalty
from repro.learn.postprocess import GroupMixingPostprocessor


def biased_dataset(rng, n=3000):
    """Binary labels whose base rate depends on a protected group, with a
    proxy feature correlated with the group."""
    groups = np.where(rng.random(n) < 0.5, "g1", "g2")
    base = np.where(groups == "g1", 0.55, 0.15)
    y = (rng.random(n) < base).astype(int)
    x1 = y * 1.4 + rng.normal(size=n)
    x2 = (groups == "g1") * 0.8 + rng.normal(size=n)
    X = np.column_stack([x1, x2])
    return X, y, groups.tolist()


def prediction_epsilon(model, X, groups):
    predictions = model.predict(X)
    rates = {}
    for g in sorted(set(groups)):
        mask = np.asarray([item == g for item in groups])
        rates[g] = np.asarray(predictions[mask] == 1).mean()
    matrix = np.array([[1 - r, r] for r in rates.values()])
    return epsilon_from_probabilities(matrix, validate=False).epsilon


class TestSoftEdfPenalty:
    def test_zero_for_equal_rates(self):
        assert soft_edf_penalty(np.array([0.3, 0.3, 0.3])) == 0.0

    def test_positive_for_unequal(self):
        assert soft_edf_penalty(np.array([0.2, 0.6])) > 0.0

    def test_grows_with_gap(self):
        small = soft_edf_penalty(np.array([0.3, 0.35]))
        large = soft_edf_penalty(np.array([0.3, 0.6]))
        assert large > small

    def test_boundary_rejected(self):
        with pytest.raises(ValidationError):
            soft_edf_penalty(np.array([0.0, 0.5]))
        with pytest.raises(ValidationError):
            soft_edf_penalty(np.array([0.5]))


class TestFairLogisticRegression:
    def test_zero_weight_matches_plain_lr(self, rng):
        from repro.learn.logistic_regression import LogisticRegression

        X, y, groups = biased_dataset(rng, n=800)
        plain = LogisticRegression(l2=1e-3).fit(X, y)
        fair = FairLogisticRegression(fairness_weight=0.0, l2=1e-3).fit(
            X, y, groups=groups
        )
        assert fair.coef_ == pytest.approx(plain.coef_, abs=1e-3)

    def test_regularisation_reduces_epsilon(self, rng):
        """The paper's future-work claim: the DF regulariser trades accuracy
        for fairness."""
        X, y, groups = biased_dataset(rng)
        plain = FairLogisticRegression(fairness_weight=0.0, l2=1e-3).fit(
            X, y, groups=groups
        )
        fair = FairLogisticRegression(fairness_weight=2.0, l2=1e-3).fit(
            X, y, groups=groups
        )
        assert prediction_epsilon(fair, X, groups) < prediction_epsilon(
            plain, X, groups
        )
        # Fairness costs some accuracy on this biased data.
        assert fair.score(X, y) <= plain.score(X, y) + 1e-9

    def test_group_rates_converge(self, rng):
        X, y, groups = biased_dataset(rng)
        fair = FairLogisticRegression(fairness_weight=10.0, l2=1e-3).fit(
            X, y, groups=groups
        )
        rates = fair.group_rates(X, groups)
        values = list(rates.values())
        assert abs(math.log(values[0] / values[1])) < 0.3

    def test_requires_groups(self, rng):
        X, y, _ = biased_dataset(rng, n=100)
        with pytest.raises(ValidationError):
            FairLogisticRegression().fit(X, y)

    def test_requires_two_groups(self, rng):
        X, y, _ = biased_dataset(rng, n=100)
        with pytest.raises(ValidationError):
            FairLogisticRegression().fit(X, y, groups=["same"] * 100)

    def test_predict_before_fit_rejected(self):
        with pytest.raises(NotFittedError):
            FairLogisticRegression().predict(np.zeros((1, 2)))


class TestGroupMixingPostprocessor:
    @pytest.fixture
    def fitted(self):
        predictions = [1] * 80 + [0] * 20 + [1] * 20 + [0] * 80
        groups = ["a"] * 100 + ["b"] * 100
        return GroupMixingPostprocessor(positive=1).fit(predictions, groups)

    def test_rates(self, fitted):
        assert fitted.group_rates_.tolist() == [0.8, 0.2]
        assert fitted.base_rate_ == 0.5

    def test_epsilon_decreases_monotonically(self, fitted):
        values = [fitted.epsilon_at(t) for t in (0.0, 0.25, 0.5, 0.75, 1.0)]
        assert values == sorted(values, reverse=True)
        assert values[-1] == pytest.approx(0.0, abs=1e-12)

    def test_solve_mixing_achieves_target(self, fitted):
        target = 0.5
        t = fitted.solve_mixing(target)
        assert fitted.epsilon_at(t) <= target + 1e-6
        # Minimality: slightly less mixing violates the target.
        assert fitted.epsilon_at(max(t - 0.01, 0.0)) > target

    def test_solve_mixing_zero_when_already_fair(self):
        post = GroupMixingPostprocessor(positive=1).fit(
            [1, 0] * 50, ["a", "a", "b", "b"] * 25
        )
        assert post.solve_mixing(1.0) == 0.0

    def test_transform_rates(self, fitted, rng):
        predictions = [1] * 800 + [0] * 200 + [1] * 200 + [0] * 800
        groups = ["a"] * 1000 + ["b"] * 1000
        mixed = fitted.transform(predictions, groups, t=0.5, seed=0)
        rate_a = np.mean([p == 1 for p, g in zip(mixed, groups) if g == "a"])
        expected = fitted.mixed_rates(0.5)[0]
        assert rate_a == pytest.approx(expected, abs=0.05)

    def test_transform_t_zero_is_identity(self, fitted):
        predictions = [1, 0, 1]
        mixed = fitted.transform(predictions, ["a", "b", "a"], t=0.0, seed=0)
        assert mixed == predictions

    def test_unfitted_rejected(self):
        with pytest.raises(NotFittedError):
            GroupMixingPostprocessor().epsilon_at(0.5)

    def test_single_group_rejected(self):
        with pytest.raises(ValidationError):
            GroupMixingPostprocessor(positive=1).fit([1, 0], ["a", "a"])
