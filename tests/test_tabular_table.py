"""Tests for repro.tabular.table."""

import numpy as np
import pytest

from repro.exceptions import SchemaError, ValidationError
from repro.tabular.column import Column
from repro.tabular.table import Table, concat_tables


class TestConstruction:
    def test_from_dict_infers_kinds(self, numeric_table):
        assert numeric_table.column("x").kind == "numeric"
        assert numeric_table.column("group").kind == "categorical"

    def test_from_dict_forced_categorical(self):
        table = Table.from_dict({"code": [1, 2, 1]}, categorical=["code"])
        assert table.column("code").kind == "categorical"

    def test_from_rows(self):
        table = Table.from_rows(["a", "b"], [(1, "x"), (2, "y")])
        assert table.n_rows == 2
        assert table.column("b").to_list() == ["x", "y"]

    def test_from_rows_ragged_rejected(self):
        with pytest.raises(ValidationError):
            Table.from_rows(["a", "b"], [(1,)])

    def test_unequal_lengths_rejected(self):
        with pytest.raises(ValidationError, match="unequal"):
            Table([Column.numeric("a", [1.0]), Column.numeric("b", [1.0, 2.0])])

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Table([Column.numeric("a", [1.0]), Column.numeric("a", [2.0])])

    def test_empty_columns_rejected(self):
        with pytest.raises(ValidationError):
            Table([])


class TestAccess:
    def test_column_lookup(self, numeric_table):
        assert numeric_table["x"].name == "x"

    def test_unknown_column(self, numeric_table):
        with pytest.raises(SchemaError, match="no column"):
            numeric_table.column("zzz")

    def test_contains(self, numeric_table):
        assert "x" in numeric_table
        assert "zzz" not in numeric_table

    def test_row(self, numeric_table):
        assert numeric_table.row(0) == {"x": 1.0, "y": 2.0, "group": "a"}

    def test_row_out_of_range(self, numeric_table):
        with pytest.raises(IndexError):
            numeric_table.row(99)

    def test_iter_rows(self, numeric_table):
        rows = list(numeric_table.iter_rows())
        assert len(rows) == 5
        assert rows[2]["group"] == "b"

    def test_to_dict_roundtrip(self, numeric_table):
        rebuilt = Table.from_dict(numeric_table.to_dict())
        assert rebuilt.to_dict() == numeric_table.to_dict()


class TestRelationalOps:
    def test_select_order(self, numeric_table):
        projected = numeric_table.select(["group", "x"])
        assert projected.column_names == ["group", "x"]

    def test_drop(self, numeric_table):
        assert numeric_table.drop(["y"]).column_names == ["x", "group"]

    def test_drop_unknown_rejected(self, numeric_table):
        with pytest.raises(SchemaError):
            numeric_table.drop(["nope"])

    def test_drop_all_rejected(self, numeric_table):
        with pytest.raises(ValidationError):
            numeric_table.drop(["x", "y", "group"])

    def test_filter_mask(self, numeric_table):
        mask = numeric_table.column("x").values > 3
        assert numeric_table.filter(mask).n_rows == 2

    def test_filter_requires_bool(self, numeric_table):
        with pytest.raises(ValidationError):
            numeric_table.filter(np.array([1, 0, 1, 0, 1]))

    def test_where(self, numeric_table):
        assert numeric_table.where("group", "b").n_rows == 3

    def test_where_in(self, numeric_table):
        assert numeric_table.where_in("group", ["a", "b"]).n_rows == 5

    def test_filter_rows_predicate(self, numeric_table):
        filtered = numeric_table.filter_rows(lambda row: row["x"] > 4)
        assert filtered.n_rows == 1

    def test_take_preserves_order(self, numeric_table):
        taken = numeric_table.take([4, 0])
        assert taken.column("x").values.tolist() == [5.0, 1.0]

    def test_take_out_of_range(self, numeric_table):
        with pytest.raises(ValidationError):
            numeric_table.take([99])

    def test_head(self, numeric_table):
        assert numeric_table.head(2).n_rows == 2
        assert numeric_table.head(100).n_rows == 5

    def test_with_column_adds(self, numeric_table):
        extended = numeric_table.with_column(Column.numeric("z", [0.0] * 5))
        assert "z" in extended
        assert "z" not in numeric_table  # immutability

    def test_with_column_replaces(self, numeric_table):
        replaced = numeric_table.with_column(Column.numeric("x", [9.0] * 5))
        assert replaced.column("x").values.tolist() == [9.0] * 5
        assert replaced.column_names == numeric_table.column_names

    def test_with_column_length_checked(self, numeric_table):
        with pytest.raises(ValidationError):
            numeric_table.with_column(Column.numeric("z", [1.0]))

    def test_rename(self, numeric_table):
        renamed = numeric_table.rename({"x": "x2"})
        assert renamed.column_names == ["x2", "y", "group"]

    def test_rename_unknown_rejected(self, numeric_table):
        with pytest.raises(SchemaError):
            numeric_table.rename({"nope": "x"})

    def test_shuffle_is_permutation(self, numeric_table, rng):
        shuffled = numeric_table.shuffle(rng)
        assert sorted(shuffled.column("x").values) == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_split_at(self, numeric_table):
        left, right = numeric_table.split_at(2)
        assert left.n_rows == 2
        assert right.n_rows == 3


class TestSummaries:
    def test_value_counts_categorical(self, numeric_table):
        assert numeric_table.value_counts("group") == {"a": 2, "b": 3}

    def test_value_counts_numeric(self):
        table = Table.from_dict({"x": [1.0, 1.0, 2.0]})
        assert table.value_counts("x") == {1.0: 2, 2.0: 1}

    def test_value_counts_omits_absent_levels(self):
        column = Column.categorical("c", ["a"], levels=["a", "b"])
        assert Table([column]).value_counts("c") == {"a": 1}

    def test_to_text_truncation(self, numeric_table):
        text = numeric_table.to_text(max_rows=2)
        assert "more rows" in text


class TestConcat:
    def test_stacks_rows(self, numeric_table):
        combined = concat_tables([numeric_table, numeric_table])
        assert combined.n_rows == 10

    def test_unions_categorical_levels(self):
        first = Table.from_dict({"c": ["a"]})
        second = Table.from_dict({"c": ["b"]})
        combined = concat_tables([first, second])
        assert combined.column("c").to_list() == ["a", "b"]
        assert set(combined.column("c").levels) == {"a", "b"}

    def test_name_mismatch_rejected(self, numeric_table):
        other = Table.from_dict({"different": [1.0]})
        with pytest.raises(SchemaError):
            concat_tables([numeric_table, other])

    def test_kind_mismatch_rejected(self):
        first = Table.from_dict({"c": ["a"]})
        second = Table.from_dict({"c": [1.0]})
        with pytest.raises(SchemaError, match="mixed kinds"):
            concat_tables([first, second])

    def test_empty_list_rejected(self):
        with pytest.raises(ValidationError):
            concat_tables([])
