"""Tests for the Table 1 (Simpson's paradox) data — exact paper numbers."""

import math

import pytest

from repro.core.empirical import dataset_edf, edf_from_contingency
from repro.core.subsets import subset_sweep
from repro.data.kidney import (
    ADMISSIONS_CELLS,
    PAPER_TABLE1_BOUND,
    PAPER_TABLE1_EPSILONS,
    admissions_contingency,
    admissions_table,
    kidney_treatment_contingency,
)


class TestData:
    def test_cell_totals_match_paper(self):
        totals = {
            cell: sum(counts) for cell, counts in ADMISSIONS_CELLS.items()
        }
        assert totals == {
            ("A", "1"): 87,
            ("B", "1"): 270,
            ("A", "2"): 263,
            ("B", "2"): 80,
        }
        assert sum(totals.values()) == 700

    def test_overall_admission_probabilities(self):
        """273/350 for Gender A and 289/350 for Gender B (Table 1)."""
        contingency = admissions_contingency().marginalize(["gender"])
        assert contingency.cell(("A",), "yes") == 273
        assert contingency.cell(("B",), "yes") == 289
        assert contingency.group_sizes().tolist() == [350.0, 350.0]

    def test_race_margins(self):
        contingency = admissions_contingency().marginalize(["race"])
        assert contingency.cell(("1",), "yes") == 315
        assert contingency.cell(("2",), "yes") == 247

    def test_table_expansion_consistent(self):
        table = admissions_table()
        assert table.n_rows == 700
        from repro.tabular.crosstab import crosstab

        rebuilt = crosstab(table, ["gender", "race"], "admitted")
        assert rebuilt.cell(("A", "1"), "yes") == 81

    def test_simpsons_reversal_present(self):
        """Gender A wins within each race but loses overall."""
        contingency = admissions_contingency()
        rate = lambda g, r: contingency.cell((g, r), "yes") / (
            contingency.cell((g, r), "yes") + contingency.cell((g, r), "no")
        )
        assert rate("A", "1") > rate("B", "1")
        assert rate("A", "2") > rate("B", "2")
        marginal = contingency.marginalize(["gender"])
        overall = lambda g: marginal.cell((g,), "yes") / 350
        assert overall("A") < overall("B")


class TestPaperEpsilons:
    def test_intersectional_epsilon(self):
        result = edf_from_contingency(admissions_contingency())
        assert result.epsilon == pytest.approx(
            PAPER_TABLE1_EPSILONS[("gender", "race")], abs=5e-4
        )

    def test_marginal_epsilons(self):
        sweep = subset_sweep(admissions_contingency())
        assert sweep.epsilon("gender") == pytest.approx(
            PAPER_TABLE1_EPSILONS[("gender",)], abs=5e-5
        )
        assert sweep.epsilon("race") == pytest.approx(
            PAPER_TABLE1_EPSILONS[("race",)], abs=5e-5
        )

    def test_theorem_bound_value(self):
        sweep = subset_sweep(admissions_contingency())
        assert sweep.theorem_bound() == pytest.approx(PAPER_TABLE1_BOUND, abs=1e-3)
        assert sweep.theorem_violations() == []

    def test_witness_is_rejection_of_a1(self):
        """The binding ratio is the 'no' outcome: (B,2) vs (A,1)."""
        result = edf_from_contingency(admissions_contingency())
        assert result.witness.outcome == "no"
        assert result.witness.group_high == ("B", "2")
        assert result.witness.group_low == ("A", "1")

    def test_row_level_table_gives_same_epsilon(self):
        result = dataset_edf(
            admissions_table(), protected=["gender", "race"], outcome="admitted"
        )
        assert result.epsilon == pytest.approx(1.511, abs=5e-4)


class TestKidneyFraming:
    def test_same_counts_different_labels(self):
        kidney = kidney_treatment_contingency()
        assert kidney.factor_names == ["treatment", "stone_size"]
        assert kidney.cell(("A", "small"), "yes") == 81

    def test_same_epsilon_as_admissions(self):
        """Relabelling cannot change epsilon."""
        assert edf_from_contingency(
            kidney_treatment_contingency()
        ).epsilon == pytest.approx(
            edf_from_contingency(admissions_contingency()).epsilon
        )
