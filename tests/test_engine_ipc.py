"""Tests for the shared-memory count transport and the pipelined pool.

Covers the :mod:`repro.engine.ipc` primitives (encode/decode round
trips, slot CRC + sequence-stamp validation, slot-size negotiation),
the pipelined :class:`ProcessPoolBackend` built on them (bit-identity
with the serial path, queue fallback for oversized states, pool reuse
and ``close()`` lifecycle), and the crash contract: a worker SIGKILLed
mid-chunk makes the coordinator raise cleanly, leaks no
``/dev/shm/repro_ring_*`` segment, and leaves the backend usable (a
fresh pool is spun up lazily on the next call).
"""

from __future__ import annotations

import glob
import os
import signal

import numpy as np
import pytest

import repro.engine.backends as backends_module
from repro.core.streaming import StreamingContingency
from repro.engine.backends import (
    ContingencySpec,
    CsvSource,
    ProcessPoolBackend,
    SerialBackend,
    _SpanTask,
    _count_task,
)
from repro.engine.ipc import (
    RING_SLOT_HEADER,
    SharedCountRing,
    SlotDescriptor,
    decode_counts_state,
    encode_counts_state,
    ring_slot_size,
)
from repro.exceptions import IpcError, ValidationError
from repro.tabular.csv_io import CsvPlan, plan_csv_chunks

PROTECTED = ("gender", "race")
OUTCOME = "hired"
SPEC = ContingencySpec(PROTECTED, OUTCOME)


def write_stream_csv(path, n_rows=997, seed=3):
    rng = np.random.default_rng(seed)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("gender,race,hired\n")
        for _ in range(n_rows):
            handle.write(
                f"g{rng.integers(2)},r{rng.integers(4)},y{rng.integers(2)}\n"
            )
    return path


@pytest.fixture
def stream_csv(tmp_path):
    return write_stream_csv(tmp_path / "stream.csv")


def source_for(path, chunk_rows=128, column_cache=None):
    return CsvSource(
        str(path),
        chunk_rows=chunk_rows,
        columns=(*PROTECTED, OUTCOME),
        column_cache=column_cache,
    )


def filled_accumulator():
    acc = SPEC.new_accumulator()
    rng = np.random.default_rng(11)
    from repro.tabular.column import Column
    from repro.tabular.table import Table

    rows = rng.integers(0, 2, size=200)
    table = Table(
        [
            Column.categorical("gender", [f"g{v}" for v in rows]),
            Column.categorical(
                "race", [f"r{v}" for v in rng.integers(0, 3, size=200)]
            ),
            Column.categorical(
                "hired", [f"y{v}" for v in rng.integers(0, 2, size=200)]
            ),
        ]
    )
    return acc.update_table(table)


class TestEncodeDecode:
    def test_round_trip_preserves_everything(self):
        acc = filled_accumulator()
        state = acc.state_dict()
        decoded = decode_counts_state(encode_counts_state(state))
        rebuilt = StreamingContingency.from_state(decoded)
        assert rebuilt.n_rows == acc.n_rows
        assert np.array_equal(
            rebuilt.snapshot().counts, acc.snapshot().counts
        )
        assert rebuilt.snapshot().factor_levels == acc.snapshot().factor_levels

    def test_decode_is_zero_copy_from_the_buffer(self):
        state = filled_accumulator().state_dict()
        payload = bytearray(encode_counts_state(state))
        decoded = decode_counts_state(payload)
        # The tensor is a view over the buffer, not a copy.
        assert decoded["counts"].base is not None
        expected = np.ascontiguousarray(state["counts"], dtype="<i8")
        assert np.array_equal(decoded["counts"], expected)

    def test_truncated_buffers_raise(self):
        payload = encode_counts_state(filled_accumulator().state_dict())
        for cut in (0, 2, len(payload) // 2, len(payload) - 1):
            with pytest.raises(IpcError, match="truncated"):
                decode_counts_state(payload[:cut])

    def test_garbage_header_raises(self):
        with pytest.raises(IpcError, match="JSON"):
            decode_counts_state(b"\x08\x00\x00\x00notjson!" + b"\x00" * 64)


class TestSlotSizing:
    def test_pinned_spec_gets_exact_slot(self):
        pinned = ContingencySpec(
            PROTECTED,
            OUTCOME,
            factor_levels=(("g0", "g1"), ("r0", "r1", "r2", "r3")),
            outcome_levels=("y0", "y1"),
        )
        size = ring_slot_size(pinned)
        measured = len(
            encode_counts_state(pinned.new_accumulator().state_dict())
        )
        assert size == RING_SLOT_HEADER.size + measured + 64

    def test_dynamic_spec_gets_default_budget(self):
        assert ring_slot_size(SPEC) >= RING_SLOT_HEADER.size + 256 * 1024


@pytest.mark.ipc
class TestSharedCountRing:
    def test_write_read_round_trip(self):
        payload = encode_counts_state(filled_accumulator().state_dict())
        with SharedCountRing(4, len(payload) + RING_SLOT_HEADER.size) as ring:
            descriptor = ring.write_slot(2, 7, payload)
            assert descriptor.ring == ring.name
            view = ring.read_slot(descriptor)
            assert bytes(view) == payload
            view.release()

    def test_attach_sees_the_creators_bytes(self):
        payload = b"x" * 100
        with SharedCountRing(2, 256) as ring:
            descriptor = ring.write_slot(0, 0, payload)
            peer = SharedCountRing.attach(ring.name, 2, 256)
            try:
                view = peer.read_slot(descriptor)
                assert bytes(view) == payload
                view.release()
            finally:
                peer.close()

    def test_torn_slot_fails_crc(self):
        with SharedCountRing(2, 256) as ring:
            descriptor = ring.write_slot(0, 0, b"a" * 64)
            # Simulate a worker dying mid-write: flip a payload byte
            # after the header was stamped.
            ring._shm.buf[RING_SLOT_HEADER.size + 10] ^= 0xFF
            with pytest.raises(IpcError, match="CRC"):
                ring.read_slot(descriptor)

    def test_stale_slot_fails_seq_stamp(self):
        with SharedCountRing(2, 256) as ring:
            ring.write_slot(1, 9, b"new occupant")
            stale = SlotDescriptor(ring.name, 1, 3, 12, 0)
            with pytest.raises(IpcError, match="seq"):
                ring.read_slot(stale)

    def test_descriptor_for_another_ring_rejected(self):
        with SharedCountRing(2, 256) as ring:
            foreign = SlotDescriptor("repro_ring_beef", 0, 0, 4, 0)
            with pytest.raises(IpcError, match="ring"):
                ring.read_slot(foreign)

    def test_oversized_payload_rejected(self):
        with SharedCountRing(1, 128) as ring:
            with pytest.raises(IpcError, match="exceeds"):
                ring.write_slot(0, 0, b"z" * 256)

    def test_destroy_unlinks_and_is_idempotent(self):
        ring = SharedCountRing(2, 256)
        name = ring.name
        assert os.path.exists(f"/dev/shm/{name}")
        ring.destroy()
        assert not os.path.exists(f"/dev/shm/{name}")
        ring.destroy()  # safe to call again


@pytest.mark.ipc
@pytest.mark.parallel
class TestPipelinedBackend:
    def test_pipelined_build_is_bit_identical_to_serial(self, stream_csv):
        serial = SerialBackend().build(source_for(stream_csv), SPEC)
        with ProcessPoolBackend(2) as backend:
            pooled = backend.build(source_for(stream_csv), SPEC)
        assert np.array_equal(
            pooled.snapshot().counts, serial.snapshot().counts
        )
        assert pooled.n_rows == serial.n_rows

    def test_pipelined_chunks_match_serial_chunk_for_chunk(self, stream_csv):
        source = source_for(stream_csv)
        serial_chunks = list(SerialBackend().iter_chunk_counts(source, SPEC))
        with ProcessPoolBackend(2) as backend:
            pooled_chunks = list(backend.iter_chunk_counts(source, SPEC))
        assert [c.index for c in pooled_chunks] == [
            c.index for c in serial_chunks
        ]
        for left, right in zip(serial_chunks, pooled_chunks):
            assert left.n_rows == right.n_rows
            assert np.array_equal(
                left.counts.snapshot().counts,
                right.counts.snapshot().counts,
            )

    def test_queue_fallback_for_oversized_states(self, stream_csv):
        # A ring whose slots cannot hold any real state: every chunk
        # must fall back to queue transport and still be correct.
        plan = CsvPlan.from_csv(stream_csv, columns=[*PROTECTED, OUTCOME])
        spans = plan_csv_chunks(stream_csv, plan, 128)
        with SharedCountRing(2, RING_SLOT_HEADER.size + 8) as ring:
            task = _SpanTask(
                str(stream_csv),
                plan,
                SPEC,
                0,
                128,
                spans=(spans[0],),
                ring=(ring.name, ring.n_slots, ring.slot_size),
                slots=((0, 0),),
            )
            [(index, n_rows, transport)] = _count_task(task)
        assert index == 0 and n_rows == 128
        assert isinstance(transport, dict)  # not a SlotDescriptor
        rebuilt = StreamingContingency.from_state(transport)
        serial = SPEC.new_accumulator()
        for table in SerialBackend().iter_chunk_tables(source_for(stream_csv)):
            serial.update_table(table)
            break
        assert np.array_equal(
            rebuilt.snapshot().counts, serial.snapshot().counts
        )

    def test_cached_pipelined_matches_serial(self, stream_csv, tmp_path):
        cache = str(tmp_path / "stream.rccol")
        serial = SerialBackend().build(source_for(stream_csv), SPEC)
        with ProcessPoolBackend(2) as backend:
            warmed = backend.build(
                source_for(stream_csv, column_cache=cache), SPEC
            )
            again = backend.build(
                source_for(stream_csv, column_cache=cache), SPEC
            )
        assert os.path.exists(cache)
        assert np.array_equal(
            warmed.snapshot().counts, serial.snapshot().counts
        )
        assert np.array_equal(
            again.snapshot().counts, serial.snapshot().counts
        )

    def test_no_ring_leaked_after_ingest(self, stream_csv):
        before = set(glob.glob("/dev/shm/repro_ring_*"))
        with ProcessPoolBackend(2) as backend:
            backend.build(source_for(stream_csv), SPEC)
            list(backend.iter_chunk_counts(source_for(stream_csv), SPEC))
        assert set(glob.glob("/dev/shm/repro_ring_*")) == before

    def test_abandoned_iteration_still_unlinks_the_ring(self, stream_csv):
        before = set(glob.glob("/dev/shm/repro_ring_*"))
        with ProcessPoolBackend(2) as backend:
            iterator = backend.iter_chunk_counts(source_for(stream_csv), SPEC)
            next(iterator)
            iterator.close()  # consumer walks away mid-stream
        assert set(glob.glob("/dev/shm/repro_ring_*")) == before


class TestPoolLifecycle:
    def test_pool_is_reused_across_calls(self, stream_csv):
        backend = ProcessPoolBackend(2)
        try:
            backend.build(source_for(stream_csv), SPEC)
            first = backend._pool
            assert first is not None
            backend.build(source_for(stream_csv), SPEC)
            assert backend._pool is first
        finally:
            backend.close()

    def test_closed_backend_refuses_work(self, stream_csv):
        backend = ProcessPoolBackend(2)
        backend.close()
        with pytest.raises(ValidationError, match="closed"):
            backend.build(source_for(stream_csv), SPEC)

    def test_context_manager_closes(self, stream_csv):
        with ProcessPoolBackend(2) as backend:
            backend.build(source_for(stream_csv), SPEC)
        assert backend._pool is None
        with pytest.raises(ValidationError, match="closed"):
            backend.build(source_for(stream_csv), SPEC)

    def test_validation(self):
        with pytest.raises(ValidationError, match="workers"):
            ProcessPoolBackend(0)
        with pytest.raises(ValidationError, match="inflight"):
            ProcessPoolBackend(2, inflight_per_worker=0)


# ----------------------------------------------------------------------
# Worker-kill crash contract
# ----------------------------------------------------------------------
_real_count_task = backends_module._count_task


def _sigkill_count_task(task):
    """Replacement worker fn: die hard on a marked task, else count.

    Module-level so the executor can pickle it by reference; the forked
    workers inherit the patched module, so the coordinator's submission
    of ``_count_task`` resolves to this function inside the pool too.
    """
    if task.first_index == 3:
        os.kill(os.getpid(), signal.SIGKILL)
    return _real_count_task(task)


@pytest.mark.ipc
@pytest.mark.parallel
class TestWorkerCrash:
    def test_killed_worker_raises_cleanly_and_unlinks_rings(
        self, stream_csv, monkeypatch
    ):
        before = set(glob.glob("/dev/shm/repro_ring_*"))
        monkeypatch.setattr(
            backends_module, "_count_task", _sigkill_count_task
        )
        backend = ProcessPoolBackend(2)
        try:
            with pytest.raises(Exception) as excinfo:
                list(backend.iter_chunk_counts(source_for(stream_csv), SPEC))
            # BrokenProcessPool, surfaced as-is: the ingest is dead and
            # says so, it does not return partial counts.
            assert "process" in str(excinfo.value).lower() or isinstance(
                excinfo.value, IpcError
            )
            # The shm ring the workers were attached to is gone.
            assert set(glob.glob("/dev/shm/repro_ring_*")) == before
            # The broken pool was discarded...
            assert backend._pool is None
            # ...and the backend recovers on the next call with a fresh
            # pool once the poison task is gone.
            monkeypatch.setattr(
                backends_module, "_count_task", _real_count_task
            )
            serial = SerialBackend().build(source_for(stream_csv), SPEC)
            recovered = backend.build(source_for(stream_csv), SPEC)
            assert np.array_equal(
                recovered.snapshot().counts, serial.snapshot().counts
            )
        finally:
            backend.close()

    def test_killed_worker_during_build_unlinks_rings(
        self, stream_csv, monkeypatch
    ):
        before = set(glob.glob("/dev/shm/repro_ring_*"))
        monkeypatch.setattr(
            backends_module, "_count_task", _sigkill_count_task
        )
        with ProcessPoolBackend(2) as backend:
            with pytest.raises(Exception):
                backend.build(source_for(stream_csv), SPEC)
        assert set(glob.glob("/dev/shm/repro_ring_*")) == before
