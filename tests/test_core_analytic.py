"""Tests for repro.core.analytic — the Figure 2 worked example."""

import math

import pytest

from repro.core.analytic import gaussian_threshold_epsilon, paper_worked_example
from repro.core.mechanism import mechanism_epsilon
from repro.distributions.gaussian import GroupGaussianScores
from repro.mechanisms.threshold import ScoreThresholdMechanism


class TestPaperWorkedExample:
    """Figure 2 of the paper, reproduced to its printed precision."""

    def test_epsilon(self):
        assert paper_worked_example().epsilon == pytest.approx(2.337, abs=5e-4)

    def test_outcome_probabilities(self):
        result = paper_worked_example().result
        assert result.probability((1,), "yes") == pytest.approx(0.3085, abs=5e-5)
        assert result.probability((2,), "yes") == pytest.approx(0.9332, abs=5e-5)
        assert result.probability((1,), "no") == pytest.approx(0.6915, abs=5e-5)
        assert result.probability((2,), "no") == pytest.approx(0.0668, abs=5e-5)

    def test_witness_is_no_outcome(self):
        witness = paper_worked_example().result.witness
        assert witness.outcome == "no"
        assert witness.group_high == (1,)

    def test_yes_outcome_log_ratio(self):
        # The paper's table lists -1.107 for (yes, 1, 2).
        result = paper_worked_example().result
        ratio = math.log(
            result.probability((1,), "yes") / result.probability((2,), "yes")
        )
        assert ratio == pytest.approx(-1.107, abs=5e-4)

    def test_ratio_bounds(self):
        # exp(±2.337) = (0.0966, 10.35) as printed in the paper.
        example = paper_worked_example()
        assert math.exp(-example.epsilon) == pytest.approx(0.0966, abs=5e-5)
        assert math.exp(example.epsilon) == pytest.approx(10.35, abs=5e-3)

    def test_tables_render(self):
        example = paper_worked_example()
        assert "Probability of Hiring Outcome" in example.probability_table()
        assert "Log Ratios" in example.log_ratio_table()
        assert "2.337" in example.to_text()


class TestGaussianThresholdGeneral:
    def test_identical_groups_are_fair(self):
        scores = GroupGaussianScores([5.0, 5.0], [2.0, 2.0])
        mechanism = ScoreThresholdMechanism(6.0)
        assert gaussian_threshold_epsilon(scores, mechanism).epsilon == 0.0

    def test_epsilon_grows_with_separation(self):
        mechanism = ScoreThresholdMechanism(10.0)
        small = gaussian_threshold_epsilon(
            GroupGaussianScores([9.5, 10.5], [1.0, 1.0]), mechanism
        )
        large = gaussian_threshold_epsilon(
            GroupGaussianScores([9.0, 11.0], [1.0, 1.0]), mechanism
        )
        assert large.epsilon > small.epsilon

    def test_three_groups(self):
        scores = GroupGaussianScores([9.0, 10.0, 11.0], [1.0, 1.0, 1.0])
        result = gaussian_threshold_epsilon(scores, ScoreThresholdMechanism(10.0))
        # Extremes drive epsilon; middle group is interior.
        assert result.witness.group_high in [(1,), (3,)]
        assert result.witness.group_low in [(1,), (3,)]

    def test_monte_carlo_agrees_with_analytic(self):
        """The sampling path converges to the closed form."""
        scores = GroupGaussianScores.paper_worked_example()
        mechanism = ScoreThresholdMechanism.paper_worked_example()
        analytic = gaussian_threshold_epsilon(scores, mechanism)
        sampled = mechanism_epsilon(
            mechanism, scores, n_samples=200_000, seed=7, exact=False
        )
        assert sampled.epsilon == pytest.approx(analytic.epsilon, abs=0.03)
