"""Tests for repro.monitor.registry: lifecycle, bit-identity, alerts,
durability, and the concurrent-ingestion stress satellite.

The stress test is the acceptance criterion for the per-monitor locks: 8
writer threads interleave batches into one shared monitor and into
sibling monitors, and the final counts must equal the single-threaded
merge while the store holds exactly one batch record per applied batch
and exactly one alert per (monitor, batch) for an always-firing rule —
nothing lost, nothing duplicated.
"""

from __future__ import annotations

import itertools
import threading

import numpy as np
import pytest

from repro.audit.auditor import FairnessAuditor
from repro.core.empirical import dataset_edf
from repro.exceptions import CheckpointError, MonitorError, ValidationError
from repro.monitor.registry import MonitorConfig, MonitorRegistry
from repro.metrics import demographic_parity_ratio
from repro.monitor.rules import (
    DivergenceRule,
    EpsilonThresholdRule,
    MetricThresholdRule,
    rule_from_dict,
)
from repro.monitor.store import AuditHistoryStore
from repro.tabular.table import Table

NAMES = ["gender", "race", "hired"]


def fake_clock(start: float = 1_700_000_000.0):
    counter = itertools.count()
    return lambda: start + float(next(counter))


def synthetic_rows(n_rows: int, seed: int = 5) -> list[tuple[str, str, str]]:
    rng = np.random.default_rng(seed)
    return [
        (f"g{rng.integers(2)}", f"r{rng.integers(3)}", f"y{rng.integers(2)}")
        for _ in range(n_rows)
    ]


def offline_epsilon(rows, window=None, alpha=1.0):
    scope = rows if window is None else rows[-window:]
    return dataset_edf(
        Table.from_rows(NAMES, scope),
        protected=NAMES[:2],
        outcome=NAMES[2],
        estimator=alpha,
    ).epsilon


@pytest.fixture
def registry(tmp_path):
    return MonitorRegistry(
        AuditHistoryStore(tmp_path / "history", clock=fake_clock())
    )


class TestLifecycle:
    def test_create_get_list_delete(self, registry):
        registry.create("a", ["gender"], "hired")
        registry.create("b", ["gender", "race"], "hired", window=100)
        assert registry.names() == ["a", "b"]
        assert len(registry) == 2
        assert "a" in registry and "ghost" not in registry
        assert registry.get("b").config.window == 100
        registry.delete("a")
        assert registry.names() == ["b"]
        with pytest.raises(MonitorError, match="no monitor named"):
            registry.get("a")
        with pytest.raises(MonitorError, match="no monitor named"):
            registry.delete("a")

    def test_duplicate_names_rejected(self, registry):
        registry.create("a", ["gender"], "hired")
        with pytest.raises(MonitorError, match="already exists"):
            registry.create("a", ["race"], "hired")

    def test_bad_names_rejected(self, registry):
        for name in ("", "has space", "a/b", "../escape", "x" * 80):
            with pytest.raises(MonitorError, match="name"):
                registry.create(name, ["gender"], "hired")

    def test_config_validation(self):
        with pytest.raises(MonitorError, match="window"):
            MonitorConfig("m", ("g",), "y", window=0)
        with pytest.raises(MonitorError, match="protected"):
            MonitorConfig("m", (), "y")
        with pytest.raises(MonitorError, match="posterior_samples"):
            MonitorConfig("m", ("g",), "y", posterior_samples=-1)

    def test_config_round_trips_through_json_dict(self):
        config = MonitorConfig(
            "m",
            ("gender", "race"),
            "hired",
            window=500,
            alpha=1.0,
            posterior_samples=100,
            seed=7,
            factor_levels=(("g0", "g1"), ("r0", "r1", "r2")),
            outcome_levels=("y0", "y1"),
            rules=(EpsilonThresholdRule(0.3), DivergenceRule(0.1)),
        )
        assert MonitorConfig.from_dict(config.to_dict()) == config


class TestBitIdentity:
    """Monitor epsilon == dataset_edf on the concatenated batch rows."""

    @pytest.mark.parametrize("window", [None, 300], ids=["cumulative", "windowed"])
    def test_epsilon_matches_offline_audit(self, registry, window):
        monitor = registry.create(
            "m", NAMES[:2], NAMES[2], window=window, alpha=1.0
        )
        rows = synthetic_rows(900)
        for start in range(0, 900, 150):
            result = monitor.observe(rows[start : start + 150])
            assert result.epsilon == offline_epsilon(
                rows[: start + 150], window=window
            )
        assert registry.report("m").epsilon == offline_epsilon(
            rows, window=window
        )

    def test_report_posterior_equals_audit_contingency(self, registry):
        monitor = registry.create(
            "m", NAMES[:2], NAMES[2], alpha=1.0, posterior_samples=150, seed=11
        )
        rows = synthetic_rows(400)
        monitor.observe(rows)
        report = monitor.report()
        offline = FairnessAuditor(
            NAMES[:2],
            NAMES[2],
            estimator=1.0,
            posterior_samples=150,
            seed=11,
        ).audit_dataset(Table.from_rows(NAMES, rows))
        assert report.posterior == offline.posterior
        assert monitor.audit().posterior == offline.posterior

    def test_full_audit_matches_offline(self, registry):
        monitor = registry.create("m", NAMES[:2], NAMES[2], alpha=1.0)
        rows = synthetic_rows(300)
        monitor.observe(rows)
        offline = FairnessAuditor(
            NAMES[:2], NAMES[2], estimator=1.0
        ).audit_dataset(Table.from_rows(NAMES, rows))
        assert monitor.audit().to_text() == offline.to_text()


class TestObserveAndAlerts:
    def test_empty_batch_rejected(self, registry):
        monitor = registry.create("m", ["gender"], "hired")
        with pytest.raises(ValidationError, match="rows"):
            monitor.observe([])

    def test_batches_and_alerts_are_recorded(self, registry):
        monitor = registry.create(
            "m",
            NAMES[:2],
            NAMES[2],
            alpha=1.0,
            rules=[EpsilonThresholdRule(-1.0, severity="info")],
        )
        rows = synthetic_rows(200)
        first = monitor.observe(rows[:100])
        second = monitor.observe(rows[100:])
        assert (first.batch_index, second.batch_index) == (1, 2)
        assert len(first.alerts) == len(second.alerts) == 1

        batches = registry.store.query(monitor="m", kind="batch")
        assert [record["batch_index"] for record in batches] == [1, 2]
        assert batches[0]["epsilon"] == first.epsilon
        assert batches[1]["rows_seen"] == 200
        alerts = registry.store.query(monitor="m", kind="alert")
        assert [record["batch_index"] for record in alerts] == [1, 2]
        assert {record["rule"] for record in alerts} == {"epsilon_threshold"}

    def test_divergence_rule_sees_the_cumulative_shadow(self, registry):
        monitor = registry.create(
            "m",
            ["gender"],
            "hired",
            window=40,
            alpha=1.0,
            rules=[DivergenceRule(0.2)],
        )
        steady = [("g0", "y0"), ("g0", "y1"), ("g1", "y0"), ("g1", "y1")] * 30
        drifted = [("g0", "y0"), ("g1", "y1")] * 20
        assert monitor.observe(steady).alerts == ()
        result = monitor.observe(drifted)
        assert [alert.rule for alert in result.alerts] == ["divergence"]
        assert result.cumulative_epsilon is not None
        assert result.alerts[0].value == pytest.approx(
            abs(result.epsilon - result.cumulative_epsilon)
        )

    def test_metric_threshold_rule_fires_with_the_window_value(self, registry):
        # The EEOC 80% rule as a declarative spec, end to end: the alert
        # value must be bit-identical to the standalone repro.metrics
        # function on the monitored rows.
        monitor = registry.create(
            "m",
            NAMES[:2],
            NAMES[2],
            alpha=1.0,
            window=240,
            rules=[
                rule_from_dict(
                    {
                        "type": "metric_threshold",
                        "metric": "demographic_parity_ratio",
                        "threshold": 0.8,
                        "direction": "below",
                    }
                )
            ],
        )
        skewed = (
            [("g0", "r0", "y1")] * 30
            + [("g0", "r0", "y0")] * 10
            + [("g1", "r0", "y1")] * 10
            + [("g1", "r0", "y0")] * 30
        )
        result = monitor.observe(skewed)
        [alert] = result.alerts
        assert alert.rule == "metric_threshold"
        assert alert.value == demographic_parity_ratio(
            [y for *_, y in skewed],
            [(g, r) for g, r, _ in skewed],
            positive="y1",
        )
        assert alert.value == pytest.approx(1 / 3)
        assert "falls below" in alert.message
        stored = registry.store.query(monitor="m", kind="alert")
        assert [record["rule"] for record in stored] == ["metric_threshold"]
        # A balanced follow-up batch lifts the window ratio: no new alert.
        balanced = [
            ("g0", "r0", "y1"),
            ("g0", "r0", "y0"),
            ("g1", "r0", "y1"),
            ("g1", "r0", "y0"),
        ] * 60
        assert monitor.observe(balanced).alerts == ()

    def test_registry_without_store_still_observes(self):
        registry = MonitorRegistry()
        monitor = registry.create("m", ["gender"], "hired", alpha=1.0)
        result = monitor.observe([("g0", "y0"), ("g1", "y1")])
        assert result.epsilon >= 0.0
        # The trend comes from the in-memory tail: no store required.
        trend = registry.report("m").trend
        assert trend is not None and trend.n_batches == 1

    def test_report_trend_prefers_memory_and_matches_store(self, registry):
        monitor = registry.create("m", NAMES[:2], NAMES[2], alpha=1.0)
        rows = synthetic_rows(300)
        for start in range(0, 300, 100):
            monitor.observe(rows[start : start + 100])
        from_memory = monitor.trend()
        from_store = registry.store.trend("m")
        assert from_memory == from_store
        assert registry.report("m").trend == from_store
        windowed = monitor.trend(window=2)
        assert windowed.n_batches == 2
        assert windowed.last == from_store.last


class TestDurability:
    def make_registry(self, tmp_path):
        return MonitorRegistry.open(tmp_path / "data", clock=fake_clock())

    def test_configs_persist_and_reopen_restores_monitors(self, tmp_path):
        registry = self.make_registry(tmp_path)
        registry.create(
            "m",
            NAMES[:2],
            NAMES[2],
            window=200,
            alpha=1.0,
            rules=[rule_from_dict({"type": "epsilon_threshold", "threshold": 0.4})],
        )
        rows = synthetic_rows(500)
        registry.observe("m", rows)
        registry.checkpoint_all()

        reopened = self.make_registry(tmp_path)
        monitor = reopened.get("m")
        assert monitor.config.window == 200
        assert monitor.config.rules == (EpsilonThresholdRule(0.4),)
        assert monitor.rows_seen == 500
        assert monitor.batches == 1
        assert monitor.report().epsilon == offline_epsilon(rows, window=200)

    def test_windowed_resume_continues_bit_identically(self, tmp_path):
        rows = synthetic_rows(600)
        registry = self.make_registry(tmp_path)
        registry.create("m", NAMES[:2], NAMES[2], window=250, alpha=1.0)
        registry.observe("m", rows[:300])
        registry.checkpoint_all()
        # After the checkpoint — but acknowledged, so the WAL has it and
        # reopen replays it without any client-side resend.
        registry.observe("m", rows[300:450])

        reopened = self.make_registry(tmp_path)
        monitor = reopened.get("m")
        assert monitor.rows_seen == 450
        assert monitor.batches == 2
        monitor.observe(rows[450:])
        assert monitor.report().epsilon == offline_epsilon(rows, window=250)
        # The cumulative shadow resumed too: divergence stays meaningful.
        assert monitor._shadow.rows_seen == 600
        # Replay did not duplicate the batch's history record.
        batch_records = reopened.store.query(monitor="m", kind="batch")
        assert [record["batch_index"] for record in batch_records] == [1, 2, 3]

    def test_metric_rule_survives_wal_replay(self, tmp_path):
        # An acked batch that fired a metric_threshold alert is replayed
        # from the WAL after an uncheckpointed restart: the rule config
        # persists, the replayed evaluation is bit-identical (metrics are
        # pure functions of the replayed counts), and the store keeps
        # exactly one alert record — nothing lost, nothing duplicated.
        registry = self.make_registry(tmp_path)
        registry.create(
            "m",
            NAMES[:2],
            NAMES[2],
            window=100,
            alpha=1.0,
            rules=[
                MetricThresholdRule(
                    "demographic_parity_difference", 0.4, severity="critical"
                )
            ],
        )
        skewed = (
            [("g0", "r0", "y1")] * 18
            + [("g0", "r0", "y0")] * 2
            + [("g1", "r0", "y1")] * 2
            + [("g1", "r0", "y0")] * 18
        )
        result = registry.observe("m", skewed)
        [alert] = result.alerts
        assert alert.value == pytest.approx(0.8)

        # No checkpoint: reopening must replay the batch from the WAL.
        reopened = self.make_registry(tmp_path)
        monitor = reopened.get("m")
        assert monitor.config.rules == (
            MetricThresholdRule(
                "demographic_parity_difference", 0.4, severity="critical"
            ),
        )
        assert monitor.rows_seen == len(skewed)
        assert monitor._auditor.metric_values(
            ("demographic_parity_difference",)
        ) == {"demographic_parity_difference": alert.value}
        stored = reopened.store.query(monitor="m", kind="alert")
        assert [record["value"] for record in stored] == [alert.value]
        assert stored[0]["severity"] == "critical"
        # The replayed window state keeps alerting on fresh skewed data.
        follow_up = reopened.observe("m", skewed)
        assert [event.rule for event in follow_up.alerts] == [
            "metric_threshold"
        ]

    def test_wal_enabled_after_no_wal_run_counts_every_batch(self, tmp_path):
        # A durable registry run with the WAL disabled still advances
        # (and checkpoints) the apply cursor. Re-enabling the WAL starts
        # a log whose sequence counter is behind that cursor; without
        # reconciliation every new batch would be acked, recorded, and
        # yet silently skipped by the windowed auditor.
        rows = synthetic_rows(300)
        registry = MonitorRegistry.open(
            tmp_path / "data", clock=fake_clock(), wal_enabled=False
        )
        registry.create("m", NAMES[:2], NAMES[2], window=250, alpha=1.0)
        registry.observe("m", rows[:100])
        registry.observe("m", rows[100:200])
        registry.checkpoint_all()
        registry.close()

        reopened = self.make_registry(tmp_path)
        result = reopened.observe("m", rows[200:])
        assert result.batch_index == 3
        monitor = reopened.get("m")
        assert monitor.rows_seen == 300
        assert monitor.report().epsilon == offline_epsilon(rows, window=250)
        batch_records = reopened.store.query(monitor="m", kind="batch")
        assert [r["rows_seen"] for r in batch_records] == [100, 200, 300]
        reopened.close()
        # The WAL-era batch survives a further (uncheckpointed) restart:
        # it replays from the log instead of colliding with the cursor.
        survivor = self.make_registry(tmp_path)
        assert survivor.get("m").rows_seen == 300
        assert (
            survivor.report("m").epsilon == offline_epsilon(rows, window=250)
        )
        survivor.close()

    def test_repointed_wal_directory_counts_every_batch(self, tmp_path):
        # Deleting (or repointing) the WAL directory between runs leaves
        # a fresh log whose sequences restart at 1 while the checkpoint
        # cursor is ahead — the same silent-skip trap as a --no-wal run.
        import shutil

        rows = synthetic_rows(300)
        registry = self.make_registry(tmp_path)
        registry.create("m", NAMES[:2], NAMES[2], window=250, alpha=1.0)
        registry.observe("m", rows[:100])
        registry.observe("m", rows[100:200])
        registry.checkpoint_all()
        registry.close()
        shutil.rmtree(tmp_path / "data" / "wal")

        reopened = self.make_registry(tmp_path)
        result = reopened.observe("m", rows[200:])
        assert result.batch_index == 3
        monitor = reopened.get("m")
        assert monitor.rows_seen == 300
        assert monitor.report().epsilon == offline_epsilon(rows, window=250)
        reopened.close()

    def test_corrupt_newest_generation_falls_back(self, tmp_path):
        rows = synthetic_rows(400)
        registry = self.make_registry(tmp_path)
        registry.create("m", NAMES[:2], NAMES[2], alpha=1.0)
        registry.observe("m", rows[:200])
        registry.checkpoint_all()
        registry.observe("m", rows[200:300])
        registry.checkpoint_all()
        newest = tmp_path / "data" / "checkpoints" / "m.rcpk"
        blob = newest.read_bytes()
        newest.write_bytes(blob[: len(blob) // 2])  # torn final write

        reopened = self.make_registry(tmp_path)
        monitor = reopened.get("m")
        # The prior generation carries rows[:200]; the WAL suffix past
        # its apply cursor replays the second batch the torn newest
        # generation would have covered.
        assert monitor.rows_seen == 300
        monitor.observe(rows[300:])
        assert monitor.report().epsilon == offline_epsilon(rows)

    def test_delete_drops_checkpoint_generations(self, tmp_path):
        registry = self.make_registry(tmp_path)
        registry.create("m", ["gender"], "hired", alpha=1.0)
        registry.observe("m", [("g0", "y0"), ("g1", "y1")])
        registry.checkpoint_all()
        registry.checkpoint_all()
        checkpoints = tmp_path / "data" / "checkpoints"
        assert list(checkpoints.iterdir())
        registry.delete("m")
        assert list(checkpoints.iterdir()) == []
        assert self.make_registry(tmp_path).names() == []

    def test_checkpoint_all_requires_a_directory(self):
        registry = MonitorRegistry()
        registry.create("m", ["gender"], "hired")
        with pytest.raises(MonitorError, match="directory"):
            registry.checkpoint_all()

    def test_windowed_checkpoint_missing_shadow_is_loud(self, tmp_path):
        registry = self.make_registry(tmp_path)
        registry.create("m", ["gender"], "hired", window=10, alpha=1.0)
        registry.observe("m", [("g0", "y0"), ("g1", "y1")])
        path = registry.get("m").checkpoint(
            tmp_path / "data" / "checkpoints", keep=2
        )
        # Strip the shadow from the header to simulate a foreign writer.
        from repro.engine.checkpoint import (
            load_auditor_state,
            save_auditor_state,
        )

        state, progress = load_auditor_state(path)
        progress.pop("shadow")
        save_auditor_state(path, state, progress=progress)
        with pytest.raises(CheckpointError, match="shadow"):
            self.make_registry(tmp_path)


class TestConcurrentIngestion:
    """Satellite: 8 writer threads, one shared monitor + siblings, no
    lost updates, no lost or duplicated alerts."""

    N_THREADS = 8
    BATCHES_PER_THREAD = 12
    BATCH_ROWS = 25

    def test_threaded_stress_matches_single_threaded_merge(self, tmp_path):
        registry = MonitorRegistry(
            AuditHistoryStore(tmp_path / "history", clock=fake_clock())
        )
        always_fires = EpsilonThresholdRule(-1.0, severity="info")
        registry.create(
            "shared", NAMES[:2], NAMES[2], alpha=1.0, rules=[always_fires]
        )
        for which in range(self.N_THREADS):
            registry.create(
                f"sibling-{which}",
                NAMES[:2],
                NAMES[2],
                alpha=1.0,
                rules=[always_fires],
            )

        # Pre-generate every thread's batches so the expected merge is
        # exactly the multiset union, independent of interleaving.
        batches = {
            which: [
                synthetic_rows(self.BATCH_ROWS, seed=1000 * which + index)
                for index in range(self.BATCHES_PER_THREAD)
            ]
            for which in range(self.N_THREADS)
        }
        barrier = threading.Barrier(self.N_THREADS)
        failures: list[BaseException] = []

        def writer(which: int):
            try:
                barrier.wait()
                for batch in batches[which]:
                    registry.observe("shared", batch)
                    registry.observe(f"sibling-{which}", batch)
            except BaseException as error:  # noqa: BLE001 - surfaced below
                failures.append(error)

        threads = [
            threading.Thread(target=writer, args=(which,))
            for which in range(self.N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert failures == []

        # Final counts equal the single-threaded merge of all batches.
        all_rows = [
            row
            for which in range(self.N_THREADS)
            for batch in batches[which]
            for row in batch
        ]
        shared = registry.get("shared")
        assert shared.rows_seen == len(all_rows)
        assert shared.batches == self.N_THREADS * self.BATCHES_PER_THREAD
        assert shared.report().epsilon == offline_epsilon(all_rows)
        snapshot = shared.audit().sweep
        offline_sweep = FairnessAuditor(
            NAMES[:2], NAMES[2], estimator=1.0
        ).audit_dataset(Table.from_rows(NAMES, all_rows)).sweep
        assert snapshot.to_text() == offline_sweep.to_text()

        for which in range(self.N_THREADS):
            sibling_rows = [
                row for batch in batches[which] for row in batch
            ]
            assert registry.get(
                f"sibling-{which}"
            ).report().epsilon == offline_epsilon(sibling_rows)

        # No batch or alert record lost or duplicated: exactly one batch
        # record and one always-firing alert per applied batch, and the
        # shared monitor's batch indices are a permutation of 1..N.
        store = registry.store
        expected_shared = self.N_THREADS * self.BATCHES_PER_THREAD
        shared_batches = store.query(monitor="shared", kind="batch")
        shared_alerts = store.query(monitor="shared", kind="alert")
        assert len(shared_batches) == expected_shared
        assert len(shared_alerts) == expected_shared
        assert sorted(
            record["batch_index"] for record in shared_batches
        ) == list(range(1, expected_shared + 1))
        assert sorted(
            record["batch_index"] for record in shared_alerts
        ) == list(range(1, expected_shared + 1))
        for which in range(self.N_THREADS):
            assert (
                len(store.query(monitor=f"sibling-{which}", kind="batch"))
                == self.BATCHES_PER_THREAD
            )
            assert (
                len(store.query(monitor=f"sibling-{which}", kind="alert"))
                == self.BATCHES_PER_THREAD
            )

        # Each monitor's history is internally ordered: the store append
        # happens inside the monitor lock, so batch indices increase
        # with the global sequence.
        indices = [record["batch_index"] for record in shared_batches]
        assert indices == sorted(indices)
