"""Integration tests for the telemetry wiring through the hot paths.

The registry/trace primitives are unit-tested in ``test_obs_metrics``
and ``test_obs_trace``; this module checks the *wiring*: WAL and
``Monitor.observe`` instrument counts after real work, the pool-leak
destructor counter, the scan-report schemas the CLI exposes, the
service's ``/metrics``/``/metrics.json``/``/healthz`` surfaces (strict
JSON under concurrent load), and the ``metrics-snapshot`` /
``audit-stream --trace-out`` commands end to end.
"""

from __future__ import annotations

import itertools
import json
import logging
import threading
import urllib.request

import numpy as np
import pytest

from faults import FaultyFileSystem
from repro.cli import main
from repro.engine.backends import ProcessPoolBackend
from repro.exceptions import WalError
from repro.monitor.fleet import fleet_status_snapshot
from repro.monitor.registry import MonitorConfig, MonitorRegistry
from repro.monitor.service import MonitorService
from repro.monitor.wal import WriteAheadLog, inspect_wal
from repro.obs.metrics import (
    PROMETHEUS_CONTENT_TYPE,
    MetricsRegistry,
    reset_default_registry,
)
from repro.tabular.csv_io import write_csv
from repro.tabular.table import Table

pytestmark = pytest.mark.obs

NAMES = ["gender", "race", "hired"]

BASE_CONFIG = {
    "name": "hiring",
    "protected": NAMES[:2],
    "outcome": NAMES[2],
    "alpha": 1.0,
}


def fake_clock(start: float = 1_700_000_000.0, step: float = 1.0):
    counter = itertools.count()
    return lambda: start + step * float(next(counter))


def synthetic_rows(n_rows: int, seed: int = 5) -> list[list[str]]:
    rng = np.random.default_rng(seed)
    return [
        [f"g{rng.integers(2)}", f"r{rng.integers(3)}", f"y{rng.integers(2)}"]
        for _ in range(n_rows)
    ]


def series_value(registry, family: str, **labels):
    """The value/count of one series from a registry state_dict."""
    families = registry.state_dict()["families"]
    if family not in families:
        return None
    for series in families[family]["series"]:
        if series["labels"] == labels:
            return series.get("value", series.get("count"))
    return None


class TestWalTelemetry:
    def test_append_fsync_and_group_commit_counts(self, tmp_path):
        registry = MetricsRegistry()
        wal = WriteAheadLog(
            tmp_path / "wal", metrics=registry, metric_labels={"monitor": "m"}
        )
        for index in range(3):
            wal.append({"rows": [["a", "b", "y"]], "batch": index})
        wal.close()
        labels = {"monitor": "m"}
        assert series_value(registry, "repro_wal_appends_total", **labels) == 3
        fsyncs = series_value(registry, "repro_wal_fsyncs_total", **labels)
        assert 1 <= fsyncs <= 3
        assert (
            series_value(registry, "repro_wal_append_seconds", **labels) == 3
        )
        # one group-commit observation per fsync, covering all 3 appends
        commits = registry.state_dict()["families"][
            "repro_wal_group_commit_records"
        ]["series"][0]
        assert commits["count"] == fsyncs
        assert commits["sum"] == 3
        assert series_value(registry, "repro_wal_degraded", **labels) == 0

    def test_degraded_transitions_are_counted(self, tmp_path):
        filesystem = FaultyFileSystem()
        # fsync #1 seals the new segment header; #2 is the first append
        filesystem.fail_fsync_at = {2}
        registry = MetricsRegistry()
        wal = WriteAheadLog(
            tmp_path / "wal",
            filesystem=filesystem,
            metrics=registry,
            clock=fake_clock(step=10.0),  # each call jumps past the probe
        )
        with pytest.raises(WalError):
            wal.append({"rows": []})
        assert series_value(registry, "repro_wal_degraded") == 1
        assert (
            series_value(
                registry,
                "repro_wal_degraded_transitions_total",
                direction="enter",
            )
            == 1
        )
        # The next probe append succeeds and clears the degraded state.
        wal.append({"rows": []})
        wal.close()
        assert series_value(registry, "repro_wal_degraded") == 0
        assert (
            series_value(
                registry,
                "repro_wal_degraded_transitions_total",
                direction="clear",
            )
            == 1
        )


class TestObserveTelemetry:
    def test_observe_stage_and_dedup_counters(self, tmp_path):
        registry = MonitorRegistry.open(tmp_path / "data", clock=fake_clock())
        config = dict(
            BASE_CONFIG,
            rules=[{"type": "epsilon_threshold", "threshold": 0.0}],
        )
        registry.create_from_config(MonitorConfig.from_dict(config))
        monitor = registry.get("hiring")
        rows = synthetic_rows(40)
        monitor.observe(rows, batch_id="b0")
        monitor.observe(synthetic_rows(20, seed=7), batch_id="b1")
        duplicate = monitor.observe(rows, batch_id="b0")
        assert duplicate.duplicate
        registry.close()

        metrics = registry.metrics
        labels = {"monitor": "hiring"}
        assert (
            series_value(metrics, "repro_observe_rows_total", **labels) == 60
        )
        assert (
            series_value(metrics, "repro_observe_batches_total", **labels)
            == 2
        )
        assert (
            series_value(metrics, "repro_observe_duplicates_total", **labels)
            == 1
        )
        assert (
            series_value(metrics, "repro_observe_seconds", **labels) == 2
        )
        for stage in ("admit", "wal_append", "apply", "alerts"):
            assert (
                series_value(
                    metrics, "repro_observe_stage_seconds", stage=stage, **labels
                )
                == 2
            ), stage
        # threshold 0.0 fires on every applied batch
        assert (
            series_value(
                metrics,
                "repro_alert_rule_seconds",
                rule="EpsilonThresholdRule",
                **labels,
            )
            == 2
        )
        assert (
            series_value(
                metrics,
                "repro_alerts_fired_total",
                rule="EpsilonThresholdRule",
                **labels,
            )
            == 2
        )


@pytest.mark.parallel
class TestPoolLifecycle:
    def test_reclaimed_backend_without_close_is_counted(self, caplog):
        registry = MetricsRegistry()
        backend = ProcessPoolBackend(workers=1, metrics=registry)
        backend._ensure_pool()
        with caplog.at_level(logging.WARNING, "repro.engine.backends"):
            backend.__del__()
        assert series_value(registry, "repro_pool_leaked_total") == 1
        assert any(
            "garbage-collected with a live worker pool" in record.message
            for record in caplog.records
        )

    def test_closed_backend_is_not_a_leak(self, caplog):
        registry = MetricsRegistry()
        backend = ProcessPoolBackend(workers=1, metrics=registry)
        backend._ensure_pool()
        backend.close()
        with caplog.at_level(logging.WARNING, "repro.engine.backends"):
            backend.__del__()
        assert series_value(registry, "repro_pool_leaked_total") == 0
        assert not caplog.records


class TestScanSchemas:
    """Satellite (b): the offline scan reports are a stable contract."""

    WAL_REPORT_KEYS = {
        "directory",
        "segments",
        "n_segments",
        "records",
        "rows",
        "first_seq",
        "last_seq",
        "scan_seconds",
    }
    SEGMENT_KEYS = {
        "segment",
        "bytes",
        "records",
        "first_seq",
        "last_seq",
        "torn_bytes",
    }
    SCAN_KEYS = {
        "seconds",
        "history_segments",
        "history_records",
        "monitors",
    }

    def _ingest(self, directory, n_rows=30):
        registry = MonitorRegistry.open(directory, clock=fake_clock())
        registry.create_from_config(MonitorConfig.from_dict(BASE_CONFIG))
        registry.get("hiring").observe(synthetic_rows(n_rows))
        registry.close()

    def test_wal_inspect_json_schema_is_stable(self, tmp_path, capsys):
        self._ingest(tmp_path / "data")
        assert (
            main(["wal-inspect", "--data-dir", str(tmp_path / "data"), "--json"])
            == 0
        )
        reports = json.loads(capsys.readouterr().out)
        assert set(reports) == {"hiring"}
        report = reports["hiring"]
        assert set(report) == self.WAL_REPORT_KEYS
        assert report["n_segments"] == len(report["segments"]) == 1
        assert set(report["segments"][0]) == self.SEGMENT_KEYS
        assert report["scan_seconds"] >= 0.0
        # and inspect_wal records the scan into a given registry
        registry = MetricsRegistry()
        wal_dir = tmp_path / "data" / "wal" / "hiring"
        inspect_wal(wal_dir, metrics=registry)
        assert series_value(registry, "repro_scan_seconds", scope="wal") == 1
        assert (
            series_value(registry, "repro_wal_records")
            == report["records"]
        )

    def test_fleet_status_scan_block(self, tmp_path, capsys):
        for index in range(2):
            self._ingest(tmp_path / f"shard-{index:02d}")
        snapshot = fleet_status_snapshot(tmp_path)
        scan = snapshot["scan"]
        assert set(scan) == self.SCAN_KEYS | {"shards_scanned"}
        assert scan["shards_scanned"] == 2
        assert scan["monitors"] == 2
        assert scan["history_records"] == 2  # one batch per shard
        assert scan["history_segments"] >= 2
        assert scan["seconds"] >= 0.0
        assert main(["fleet-status", "--data-dir", str(tmp_path)]) == 0
        text = capsys.readouterr().out
        assert "scan: 2 shard(s)" in text


def _http(url: str):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.read().decode(), dict(
            response.headers
        )


def strict_json(text: str):
    """json.loads that rejects Infinity/NaN literals (strict JSON)."""

    def reject(value):
        raise AssertionError(f"non-strict JSON literal {value!r}")

    return json.loads(text, parse_constant=reject)


@pytest.mark.service
class TestServiceMetricsSurface:
    @pytest.fixture
    def service(self, tmp_path):
        registry = MonitorRegistry.open(tmp_path / "data", clock=fake_clock())
        service = MonitorService(registry).start()
        yield service
        service.shutdown()

    def _create_and_observe(self, service, n_rows=30):
        request = urllib.request.Request(
            service.url + "/monitors",
            data=json.dumps(BASE_CONFIG).encode(),
            method="POST",
        )
        urllib.request.urlopen(request, timeout=10).read()
        request = urllib.request.Request(
            service.url + "/monitors/hiring/observe",
            data=json.dumps({"rows": synthetic_rows(n_rows)}).encode(),
            method="POST",
        )
        urllib.request.urlopen(request, timeout=10).read()

    def test_metrics_text_and_json_agree(self, service):
        self._create_and_observe(service, n_rows=30)
        status, text, headers = _http(service.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        assert 'repro_observe_rows_total{monitor="hiring"} 30' in text
        status, body, headers = _http(service.url + "/metrics.json")
        assert status == 200
        assert "application/json" in headers["Content-Type"]
        restored = MetricsRegistry.from_state(strict_json(body))
        assert restored.render_prometheus() == text

    def test_healthz_is_strict_json_under_concurrent_load(self, service):
        self._create_and_observe(service)
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                request = urllib.request.Request(
                    service.url + "/monitors/hiring/observe",
                    data=json.dumps(
                        {"rows": synthetic_rows(10)}
                    ).encode(),
                    method="POST",
                )
                urllib.request.urlopen(request, timeout=10).read()

        threads = [threading.Thread(target=hammer) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(10):
                status, body, _ = _http(service.url + "/healthz")
                assert status == 200
                health = strict_json(body)  # raises on Infinity/NaN
                latency = health["latency"]
                assert latency["observe_seconds"]["count"] >= 1
                for summary in latency.values():
                    for band in summary["bands"].values():
                        # +Inf overflow bands arrive as the string "inf"
                        assert band is None or isinstance(
                            band, (int, float, str)
                        )
        finally:
            stop.set()
            for thread in threads:
                thread.join()

    def test_healthz_with_empty_histograms_is_strict_json(self, tmp_path):
        registry = MonitorRegistry.open(tmp_path / "data", clock=fake_clock())
        registry.create_from_config(MonitorConfig.from_dict(BASE_CONFIG))
        service = MonitorService(registry).start()
        try:
            status, body, _ = _http(service.url + "/healthz")
            assert status == 200
            health = strict_json(body)
            summary = health["latency"]["observe_seconds"]
            assert summary["count"] == 0
            assert set(summary["bands"].values()) == {None}
        finally:
            service.shutdown()


class TestCliSurfaces:
    def test_metrics_snapshot_merges_shards(self, tmp_path, capsys):
        for index in range(2):
            directory = tmp_path / f"shard-{index:02d}"
            registry = MonitorRegistry.open(directory, clock=fake_clock())
            registry.create_from_config(
                MonitorConfig.from_dict(BASE_CONFIG)
            )
            registry.get("hiring").observe(synthetic_rows(10 + index))
            registry.close()
        assert main(["metrics-snapshot", str(tmp_path)]) == 0
        page = capsys.readouterr().out
        # 1 batch per shard, merged: the WAL scan saw 2 records total
        assert 'repro_wal_records{monitor="hiring"} 2' in page
        assert 'repro_wal_rows{monitor="hiring"} 21' in page
        assert 'scope="status"' in page and 'scope="wal"' in page

    def test_metrics_snapshot_missing_dir(self, tmp_path, capsys):
        assert main(["metrics-snapshot", str(tmp_path / "absent")]) == 2

    def test_audit_stream_trace_out(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        rows = [tuple(row) for row in synthetic_rows(600)]
        write_csv(Table.from_rows(NAMES, rows), tmp_path / "hiring.csv")
        trace_path = tmp_path / "trace.json"
        assert (
            main(
                [
                    "audit-stream",
                    "hiring.csv",
                    "--protected",
                    "gender,race",
                    "--outcome",
                    "hired",
                    "--chunk-rows",
                    "200",
                    "--trace-out",
                    str(trace_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "trace: wrote" in out
        assert not trace_path.with_suffix(".json.jsonl").exists()
        payload = json.loads(trace_path.read_text(encoding="utf-8"))
        events = payload["traceEvents"]
        names = {event["name"] for event in events}
        assert {"ingest", "parse", "merge"} <= names
        by_id = {event["args"]["span_id"]: event for event in events}
        ingest_ids = {
            event["args"]["span_id"]
            for event in events
            if event["name"] == "ingest"
        }
        nested = [
            event
            for event in events
            if event["name"] in ("parse", "decode", "merge")
        ]
        assert len(nested) >= 3 * 1  # three chunks, at least parse+merge
        for event in nested:
            parent = event["args"].get("parent_span_id")
            assert parent in by_id
            # every pipeline stage nests (transitively) under an ingest
            while parent is not None and parent not in ingest_ids:
                parent = by_id[parent]["args"].get("parent_span_id")
            assert parent in ingest_ids


def test_default_registry_isolation():
    """Module-global default registry cleanup for other obs tests."""
    fresh = reset_default_registry()
    assert fresh.state_dict()["families"] == {}
