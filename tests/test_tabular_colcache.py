"""Tests for the ``.rccol`` columnar binary cache.

Two properties carry the whole feature. **Round-trip bit-identity**:
codes and level tables read back from the mmap'd cache must equal what
parsing the CSV directly produces — per chunk, not just in aggregate —
for plain categorical columns, schema-typed columns, and chunks that
see only a subset of the file's levels. **Loud staleness**: a cache
that no longer describes its source (append, rewrite, header edit) or
that failed validation (truncation, bit rot, foreign bytes) raises
:class:`CacheError`; it is never silently read, and only *stale* (not
corrupt) caches are ever rebuilt.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import CacheError, CsvParseError
from repro.tabular.colcache import (
    COLCACHE_MAGIC,
    COLCACHE_VERSION,
    ColumnCache,
    build_column_cache,
    ensure_column_cache,
)
from repro.tabular.csv_io import CsvPlan, iter_csv_chunks, read_csv
from repro.tabular.schema import Field, Schema

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    HAVE_HYPOTHESIS = False


def write_csv(path, rows, header="gender,race,hired"):
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(header + "\n")
        for row in rows:
            handle.write(",".join(str(cell) for cell in row) + "\n")
    return path


def small_rows(n=257, seed=9):
    rng = np.random.default_rng(seed)
    return [
        (f"g{rng.integers(3)}", f"r{rng.integers(4)}", f"y{rng.integers(2)}")
        for _ in range(n)
    ]


@pytest.fixture
def cached(tmp_path):
    """A written CSV, its plan, and a freshly built cache path."""
    csv_path = write_csv(tmp_path / "data.csv", small_rows())
    plan = CsvPlan.from_csv(csv_path)
    cache_path = tmp_path / "data.rccol"
    build_column_cache(csv_path, plan, cache_path)
    return csv_path, plan, cache_path


class TestRoundTrip:
    def test_codes_and_levels_match_direct_parse(self, cached):
        csv_path, plan, cache_path = cached
        table = read_csv(csv_path)
        with ColumnCache.open(
            cache_path, source_path=csv_path, plan=plan
        ) as cache:
            assert cache.n_rows == table.n_rows
            assert cache.column_names == plan.selected_names
            for name in cache.column_names:
                parsed = table.column(name)
                assert cache.levels(name) == parsed.levels
                assert np.array_equal(cache.codes(name), parsed.codes)

    def test_chunk_tables_are_bitwise_equal_to_parsed_chunks(self, cached):
        csv_path, plan, cache_path = cached
        parsed = list(iter_csv_chunks(csv_path, 64, plan=plan))
        with ColumnCache.open(cache_path) as cache:
            rebuilt = list(cache.chunk_tables(64))
        assert len(rebuilt) == len(parsed)
        for left, right in zip(parsed, rebuilt):
            assert left.to_dict() == right.to_dict()
            for name in left.column_names:
                # Same level tables AND the same integer codes, not
                # merely the same decoded values: the streaming layer
                # grows axes in level order, so order must match too.
                assert left.column(name).levels == right.column(name).levels
                assert np.array_equal(
                    left.column(name).codes, right.column(name).codes
                )

    def test_unseen_levels_are_narrowed_per_chunk(self, tmp_path):
        # 'g2' appears only in the last chunk; earlier chunk tables must
        # not mention it, exactly like the parse path.
        rows = [("g0", "r0", "y0")] * 100 + [("g2", "r1", "y1")] * 4
        csv_path = write_csv(tmp_path / "tail.csv", rows)
        plan = CsvPlan.from_csv(csv_path)
        cache_path = tmp_path / "tail.rccol"
        build_column_cache(csv_path, plan, cache_path)
        with ColumnCache.open(cache_path) as cache:
            chunks = list(cache.chunk_tables(100))
        assert chunks[0].column("gender").levels == ("g0",)
        assert chunks[1].column("gender").levels == ("g2",)
        parsed = list(iter_csv_chunks(csv_path, 100, plan=plan))
        for left, right in zip(parsed, chunks):
            assert left.to_dict() == right.to_dict()

    def test_schema_typed_columns_round_trip(self, tmp_path):
        rows = [
            ("a", "1.5", "true"),
            ("b", "2.0", "false"),
            ("a", "1.5", "true"),
            ("c", "-3.25", "false"),
        ]
        csv_path = write_csv(tmp_path / "typed.csv", rows, header="k,x,flag")
        schema = Schema([Field("x", "numeric"), Field("flag", "boolean")])
        plan = CsvPlan.from_csv(csv_path, schema=schema)
        cache_path = tmp_path / "typed.rccol"
        build_column_cache(csv_path, plan, cache_path)
        parsed = list(iter_csv_chunks(csv_path, 3, plan=plan))
        with ColumnCache.open(cache_path, plan=plan) as cache:
            rebuilt = list(cache.chunk_tables(3, schema=schema))
        for left, right in zip(parsed, rebuilt):
            assert left.to_dict() == right.to_dict()
            assert [c.kind for c in left.columns] == [
                c.kind for c in right.columns
            ]

    def test_projection_is_respected(self, tmp_path):
        csv_path = write_csv(tmp_path / "proj.csv", small_rows(50))
        plan = CsvPlan.from_csv(csv_path, columns=["race", "hired"])
        cache_path = tmp_path / "proj.rccol"
        build_column_cache(csv_path, plan, cache_path)
        with ColumnCache.open(cache_path, plan=plan) as cache:
            assert cache.column_names == ("race", "hired")

    def test_full_table_matches_whole_file(self, cached):
        csv_path, plan, cache_path = cached
        table = read_csv(csv_path)
        with ColumnCache.open(cache_path) as cache:
            full = cache.full_table()
        assert full.to_dict() == table.to_dict()


if HAVE_HYPOTHESIS:

    @st.composite
    def csv_matrix(draw):
        """Rows over small alphabets, plus an optional numeric column."""
        n_rows = draw(st.integers(min_value=1, max_value=120))
        alphabet_a = draw(
            st.lists(
                st.text(
                    alphabet="abcXYZ 0189_.;|", min_size=0, max_size=6
                ).map(str.strip),
                min_size=1,
                max_size=8,
                unique=True,
            )
        )
        numbers = ["0", "1.5", "-2.25", "1e3", "7", "-0.5"]
        rows = [
            (
                draw(st.sampled_from(alphabet_a)),
                draw(st.sampled_from(numbers)),
                draw(st.sampled_from(["y", "n"])),
            )
            for _ in range(n_rows)
        ]
        chunk_rows = draw(st.integers(min_value=1, max_value=n_rows + 3))
        use_schema = draw(st.booleans())
        return rows, chunk_rows, use_schema

    class TestRoundTripProperty:
        @settings(max_examples=40, deadline=None)
        @given(data=csv_matrix())
        def test_cache_chunks_equal_parsed_chunks(self, data, tmp_path_factory):
            rows, chunk_rows, use_schema = data
            tmp_path = tmp_path_factory.mktemp("colcache")
            csv_path = write_csv(tmp_path / "prop.csv", rows, header="k,x,y")
            schema = (
                Schema([Field("x", "numeric")]) if use_schema else None
            )
            plan = CsvPlan.from_csv(csv_path, schema=schema)
            cache_path = tmp_path / "prop.rccol"
            build_column_cache(csv_path, plan, cache_path)
            parsed = list(iter_csv_chunks(csv_path, chunk_rows, plan=plan))
            with ColumnCache.open(
                cache_path, source_path=csv_path, plan=plan
            ) as cache:
                rebuilt = list(
                    cache.chunk_tables(chunk_rows, schema=schema)
                )
            assert len(rebuilt) == len(parsed)
            for left, right in zip(parsed, rebuilt):
                assert left.to_dict() == right.to_dict()
                for name in left.column_names:
                    assert (
                        left.column(name).kind == right.column(name).kind
                    )
                    if left.column(name).kind != "categorical":
                        continue
                    assert (
                        left.column(name).levels == right.column(name).levels
                    )
                    assert np.array_equal(
                        left.column(name).codes, right.column(name).codes
                    )


class TestCorruptionMatrix:
    def test_missing_cache(self, tmp_path):
        with pytest.raises(CacheError, match="does not exist") as excinfo:
            ColumnCache.open(tmp_path / "ghost.rccol")
        assert excinfo.value.reason == "missing"

    def test_truncated_preamble(self, tmp_path):
        path = tmp_path / "tiny.rccol"
        path.write_bytes(b"RC")
        with pytest.raises(CacheError, match="truncated") as excinfo:
            ColumnCache.open(path)
        assert excinfo.value.reason == "truncated"

    def test_truncated_payload(self, cached):
        _, _, cache_path = cached
        blob = cache_path.read_bytes()
        cache_path.write_bytes(blob[:-10])
        with pytest.raises(CacheError, match="truncated") as excinfo:
            ColumnCache.open(cache_path)
        assert excinfo.value.reason == "truncated"

    def test_bad_magic(self, cached):
        _, _, cache_path = cached
        blob = bytearray(cache_path.read_bytes())
        blob[:4] = b"ZZZZ"
        cache_path.write_bytes(bytes(blob))
        with pytest.raises(CacheError, match="not a column cache") as excinfo:
            ColumnCache.open(cache_path)
        assert excinfo.value.reason == "magic"

    def test_future_version(self, cached):
        _, _, cache_path = cached
        blob = bytearray(cache_path.read_bytes())
        blob[4] = COLCACHE_VERSION + 1
        cache_path.write_bytes(bytes(blob))
        with pytest.raises(CacheError, match="format version") as excinfo:
            ColumnCache.open(cache_path)
        assert excinfo.value.reason == "version"

    def test_header_bit_flip(self, cached):
        _, _, cache_path = cached
        blob = bytearray(cache_path.read_bytes())
        blob[30] ^= 0x40
        cache_path.write_bytes(bytes(blob))
        with pytest.raises(CacheError, match="CRC") as excinfo:
            ColumnCache.open(cache_path)
        assert excinfo.value.reason == "crc"

    def test_payload_bit_flip(self, cached):
        _, _, cache_path = cached
        blob = bytearray(cache_path.read_bytes())
        blob[-3] ^= 0x01
        cache_path.write_bytes(bytes(blob))
        with pytest.raises(CacheError, match="CRC") as excinfo:
            ColumnCache.open(cache_path)
        assert excinfo.value.reason == "crc"

    def test_stale_after_source_append(self, cached):
        csv_path, plan, cache_path = cached
        with open(csv_path, "a", encoding="utf-8") as handle:
            handle.write("g9,r9,y1\n")
        with pytest.raises(CacheError, match="stale") as excinfo:
            ColumnCache.open(cache_path, source_path=csv_path)
        assert excinfo.value.reason == "stale"
        # Without the source path the file itself still validates: the
        # staleness check is against the live source, not the bytes.
        ColumnCache.open(cache_path).close()

    def test_stale_after_header_edit_same_size(self, cached):
        csv_path, plan, cache_path = cached
        import os

        blob = csv_path.read_bytes()
        stat = csv_path.stat()
        csv_path.write_bytes(b"GENDER" + blob[6:])
        # Restore size+mtime so only the prologue CRC can catch it.
        os.utime(csv_path, ns=(stat.st_atime_ns, stat.st_mtime_ns))
        with pytest.raises(CacheError, match="stale"):
            ColumnCache.open(cache_path, source_path=csv_path)

    def test_plan_mismatch(self, cached):
        csv_path, _, cache_path = cached
        other = CsvPlan.from_csv(csv_path, columns=["hired"])
        with pytest.raises(CacheError, match="parse options") as excinfo:
            ColumnCache.open(cache_path, plan=other)
        assert excinfo.value.reason == "plan"

    def test_source_deleted(self, cached):
        csv_path, _, cache_path = cached
        csv_path.unlink()
        with pytest.raises(CacheError, match="no longer exists") as excinfo:
            ColumnCache.open(cache_path, source_path=csv_path)
        assert excinfo.value.reason == "stale"


class TestEnsure:
    def test_builds_when_missing(self, tmp_path):
        csv_path = write_csv(tmp_path / "fresh.csv", small_rows(40))
        plan = CsvPlan.from_csv(csv_path)
        cache_path = tmp_path / "fresh.rccol"
        with ensure_column_cache(csv_path, plan, cache_path) as cache:
            assert cache.n_rows == 40
        assert cache_path.exists()

    def test_rebuilds_when_stale_and_audits_fresh_rows(self, cached):
        csv_path, plan, cache_path = cached
        with open(csv_path, "a", encoding="utf-8") as handle:
            handle.write("gNEW,rNEW,y1\n")
        with ensure_column_cache(csv_path, plan, cache_path) as cache:
            assert cache.n_rows == 258
            assert "gNEW" in cache.levels("gender")

    def test_refuses_to_rebuild_over_corruption(self, cached):
        csv_path, plan, cache_path = cached
        blob = bytearray(cache_path.read_bytes())
        blob[-3] ^= 0x01
        cache_path.write_bytes(bytes(blob))
        with pytest.raises(CacheError) as excinfo:
            ensure_column_cache(csv_path, plan, cache_path)
        assert excinfo.value.reason == "crc"

    def test_reuses_valid_cache_without_rewriting(self, cached):
        csv_path, plan, cache_path = cached
        before = cache_path.stat().st_mtime_ns
        with ensure_column_cache(csv_path, plan, cache_path) as cache:
            assert cache.n_rows == 257
        assert cache_path.stat().st_mtime_ns == before


class TestPlanHelpers:
    def test_plan_to_and_from_column_cache(self, tmp_path):
        csv_path = write_csv(tmp_path / "via.csv", small_rows(30))
        plan = CsvPlan.from_csv(csv_path, columns=["gender", "hired"])
        cache_path = plan.to_column_cache(csv_path, tmp_path / "via.rccol")
        with plan.from_column_cache(cache_path, source_path=csv_path) as cache:
            assert cache.column_names == ("gender", "hired")
            assert cache.n_rows == 30

    def test_empty_cache_chunk_tables_raise_like_csv(self, tmp_path):
        csv_path = write_csv(tmp_path / "short.csv", small_rows(5))
        plan = CsvPlan.from_csv(csv_path)
        cache_path = tmp_path / "short.rccol"
        build_column_cache(csv_path, plan, cache_path)
        with ColumnCache.open(cache_path) as cache:
            with pytest.raises(CsvParseError, match="chunk_rows"):
                list(cache.chunk_tables(0))
            # skip past the end is not an error, matching iter_csv_chunks
            assert list(cache.chunk_tables(4, skip_rows=100)) == []
