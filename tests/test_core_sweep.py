"""Tests for repro.core.sweep — the one-pass subset-sweep engine.

Three contracts are pinned down here:

* the engine's point sweep is *bit-identical* to the seed path (one
  ``edf_from_contingency`` per marginalised subset), for both estimators
  and including empty-group / zero-cell / vacuous-subset conventions;
* ``posterior_subset_sweep``'s marginalised draws are exact posterior
  samples: bit-identical to :func:`posterior_epsilon_samples` for the
  full intersection, and distributed as fresh per-subset Dirichlet draws
  (aggregated prior) for every proper subset (KS + moment checks);
* the vectorised :func:`privacy_violations` returns exactly the looped
  implementation's triples.
"""

import math
import time

import numpy as np
import pytest
from scipy import stats

from repro.core.batch import epsilon_batch, stack_padded, witness_batch
from repro.core.bayesian import posterior_epsilon, posterior_epsilon_samples
from repro.core.empirical import edf_from_contingency
from repro.core.epsilon import epsilon_from_probabilities
from repro.core.privacy import posterior_group_probabilities, privacy_violations
from repro.core.subsets import all_nonempty_subsets, subset_sweep
from repro.core.sweep import (
    PosteriorSubsetSweep,
    marginal_count_lattice,
    posterior_subset_sweep,
    sweep_results,
)
from repro.distributions.dirichlet import GroupOutcomePosterior
from repro.exceptions import ValidationError
from repro.tabular.crosstab import ContingencyTable
from repro.tabular.table import Table


def random_contingency(
    seed: int,
    level_counts=(2, 3, 2),
    n_outcomes: int = 3,
    empty_group_slices=(),
    zero_cells=(),
) -> ContingencyTable:
    rng = np.random.default_rng(seed)
    shape = tuple(level_counts) + (n_outcomes,)
    counts = rng.integers(1, 40, size=shape).astype(float)
    for index in empty_group_slices:
        counts[index] = 0.0
    for index in zero_cells:
        counts[index] = 0.0
    names = [f"attr{axis}" for axis in range(len(level_counts))]
    levels = [
        tuple(f"l{axis}{code}" for code in range(count))
        for axis, count in enumerate(level_counts)
    ]
    return ContingencyTable(
        counts, names, levels, "y", tuple(f"y{i}" for i in range(n_outcomes))
    )


def seed_path_results(contingency, estimator=None):
    """The seed implementation of subset_sweep's body, verbatim in spirit."""
    results = {}
    for subset in all_nonempty_subsets(contingency.factor_names):
        marginal = contingency.marginalize(list(subset))
        results[subset] = edf_from_contingency(marginal, estimator)
    return results


def assert_results_identical(got, want):
    assert set(got) == set(want)
    for subset, reference in want.items():
        result = got[subset]
        assert result.epsilon == reference.epsilon or (
            math.isinf(result.epsilon) and math.isinf(reference.epsilon)
        ), subset
        assert np.array_equal(
            result.probabilities, reference.probabilities, equal_nan=True
        ), subset
        assert np.array_equal(result.group_mass, reference.group_mass), subset
        assert result.group_labels == reference.group_labels
        assert result.attribute_names == reference.attribute_names
        assert result.outcome_levels == reference.outcome_levels
        assert result.estimator == reference.estimator
        for outcome, want_eps in reference.per_outcome.items():
            got_eps = result.per_outcome[outcome]
            assert (math.isnan(want_eps) and math.isnan(got_eps)) or (
                got_eps == want_eps
            ), (subset, outcome)
        assert (result.witness is None) == (reference.witness is None), subset
        if reference.witness is not None:
            assert result.witness == reference.witness, subset


class TestPointSweepAgainstSeedPath:
    @pytest.mark.parametrize("estimator", [None, 1.0, 0.25])
    def test_clean_counts(self, estimator):
        contingency = random_contingency(seed=0)
        assert_results_identical(
            sweep_results(contingency, estimator),
            seed_path_results(contingency, estimator),
        )

    @pytest.mark.parametrize("estimator", [None, 1.0])
    def test_empty_groups(self, estimator):
        # A whole (attr0=l00, attr1=l11) slice is unobserved: its groups
        # are excluded from the intersection and partially from subsets.
        contingency = random_contingency(
            seed=1, empty_group_slices=[(0, 1)]
        )
        assert_results_identical(
            sweep_results(contingency, estimator),
            seed_path_results(contingency, estimator),
        )

    def test_zero_cells_give_matching_infinities(self):
        # An outcome impossible for one group but not others: epsilon inf
        # under the plug-in estimator, finite under smoothing.
        contingency = random_contingency(seed=2, zero_cells=[(0, 0, 0, 0)])
        plug_in = sweep_results(contingency, None)
        assert math.isinf(
            plug_in[tuple(contingency.factor_names)].epsilon
        )
        assert_results_identical(plug_in, seed_path_results(contingency, None))
        assert_results_identical(
            sweep_results(contingency, 1.0), seed_path_results(contingency, 1.0)
        )

    def test_vacuous_subsets(self):
        # Only one populated level of attr0: the (attr0,) subset has a
        # single populated group, so its epsilon is vacuously zero.
        contingency = random_contingency(
            seed=3, level_counts=(2, 2), n_outcomes=2, empty_group_slices=[(1,)]
        )
        results = sweep_results(contingency)
        reference = seed_path_results(contingency)
        assert results[("attr0",)].epsilon == 0.0
        assert results[("attr0",)].witness is None
        assert_results_identical(results, reference)

    def test_single_attribute(self):
        contingency = random_contingency(seed=4, level_counts=(4,))
        assert_results_identical(
            sweep_results(contingency), seed_path_results(contingency)
        )

    def test_subset_sweep_wires_through_engine(self, hiring_table):
        sweep = subset_sweep(
            hiring_table, protected=["gender", "race"], outcome="hired"
        )
        assert sweep.full_epsilon == pytest.approx(math.log(3))
        contingency = ContingencyTable.from_table(
            hiring_table, ["gender", "race"], "hired"
        )
        assert_results_identical(
            sweep.results, seed_path_results(contingency)
        )


class TestMarginalCountLattice:
    def test_matches_direct_root_sums(self):
        rng = np.random.default_rng(5)
        tensor = rng.random((2, 3, 4, 2))
        lattice = marginal_count_lattice(tensor, 3)
        assert np.allclose(lattice[(0, 1, 2)], tensor)
        assert np.allclose(lattice[(0, 2)], tensor.sum(axis=1))
        assert np.allclose(lattice[(1,)], tensor.sum(axis=(0, 2)))
        assert len(lattice) == 7

    def test_integer_counts_are_exact(self):
        rng = np.random.default_rng(6)
        tensor = rng.integers(0, 100, size=(2, 2, 3, 2)).astype(float)
        lattice = marginal_count_lattice(tensor, 3)
        assert np.array_equal(lattice[(2,)], tensor.sum(axis=(0, 1)))
        assert np.array_equal(lattice[(0,)], tensor.sum(axis=(1, 2)))

    def test_lead_axes_preserved(self):
        rng = np.random.default_rng(7)
        tensor = rng.random((5, 2, 3, 2))
        lattice = marginal_count_lattice(tensor, 2, lead_axes=1)
        assert lattice[(0,)].shape == (5, 2, 2)
        assert np.allclose(lattice[(1,)], tensor.sum(axis=1))

    def test_validation(self):
        with pytest.raises(ValidationError):
            marginal_count_lattice(np.zeros((2, 2)), 0)
        with pytest.raises(ValidationError):
            marginal_count_lattice(np.zeros(3), 2, lead_axes=1)


class TestStackPadded:
    def test_pads_with_nan_rows(self):
        stacked = stack_padded([np.ones((2, 3)), np.ones((4, 3))])
        assert stacked.shape == (2, 4, 3)
        assert np.isnan(stacked[0, 2:]).all()
        assert not np.isnan(stacked[1]).any()

    def test_padding_is_excluded_by_kernels(self, rng):
        blocks = [
            rng.dirichlet(np.ones(3), size=4),
            rng.dirichlet(np.ones(3), size=2),
        ]
        stacked = stack_padded(blocks)
        batched = epsilon_batch(stacked)
        for index, block in enumerate(blocks):
            assert batched[index] == epsilon_batch(block[None])[0]

    def test_validation(self):
        with pytest.raises(ValidationError):
            stack_padded([])
        with pytest.raises(ValidationError):
            stack_padded([np.ones(3)])
        with pytest.raises(ValidationError):
            stack_padded([np.ones((2, 3)), np.ones((2, 4))])

    def test_integer_blocks_become_float(self):
        stacked = stack_padded(
            [np.array([[1, 3]]), np.array([[1, 1], [0, 2]])]
        )
        assert stacked.dtype == float
        assert stacked[0, 0, 1] == 3.0


class TestPosteriorSubsetSweep:
    def test_full_intersection_bit_identical_to_posterior_epsilon(self):
        contingency = random_contingency(seed=8, empty_group_slices=[(1, 2)])
        sweep = posterior_subset_sweep(
            contingency, alpha=1.0, n_samples=250, seed=42
        )
        reference = posterior_epsilon_samples(
            contingency, alpha=1.0, n_samples=250, seed=42
        )
        assert np.array_equal(
            sweep.epsilon_samples(contingency.factor_names), reference
        )
        summary = posterior_epsilon(
            contingency, alpha=1.0, n_samples=250, seed=42
        )
        assert sweep.full == summary

    @pytest.mark.parametrize(
        "subset,collapsed",
        [(("attr0",), 6), (("attr0", "attr1"), 2), (("attr1", "attr2"), 2)],
    )
    def test_marginalised_draws_match_fresh_sampling(self, subset, collapsed):
        """KS + moment checks against exact per-subset Dirichlet draws.

        The exact marginal posterior of a subset under the joint Dirichlet
        model aggregates the per-cell prior: a subset cell that collapses
        ``m`` intersectional cells has concentration ``counts + m*alpha``.
        """
        contingency = random_contingency(seed=9)
        n = 4000
        sweep = posterior_subset_sweep(
            contingency, alpha=1.0, n_samples=n, seed=10
        )
        marginal = contingency.marginalize(list(subset))
        fresh_posterior = GroupOutcomePosterior(
            marginal.group_outcome_matrix()[0],
            prior_concentration=collapsed * 1.0,
        )
        fresh = epsilon_batch(
            fresh_posterior.sample_matrices(n, np.random.default_rng(77))
        )
        got = sweep.epsilon_samples(subset)
        ks = stats.ks_2samp(got, fresh)
        assert ks.pvalue > 0.01, (subset, ks)
        assert abs(got.mean() - fresh.mean()) < 5 * fresh.std() / math.sqrt(n)
        assert abs(got.std() - fresh.std()) < 0.15 * fresh.std() + 1e-9

    def test_wrong_prior_is_detectably_different(self):
        """The aggregated prior matters: naive per-subset alpha=1 sampling
        is a *different* distribution (sanity check that the KS test above
        has power). Small counts, where the prior's weight is visible."""
        rng = np.random.default_rng(16)
        counts = rng.integers(0, 5, size=(2, 3, 2, 2)).astype(float)
        contingency = ContingencyTable(
            counts,
            ["attr0", "attr1", "attr2"],
            [("a", "b"), ("p", "q", "r"), ("u", "v")],
            "y",
            ("y0", "y1"),
        )
        n = 4000
        sweep = posterior_subset_sweep(
            contingency, alpha=1.0, n_samples=n, seed=10
        )
        marginal = contingency.marginalize(["attr0"])
        naive = epsilon_batch(
            GroupOutcomePosterior(
                marginal.group_outcome_matrix()[0], prior_concentration=1.0
            ).sample_matrices(n, np.random.default_rng(78))
        )
        ks = stats.ks_2samp(sweep.epsilon_samples("attr0"), naive)
        assert ks.pvalue < 0.01

    def test_empty_subset_groups_are_excluded(self):
        contingency = random_contingency(
            seed=11, level_counts=(2, 2), n_outcomes=2, empty_group_slices=[(1,)]
        )
        sweep = posterior_subset_sweep(
            contingency, alpha=1.0, n_samples=100, seed=0
        )
        # attr0 has one populated level: epsilon is vacuously 0 per draw.
        assert np.array_equal(
            sweep.epsilon_samples("attr0"), np.zeros(100)
        )
        assert sweep.summary("attr0").mean == 0.0

    def test_covers_all_subsets(self):
        contingency = random_contingency(seed=12)
        sweep = posterior_subset_sweep(
            contingency, alpha=1.0, n_samples=50, seed=0
        )
        assert set(sweep.summaries) == set(
            all_nonempty_subsets(contingency.factor_names)
        )
        assert all(s.n_samples == 50 for s in sweep.summaries.values())

    def test_order_insensitive_lookup_and_errors(self):
        contingency = random_contingency(seed=13)
        sweep = posterior_subset_sweep(
            contingency, alpha=1.0, n_samples=20, seed=0
        )
        assert sweep.summary(["attr2", "attr0"]) is sweep.summaries[
            ("attr0", "attr2")
        ]
        with pytest.raises(ValidationError):
            sweep.summary(["height"])
        low, high = sweep.credible_interval("attr0")
        assert low <= high
        with pytest.raises(ValidationError):
            sweep.credible_interval("attr0", lower=0.25)

    def test_table_and_from_table_entry(self, hiring_table):
        sweep = posterior_subset_sweep(
            hiring_table,
            protected=["gender", "race"],
            outcome="hired",
            n_samples=30,
            seed=0,
        )
        assert isinstance(sweep, PosteriorSubsetSweep)
        text = sweep.to_text()
        assert "gender, race" in text
        assert "30 draws" in text
        with pytest.raises(ValidationError):
            posterior_subset_sweep(hiring_table, protected=["gender"])

    def test_contingency_plus_names_rejected(self):
        contingency = random_contingency(seed=14)
        with pytest.raises(ValidationError):
            posterior_subset_sweep(
                contingency, protected=["attr0"], outcome="y"
            )

    def test_n_samples_validated(self):
        with pytest.raises(ValidationError):
            posterior_subset_sweep(
                random_contingency(seed=15), n_samples=0
            )

    def test_empty_quantile_levels_render(self):
        sweep = posterior_subset_sweep(
            random_contingency(seed=17), n_samples=20, seed=0,
            quantile_levels=(),
        )
        rows = sweep.to_rows()
        assert all(len(row) == 2 for row in rows)
        text = sweep.to_text()
        assert "posterior mean" in text and "q" not in text.split("\n")[1]


class TestCustomEstimatorAgainstSeedPath:
    def test_finite_rows_for_empty_groups_still_excluded(self):
        """A custom estimator may emit finite rows for zero-count groups
        (e.g. a uniform fallback); the engine must exclude them through
        the group-mass convention exactly as the seed path does."""
        from repro.core.estimators import ProbabilityEstimator

        class UniformFallback(ProbabilityEstimator):
            name = "uniform-fallback"

            def probabilities(self, counts):
                counts = self._validated(counts)
                totals = counts.sum(axis=1, keepdims=True)
                with np.errstate(invalid="ignore", divide="ignore"):
                    probs = counts / totals
                probs[totals[:, 0] <= 0] = 1.0 / counts.shape[1]
                return probs

        contingency = random_contingency(
            seed=31, level_counts=(2, 2), n_outcomes=2, empty_group_slices=[(1,)]
        )
        estimator = UniformFallback()
        assert_results_identical(
            sweep_results(contingency, estimator),
            seed_path_results(contingency, estimator),
        )

    def test_non_row_wise_estimator_gets_per_subset_calls(self):
        """An estimator that pools across the rows it is handed (allowed
        by the ABC) must see each subset's marginal matrix on its own,
        not a concatenation of every subset's rows."""
        from repro.core.estimators import MLEEstimator, ProbabilityEstimator

        class ShrinkToPool(ProbabilityEstimator):
            name = "shrink-to-pool"

            def probabilities(self, counts):
                counts = self._validated(counts)
                plug_in = MLEEstimator().probabilities(counts)
                pooled = counts.sum(axis=0) / counts.sum()
                return 0.8 * plug_in + 0.2 * pooled

        contingency = random_contingency(seed=32)
        estimator = ShrinkToPool()
        assert_results_identical(
            sweep_results(contingency, estimator),
            seed_path_results(contingency, estimator),
        )


class TestCustomEstimatorValidation:
    def test_buggy_custom_estimator_rejected(self):
        """Built-in estimators skip row validation (valid by construction),
        but a user-defined estimator emitting invalid rows must still be
        caught — in both the engine and the pointwise path."""
        from repro.core.estimators import ProbabilityEstimator

        class Broken(ProbabilityEstimator):
            name = "broken"

            def probabilities(self, counts):
                return self._validated(counts)  # raw counts, not normalised

        contingency = random_contingency(seed=30)
        with pytest.raises(ValidationError):
            subset_sweep(contingency, estimator=Broken())
        with pytest.raises(ValidationError):
            edf_from_contingency(contingency.marginalize(["attr0"]), Broken())


def looped_privacy_violations(result, prior, tolerance=1e-9):
    """The seed implementation of privacy_violations, kept as reference."""
    posterior = posterior_group_probabilities(result.probabilities, prior)
    populated = [
        index
        for index in range(len(result.group_labels))
        if prior[index] > 0 and not np.isnan(result.probabilities[index]).any()
    ]
    violations = []
    bound = result.epsilon + tolerance
    for column, outcome in enumerate(result.outcome_levels):
        if np.isnan(posterior[:, column]).all():
            continue
        for i in populated:
            for j in populated:
                if i == j:
                    continue
                prior_odds = prior[i] / prior[j]
                post_i = posterior[i, column]
                post_j = posterior[j, column]
                if post_i == 0.0 and post_j == 0.0:
                    continue
                if post_j == 0.0 or prior_odds == 0.0:
                    continue
                shift = math.log(post_i / post_j) - math.log(prior_odds)
                if abs(shift) > bound:
                    violations.append(
                        (outcome, result.group_labels[i], result.group_labels[j])
                    )
    return violations


class TestVectorizedPrivacyViolations:
    @pytest.mark.parametrize("trial", range(8))
    def test_matches_looped_reference_on_random_matrices(self, trial):
        rng = np.random.default_rng(100 + trial)
        n_groups = int(rng.integers(2, 7))
        n_outcomes = int(rng.integers(2, 5))
        probs = rng.dirichlet(np.ones(n_outcomes), size=n_groups)
        result = epsilon_from_probabilities(probs)
        # Understate epsilon so violations actually appear.
        forged = epsilon_from_probabilities(probs)
        object.__setattr__(
            forged, "epsilon", float(result.epsilon) * rng.uniform(0.0, 0.9)
        )
        prior = rng.dirichlet(np.ones(n_groups))
        got = privacy_violations(forged, prior)
        want = looped_privacy_violations(forged, prior)
        assert got == want
        assert privacy_violations(result, prior) == looped_privacy_violations(
            result, prior
        )

    def test_excluded_groups_and_triple_order(self, rng):
        # Group 3 has finite probabilities but zero prior mass: it must be
        # excluded from every pair, exactly as in the looped reference.
        probs = rng.dirichlet(np.ones(3), size=4)
        forged = epsilon_from_probabilities(probs)
        object.__setattr__(forged, "epsilon", 0.001)
        prior = np.array([0.3, 0.3, 0.4, 0.0])
        got = privacy_violations(forged, prior)
        want = looped_privacy_violations(forged, prior)
        assert got == want
        assert got  # non-empty: the ordering comparison is meaningful
        # No triple may involve the excluded group.
        assert all((3,) not in (i, j) for _, i, j in got)

    def test_nan_rows_no_longer_blank_the_check(self, rng):
        """The historical loop fed NaN rows through Bayes' rule, blanking
        every posterior column and silently reporting no violations. The
        vectorised check conditions on the populated groups: the odds
        shift is invariant to restricting/renormalising the prior, so the
        populated pairs' triples equal the loop's on the populated-only
        submatrix."""
        probs = np.vstack([rng.dirichlet(np.ones(3), size=3), [[np.nan] * 3]])
        forged = epsilon_from_probabilities(probs)
        object.__setattr__(forged, "epsilon", 0.001)
        prior = np.array([0.3, 0.3, 0.2, 0.2])
        got = privacy_violations(forged, prior)
        assert looped_privacy_violations(forged, prior) == []  # the old bug
        # Reference: the loop on the populated-only submatrix (same
        # default labels, since the populated groups come first).
        sub = epsilon_from_probabilities(probs[:3])
        object.__setattr__(sub, "epsilon", 0.001)
        want = looped_privacy_violations(sub, prior[:3] / prior[:3].sum())
        assert got == want
        assert got  # violations are detected despite the excluded group

    def test_malformed_prior_rejected(self):
        probs = np.array([[0.7, 0.3], [0.2, 0.8]])
        result = epsilon_from_probabilities(probs)
        with pytest.raises(ValidationError):
            privacy_violations(result, np.array([30.0, 70.0]))
        with pytest.raises(ValidationError):
            privacy_violations(result, np.array([0.5, 0.4]))

    def test_both_zero_posteriors_skipped(self):
        # Outcome y1 impossible everywhere: both posteriors zero -> the
        # pair is skipped, exactly as in the looped implementation.
        probs = np.array([[1.0, 0.0], [1.0, 0.0]])
        result = epsilon_from_probabilities(probs)
        assert privacy_violations(result, np.array([0.5, 0.5])) == []

    def test_zero_against_positive_posterior_is_reported(self):
        # P(y1 | s0) = 0 but P(y1 | s1) > 0: a -inf shift. The seed loop
        # raised a math domain error here; the vectorised check reports
        # the violating pair when the claimed bound is finite.
        probs = np.array([[1.0, 0.0], [0.5, 0.5]])
        forged = epsilon_from_probabilities(probs)
        object.__setattr__(forged, "epsilon", 1.0)
        violations = privacy_violations(forged, np.array([0.5, 0.5]))
        assert (1, (0,), (1,)) in violations


class TestAuditIntegration:
    def test_audit_dataset_has_posterior_sweep(self, hiring_table):
        from repro.audit.auditor import FairnessAuditor

        auditor = FairnessAuditor(
            ["gender", "race"], "hired", posterior_samples=40, seed=3
        )
        audit = auditor.audit_dataset(hiring_table)
        assert audit.posterior_sweep is not None
        assert set(audit.posterior_sweep.summaries) == set(audit.sweep.results)
        assert audit.posterior == audit.posterior_sweep.full
        assert audit.posterior.n_samples == 40
        text = audit.to_text()
        assert "Posterior epsilon by attribute subset" in text

    def test_report_includes_per_subset_intervals(self, hiring_table):
        from repro.audit.auditor import FairnessAuditor
        from repro.audit.report import render_dataset_report

        auditor = FairnessAuditor(
            ["gender", "race"], "hired", posterior_samples=40, seed=3
        )
        report = render_dataset_report(auditor.audit_dataset(hiring_table))
        assert "posterior mean" in report
        assert "q5" in report and "q95" in report
        assert "shared posterior draws" in report

    def test_report_with_quantile_free_sweep(self, hiring_table):
        from dataclasses import replace

        from repro.audit.auditor import FairnessAuditor
        from repro.audit.report import render_dataset_report

        auditor = FairnessAuditor(["gender", "race"], "hired")
        audit = auditor.audit_dataset(hiring_table)
        sweep = posterior_subset_sweep(
            hiring_table,
            protected=["gender", "race"],
            outcome="hired",
            n_samples=20,
            seed=0,
            quantile_levels=(),
        )
        report = render_dataset_report(replace(audit, posterior_sweep=sweep))
        assert "posterior mean" in report
        assert "| q" not in report

    def test_report_without_posterior_unchanged(self, hiring_table):
        from repro.audit.auditor import FairnessAuditor
        from repro.audit.report import render_dataset_report

        auditor = FairnessAuditor(["gender", "race"], "hired")
        report = render_dataset_report(auditor.audit_dataset(hiring_table))
        assert "posterior mean" not in report


@pytest.mark.perf
class TestPerfGuard:
    """Fast regression guards: the engine must not fall behind the naive
    per-subset loops (small sizes, generous thresholds — these catch
    accidental de-vectorisation, not small perf drift)."""

    @staticmethod
    def _best(callable_, repeats):
        best = math.inf
        for _ in range(repeats):
            start = time.perf_counter()
            callable_()
            best = min(best, time.perf_counter() - start)
        return best

    def test_point_sweep_not_slower_than_loop(self):
        contingency = random_contingency(
            seed=20, level_counts=(2, 2, 2, 2, 2), n_outcomes=2
        )
        loop_seconds = self._best(lambda: seed_path_results(contingency), 5)
        engine_seconds = self._best(lambda: subset_sweep(contingency), 5)
        assert engine_seconds < loop_seconds * 1.5

    def test_posterior_sweep_not_slower_than_loop(self):
        contingency = random_contingency(
            seed=21, level_counts=(2, 2, 2, 2), n_outcomes=2
        )

        def looped():
            rng = np.random.default_rng(0)
            for subset in all_nonempty_subsets(contingency.factor_names):
                posterior_epsilon(
                    contingency.marginalize(list(subset)),
                    alpha=1.0,
                    n_samples=200,
                    seed=rng,
                )

        loop_seconds = self._best(looped, 3)
        engine_seconds = self._best(
            lambda: posterior_subset_sweep(
                contingency, alpha=1.0, n_samples=200, seed=0
            ),
            3,
        )
        assert engine_seconds < loop_seconds * 1.5
