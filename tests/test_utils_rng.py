"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import as_generator, spawn_generators


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_generator(7).random(5)
        b = as_generator(7).random(5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert as_generator(rng) is rng


class TestSpawnGenerators:
    def test_count(self):
        assert len(spawn_generators(0, 3)) == 3

    def test_streams_differ(self):
        a, b = spawn_generators(0, 2)
        assert not np.array_equal(a.random(10), b.random(10))

    def test_deterministic(self):
        first = [g.random(3) for g in spawn_generators(42, 2)]
        second = [g.random(3) for g in spawn_generators(42, 2)]
        for x, y in zip(first, second):
            assert np.array_equal(x, y)

    def test_tuple_seed(self):
        first = spawn_generators((1, 2), 1)[0].random(4)
        second = spawn_generators((1, 2), 1)[0].random(4)
        assert np.array_equal(first, second)

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_zero_count(self):
        assert spawn_generators(0, 0) == []
