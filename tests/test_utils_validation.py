"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.utils.validation import (
    check_1d,
    check_2d,
    check_fraction,
    check_in,
    check_nonnegative,
    check_positive,
    check_probability_matrix,
    check_same_length,
    require,
)


class TestRequire:
    def test_passes_on_true(self):
        require(True, "never raised")

    def test_raises_on_false(self):
        with pytest.raises(ValidationError, match="boom"):
            require(False, "boom")


class TestCheck1d:
    def test_accepts_list(self):
        result = check_1d([1, 2, 3], "values")
        assert result.shape == (3,)
        assert result.dtype == float

    def test_rejects_matrix(self):
        with pytest.raises(ValidationError, match="values"):
            check_1d([[1, 2]], "values")


class TestCheck2d:
    def test_accepts_nested_list(self):
        assert check_2d([[1, 2], [3, 4]], "m").shape == (2, 2)

    def test_rejects_vector(self):
        with pytest.raises(ValidationError, match="2-dimensional"):
            check_2d([1, 2], "m")


class TestScalarChecks:
    def test_positive_accepts(self):
        assert check_positive(0.5, "x") == 0.5

    @pytest.mark.parametrize("value", [0.0, -1.0])
    def test_positive_rejects(self, value):
        with pytest.raises(ValidationError):
            check_positive(value, "x")

    def test_nonnegative_accepts_zero(self):
        assert check_nonnegative(0.0, "x") == 0.0

    def test_nonnegative_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_nonnegative(-0.1, "x")

    def test_nonnegative_rejects_nan(self):
        with pytest.raises(ValidationError):
            check_nonnegative(float("nan"), "x")

    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_fraction_inclusive(self, value):
        assert check_fraction(value, "p") == value

    @pytest.mark.parametrize("value", [-0.01, 1.01])
    def test_fraction_rejects_outside(self, value):
        with pytest.raises(ValidationError):
            check_fraction(value, "p")

    @pytest.mark.parametrize("value", [0.0, 1.0])
    def test_fraction_exclusive_rejects_bounds(self, value):
        with pytest.raises(ValidationError):
            check_fraction(value, "p", inclusive=False)


class TestCheckIn:
    def test_accepts_member(self):
        assert check_in("a", {"a", "b"}, "letter") == "a"

    def test_rejects_nonmember(self):
        with pytest.raises(ValidationError, match="letter"):
            check_in("c", {"a", "b"}, "letter")


class TestCheckSameLength:
    def test_accepts_equal(self):
        check_same_length([1, 2], [3, 4], "x and y")

    def test_rejects_unequal(self):
        with pytest.raises(ValidationError, match="x and y"):
            check_same_length([1], [2, 3], "x and y")


class TestCheckProbabilityMatrix:
    def test_accepts_valid_rows(self):
        matrix = check_probability_matrix([[0.25, 0.75], [0.5, 0.5]], "p")
        assert matrix.shape == (2, 2)

    def test_accepts_nan_rows(self):
        check_probability_matrix([[np.nan, np.nan], [0.4, 0.6]], "p")

    def test_rejects_mixed_nan_rows(self):
        with pytest.raises(ValidationError, match="mixes NaN"):
            check_probability_matrix([[np.nan, 0.5]], "p")

    def test_rejects_bad_sum(self):
        with pytest.raises(ValidationError, match="sum to 1"):
            check_probability_matrix([[0.2, 0.2]], "p")

    def test_rejects_negative(self):
        with pytest.raises(ValidationError, match="outside"):
            check_probability_matrix([[-0.5, 1.5]], "p")
