"""Tests for repro.core.epsilon — the heart of the measurement."""

import math

import numpy as np
import pytest

from repro.core.epsilon import epsilon_from_probabilities, pairwise_log_ratio_matrix
from repro.exceptions import ValidationError


class TestBasicEpsilon:
    def test_equal_distributions_give_zero(self):
        result = epsilon_from_probabilities([[0.3, 0.7], [0.3, 0.7]])
        assert result.epsilon == 0.0

    def test_known_two_group_value(self):
        # log(0.9/0.3) = log 3 on the second outcome.
        result = epsilon_from_probabilities([[0.7, 0.3], [0.1, 0.9]])
        assert result.epsilon == pytest.approx(math.log(7))

    def test_witness_identifies_extremes(self):
        result = epsilon_from_probabilities(
            [[0.7, 0.3], [0.1, 0.9]],
            group_labels=[("g1",), ("g2",)],
            outcome_levels=["no", "yes"],
        )
        assert result.witness.outcome == "no"
        assert result.witness.group_high == ("g1",)
        assert result.witness.group_low == ("g2",)
        assert result.witness.prob_high == pytest.approx(0.7)
        assert result.witness.log_ratio == pytest.approx(result.epsilon)

    def test_per_outcome_epsilons(self):
        result = epsilon_from_probabilities(
            [[0.5, 0.5], [0.25, 0.75]], outcome_levels=["a", "b"]
        )
        assert result.per_outcome["a"] == pytest.approx(math.log(2))
        assert result.per_outcome["b"] == pytest.approx(math.log(1.5))

    def test_three_groups(self):
        result = epsilon_from_probabilities(
            [[0.2, 0.8], [0.4, 0.6], [0.8, 0.2]]
        )
        assert result.epsilon == pytest.approx(math.log(0.8 / 0.2))

    def test_multiclass_outcomes(self):
        result = epsilon_from_probabilities(
            [[0.2, 0.3, 0.5], [0.4, 0.3, 0.3]]
        )
        assert result.epsilon == pytest.approx(math.log(2))


class TestZeroHandling:
    def test_zero_probability_gives_infinite_epsilon(self):
        result = epsilon_from_probabilities([[1.0, 0.0], [0.5, 0.5]])
        assert result.epsilon == math.inf
        assert result.witness.prob_low == 0.0

    def test_outcome_impossible_for_all_groups_ignored(self):
        result = epsilon_from_probabilities([[1.0, 0.0], [1.0, 0.0]])
        assert result.epsilon == 0.0
        assert math.isnan(result.per_outcome[1])


class TestGroupExclusion:
    def test_nan_rows_excluded(self):
        result = epsilon_from_probabilities(
            [[0.5, 0.5], [np.nan, np.nan], [0.25, 0.75]]
        )
        assert result.epsilon == pytest.approx(math.log(2))
        assert len(result.populated_groups()) == 2

    def test_zero_mass_excluded(self):
        result = epsilon_from_probabilities(
            [[0.5, 0.5], [0.01, 0.99], [0.25, 0.75]],
            group_mass=[2.0, 0.0, 1.0],
        )
        # The extreme middle group does not count: P(s) = 0.
        assert result.epsilon == pytest.approx(math.log(2))

    def test_single_populated_group_is_vacuous(self):
        result = epsilon_from_probabilities(
            [[0.5, 0.5], [np.nan, np.nan]]
        )
        assert result.epsilon == 0.0
        assert result.witness is None


class TestValidation:
    def test_rows_must_sum_to_one(self):
        with pytest.raises(ValidationError, match="sum to 1"):
            epsilon_from_probabilities([[0.5, 0.2], [0.5, 0.5]])

    def test_negative_probability_rejected(self):
        with pytest.raises(ValidationError):
            epsilon_from_probabilities([[-0.5, 1.5], [0.5, 0.5]])

    def test_validate_false_skips_checks(self):
        result = epsilon_from_probabilities(
            [[0.5, 0.2], [0.5, 0.5]], validate=False
        )
        assert result.epsilon == pytest.approx(math.log(0.5 / 0.2))

    def test_single_outcome_rejected(self):
        with pytest.raises(ValidationError):
            epsilon_from_probabilities([[1.0], [1.0]])

    def test_label_alignment_checked(self):
        with pytest.raises(ValidationError):
            epsilon_from_probabilities([[0.5, 0.5]], group_labels=[("a",), ("b",)])

    def test_mass_alignment_checked(self):
        with pytest.raises(ValidationError):
            epsilon_from_probabilities(
                [[0.5, 0.5], [0.5, 0.5]], group_mass=[1.0]
            )


class TestResultApi:
    def test_ratio_bound(self):
        result = epsilon_from_probabilities([[0.5, 0.5], [0.25, 0.75]])
        assert result.ratio_bound == pytest.approx(2.0)

    def test_subset_bound_doubles(self):
        result = epsilon_from_probabilities([[0.5, 0.5], [0.25, 0.75]])
        assert result.subset_bound() == pytest.approx(2 * result.epsilon)

    def test_is_fair(self):
        result = epsilon_from_probabilities([[0.5, 0.5], [0.25, 0.75]])
        assert result.is_fair(1.0)
        assert not result.is_fair(0.1)

    def test_probability_lookup(self):
        result = epsilon_from_probabilities(
            [[0.5, 0.5], [0.25, 0.75]],
            group_labels=[("a",), ("b",)],
            outcome_levels=["no", "yes"],
        )
        assert result.probability(("b",), "yes") == pytest.approx(0.75)

    def test_to_text_mentions_epsilon_and_witness(self):
        result = epsilon_from_probabilities(
            [[0.5, 0.5], [0.25, 0.75]],
            group_labels=[("a",), ("b",)],
            outcome_levels=["no", "yes"],
            attribute_names=["group"],
        )
        text = result.to_text()
        assert "epsilon" in text
        assert "witness" in text

    def test_probabilities_read_only(self):
        result = epsilon_from_probabilities([[0.5, 0.5], [0.25, 0.75]])
        with pytest.raises(ValueError):
            result.probabilities[0, 0] = 0.9


class TestPairwiseLogRatios:
    def test_antisymmetric(self):
        matrix = np.array([[0.5, 0.5], [0.25, 0.75]])
        ratios = pairwise_log_ratio_matrix(matrix, 1)
        assert ratios[0, 1] == pytest.approx(-ratios[1, 0])
        assert ratios[0, 0] == 0.0

    def test_values(self):
        matrix = np.array([[0.5, 0.5], [0.25, 0.75]])
        ratios = pairwise_log_ratio_matrix(matrix, 0)
        assert ratios[0, 1] == pytest.approx(math.log(2))

    def test_zero_gives_inf(self):
        matrix = np.array([[0.0, 1.0], [0.25, 0.75]])
        ratios = pairwise_log_ratio_matrix(matrix, 0)
        assert ratios[1, 0] == math.inf
