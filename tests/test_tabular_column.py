"""Tests for repro.tabular.column."""

import numpy as np
import pytest

from repro.exceptions import SchemaError, ValidationError
from repro.tabular.column import Column


class TestCategoricalConstruction:
    def test_levels_inferred_sorted(self):
        column = Column.categorical("c", ["b", "a", "b"])
        assert column.levels == ("a", "b")
        assert column.to_list() == ["b", "a", "b"]

    def test_explicit_levels_preserved(self):
        column = Column.categorical("c", ["x"], levels=["y", "x", "z"])
        assert column.levels == ("y", "x", "z")
        assert column.codes.tolist() == [1]

    def test_value_outside_levels_rejected(self):
        with pytest.raises(ValidationError, match="not in levels"):
            Column.categorical("c", ["q"], levels=["a", "b"])

    def test_duplicate_levels_rejected(self):
        with pytest.raises(ValidationError, match="duplicate"):
            Column.categorical("c", ["a"], levels=["a", "a"])

    def test_from_codes(self):
        column = Column.from_codes("c", [0, 1, 0], ["lo", "hi"])
        assert column.to_list() == ["lo", "hi", "lo"]

    def test_from_codes_range_checked(self):
        with pytest.raises(ValidationError, match="out of range"):
            Column.from_codes("c", [2], ["a", "b"])

    def test_empty_categorical(self):
        column = Column.categorical("c", [], levels=["a"])
        assert len(column) == 0


class TestNumericAndBoolean:
    def test_numeric_values(self):
        column = Column.numeric("x", [1, 2, 3])
        assert column.kind == "numeric"
        assert column.values.dtype == float

    def test_numeric_rejects_2d(self):
        with pytest.raises(ValidationError):
            Column.numeric("x", np.zeros((2, 2)))

    def test_boolean(self):
        column = Column.boolean("flag", [True, False])
        assert column.values.dtype == bool

    def test_levels_rejected_for_numeric(self):
        with pytest.raises(ValidationError):
            Column("x", "numeric", np.zeros(2), levels=("a",))

    def test_categorical_requires_levels(self):
        with pytest.raises(ValidationError):
            Column("x", "categorical", np.zeros(2, dtype=np.int64))


class TestInfer:
    def test_strings_categorical(self):
        assert Column.infer("c", ["a", "b"]).kind == "categorical"

    def test_numbers_numeric(self):
        assert Column.infer("c", [1, 2.5]).kind == "numeric"

    def test_bools_boolean(self):
        assert Column.infer("c", [True, False]).kind == "boolean"

    def test_mixed_becomes_categorical(self):
        assert Column.infer("c", ["a", "a", "b"]).kind == "categorical"


class TestOperations:
    def test_equals_mask(self):
        column = Column.categorical("c", ["a", "b", "a"])
        assert column.equals_mask("a").tolist() == [True, False, True]

    def test_equals_mask_unknown_value(self):
        column = Column.categorical("c", ["a"])
        assert column.equals_mask("zzz").tolist() == [False]

    def test_isin_mask(self):
        column = Column.categorical("c", ["a", "b", "c"])
        assert column.isin_mask(["a", "c"]).tolist() == [True, False, True]

    def test_take_with_indices(self):
        column = Column.numeric("x", [10.0, 20.0, 30.0])
        assert column.take(np.array([2, 0])).values.tolist() == [30.0, 10.0]

    def test_take_with_mask(self):
        column = Column.categorical("c", ["a", "b", "a"])
        taken = column.take(np.array([True, False, True]))
        assert taken.to_list() == ["a", "a"]

    def test_unique_in_level_order(self):
        column = Column.categorical("c", ["b", "a"], levels=["b", "a"])
        assert column.unique() == ["b", "a"]

    def test_unique_excludes_absent_levels(self):
        column = Column.categorical("c", ["a"], levels=["a", "b"])
        assert column.unique() == ["a"]

    def test_rename(self):
        assert Column.numeric("x", [1.0]).rename("y").name == "y"

    def test_with_levels_superset(self):
        column = Column.categorical("c", ["a", "b"])
        widened = column.with_levels(["z", "b", "a"])
        assert widened.to_list() == ["a", "b"]
        assert widened.levels == ("z", "b", "a")

    def test_with_levels_missing_rejected(self):
        column = Column.categorical("c", ["a", "b"])
        with pytest.raises(ValidationError, match="missing"):
            column.with_levels(["a"])

    def test_map_levels_merges(self):
        column = Column.categorical("race", ["W", "A", "O", "A"])
        merged = column.map_levels({"A": "O"})
        assert merged.to_list() == ["W", "O", "O", "O"]
        assert set(merged.levels) == {"W", "O"}

    def test_levels_on_numeric_raises(self):
        with pytest.raises(SchemaError):
            Column.numeric("x", [1.0]).levels

    def test_immutability(self):
        column = Column.numeric("x", [1.0, 2.0])
        with pytest.raises(ValueError):
            column.values[0] = 99.0

    def test_equality(self):
        a = Column.categorical("c", ["a", "b"])
        b = Column.categorical("c", ["a", "b"])
        assert a == b
        assert a != Column.categorical("c", ["b", "a"])
