"""Tests for the per-group threshold post-processor."""

import math

import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.learn.group_thresholds import (
    GroupThresholdPostprocessor,
    _epsilon_of_rates,
)


def biased_scores(rng, n_per_group=500, gap=1.5):
    """Two groups whose scores (and labels) have shifted distributions."""
    scores, labels, groups = [], [], []
    for group, shift, rate in (("a", gap, 0.5), ("b", 0.0, 0.2)):
        y = rng.random(n_per_group) < rate
        score = y * 1.8 + shift + rng.normal(0, 1.0, n_per_group)
        scores.extend(score.tolist())
        labels.extend(y.astype(int).tolist())
        groups.extend([group] * n_per_group)
    return np.asarray(scores), labels, groups


class TestEpsilonOfRates:
    def test_equal_rates(self):
        assert _epsilon_of_rates(np.array([0.3, 0.3])) == 0.0

    def test_ratio(self):
        assert _epsilon_of_rates(np.array([0.2, 0.4])) == pytest.approx(
            max(math.log(2), math.log(0.8 / 0.6))
        )

    def test_zero_rate_infinite(self):
        assert _epsilon_of_rates(np.array([0.0, 0.4])) == math.inf

    def test_certain_rate_infinite(self):
        assert _epsilon_of_rates(np.array([1.0, 0.4])) == math.inf


class TestSolve:
    @pytest.fixture
    def fitted(self, rng):
        scores, labels, groups = biased_scores(rng)
        post = GroupThresholdPostprocessor(positive=1).fit(
            scores, labels, groups
        )
        return post, scores, labels, groups

    def test_solution_meets_budget(self, fitted):
        post, *_ = fitted
        for budget in (1.0, 0.5, 0.1):
            solution = post.solve(budget)
            assert solution.epsilon <= budget + 1e-9

    def test_accuracy_monotone_in_budget(self, fitted):
        """Looser budgets can only help accuracy."""
        post, *_ = fitted
        accuracies = [post.solve(budget).accuracy for budget in (0.05, 0.5, 2.0)]
        assert accuracies == sorted(accuracies)

    def test_large_budget_recovers_per_group_optimum(self, fitted):
        post, scores, labels, groups = fitted
        unconstrained = post.solve(50.0)
        tight = post.solve(0.1)
        assert unconstrained.accuracy >= tight.accuracy

    def test_apply_realises_solution_rates(self, fitted):
        post, scores, labels, groups = fitted
        solution = post.solve(0.3)
        predictions = post.apply(scores, groups, solution)
        for group in ("a", "b"):
            mask = [g == group for g in groups]
            rate = np.mean(
                [p == 1 for p, m in zip(predictions, mask) if m]
            )
            assert rate == pytest.approx(solution.rates[group], abs=1e-9)

    def test_thresholds_differ_across_groups(self, fitted):
        """The whole point: groups get different cut-offs (contra the
        equal-threshold prescription of threshold tests)."""
        post, *_ = fitted
        solution = post.solve(0.2)
        thresholds = list(solution.thresholds.values())
        assert thresholds[0] != thresholds[1]

    def test_to_text(self, fitted):
        post, *_ = fitted
        text = post.solve(0.5).to_text()
        assert "epsilon" in text
        assert "threshold" in text


class TestValidation:
    def test_unfitted(self):
        with pytest.raises(NotFittedError):
            GroupThresholdPostprocessor().solve(1.0)

    def test_single_group_rejected(self, rng):
        with pytest.raises(ValidationError):
            GroupThresholdPostprocessor(positive=1).fit(
                np.array([1.0, 2.0]), [0, 1], ["a", "a"]
            )

    def test_empty_scores_rejected(self):
        with pytest.raises(ValidationError):
            GroupThresholdPostprocessor().fit(np.array([]), [], [])

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            GroupThresholdPostprocessor().fit(
                np.array([1.0]), [0, 1], ["a", "b"]
            )

    def test_apply_unknown_group(self, rng):
        scores, labels, groups = biased_scores(rng, n_per_group=50)
        post = GroupThresholdPostprocessor(positive=1).fit(
            scores, labels, groups
        )
        solution = post.solve(1.0)
        with pytest.raises(ValidationError):
            post.apply(np.array([0.5]), ["ghost"], solution)

    def test_negative_budget_rejected(self, rng):
        scores, labels, groups = biased_scores(rng, n_per_group=50)
        post = GroupThresholdPostprocessor(positive=1).fit(
            scores, labels, groups
        )
        with pytest.raises(ValidationError):
            post.solve(-0.5)


class TestDeterministicSmallCase:
    def test_hand_checkable(self):
        """Group a scores: positives high; group b: one positive low."""
        scores = np.array([0.9, 0.8, 0.2, 0.1, 0.7, 0.3, 0.25, 0.15])
        labels = [1, 1, 0, 0, 1, 0, 0, 0]
        groups = ["a"] * 4 + ["b"] * 4
        post = GroupThresholdPostprocessor(positive=1).fit(
            scores, labels, groups
        )
        solution = post.solve(0.01)
        # Both groups must have (nearly) equal rates on a 4-point grid:
        rates = list(solution.rates.values())
        assert rates[0] == rates[1]
        # Perfect parity at rate 0.5 and 0.25 both exist; accuracy picks
        # rate 0.5 for a (both positives) — b then accepts 2 (one FP).
        assert solution.epsilon == 0.0
