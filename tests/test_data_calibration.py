"""Tests for repro.data.calibration (the frozen-cell regeneration)."""

import math

import pytest

from repro.core.empirical import edf_from_contingency
from repro.data.calibration import (
    REAL_TRAIN_MARGINS,
    TEST_SMOOTHED_TARGET,
    TRAIN_EPSILON_TARGETS,
    IntegerCellSearch,
    calibrate_test_cells,
    calibrate_train_cells,
    cells_epsilon,
    marginalize_cells,
    verify_margins,
)
from repro.data.synthetic_adult import FROZEN_TRAIN_CELLS
from repro.exceptions import CalibrationError
from repro.tabular.crosstab import ContingencyTable


class TestCellsEpsilon:
    def test_agrees_with_core_implementation(self):
        """The calibration's self-contained epsilon matches repro.core."""
        cells = {("a",): (100, 30), ("b",): (50, 5), ("c",): (70, 35)}
        contingency = ContingencyTable.from_group_counts(
            {key: [n - k, k] for key, (n, k) in cells.items()},
            factor_names=["g"],
            outcome_name="y",
            outcome_levels=["no", "yes"],
        )
        assert cells_epsilon(cells) == pytest.approx(
            edf_from_contingency(contingency).epsilon
        )

    def test_smoothed_agrees_with_core(self):
        from repro.core.estimators import DirichletEstimator

        cells = {("a",): (10, 3), ("b",): (5, 0)}
        contingency = ContingencyTable.from_group_counts(
            {key: [n - k, k] for key, (n, k) in cells.items()},
            factor_names=["g"],
            outcome_name="y",
            outcome_levels=["no", "yes"],
        )
        assert cells_epsilon(cells, alpha=1.0) == pytest.approx(
            edf_from_contingency(contingency, DirichletEstimator(1.0)).epsilon
        )

    def test_zero_positive_gives_inf(self):
        assert cells_epsilon({("a",): (10, 0), ("b",): (10, 5)}) == math.inf

    def test_single_group_is_zero(self):
        assert cells_epsilon({("a",): (10, 5)}) == 0.0

    def test_empty_cells_skipped(self):
        assert cells_epsilon({("a",): (0, 0), ("b",): (10, 5)}) == 0.0


class TestMarginalize:
    def test_sums(self):
        cells = {("a", "x"): (10, 1), ("a", "y"): (20, 2), ("b", "x"): (5, 5)}
        reduced = marginalize_cells(cells, [0])
        assert reduced[("a",)] == (30, 3)
        assert reduced[("b",)] == (5, 5)

    def test_verify_margins_detects_mismatch(self):
        bad = dict(FROZEN_TRAIN_CELLS)
        key = ("Male", "White", "United-States")
        members, positives = bad[key]
        bad[key] = (members + 1, positives)
        with pytest.raises(CalibrationError):
            verify_margins(bad, REAL_TRAIN_MARGINS)


class TestIntegerCellSearch:
    def test_descends(self):
        target = 40

        def build(params):
            value = params["x"]
            if value < 0:
                return None
            return {("only",): (100, value)}

        def loss(cells):
            return (cells[("only",)][1] - target) ** 2

        search = IntegerCellSearch(
            build, loss, moves=[("x", d) for d in (-8, -4, -1, 1, 4, 8)],
            seed=0, iterations=500,
        )
        params, cells, final_loss = search.run({"x": 0})
        assert final_loss == 0.0
        assert cells[("only",)][1] == target

    def test_infeasible_start_rejected(self):
        search = IntegerCellSearch(
            lambda params: None, lambda cells: 0.0, moves=[("x", 1)]
        )
        with pytest.raises(CalibrationError):
            search.run({"x": 0})


class TestRegeneration:
    def test_train_calibration_hits_all_targets(self):
        cells = calibrate_train_cells(iterations=20_000, seed=0)
        verify_margins(cells, REAL_TRAIN_MARGINS)
        axes = {"gender": 0, "race": 1, "nationality": 2}
        for subset, target in TRAIN_EPSILON_TARGETS.items():
            achieved = cells_epsilon(
                marginalize_cells(cells, [axes[a] for a in subset])
            )
            assert achieved == pytest.approx(target, abs=0.005), subset

    def test_test_calibration_hits_smoothed_target(self):
        test_cells = calibrate_test_cells(
            FROZEN_TRAIN_CELLS, iterations=10_000, seed=1
        )
        assert sum(n for n, _ in test_cells.values()) == 16281
        assert cells_epsilon(test_cells, alpha=1.0) == pytest.approx(
            TEST_SMOOTHED_TARGET, abs=0.005
        )

    def test_impossible_tolerance_raises(self):
        with pytest.raises(CalibrationError):
            calibrate_train_cells(iterations=10, seed=0, tolerance=1e-9)
