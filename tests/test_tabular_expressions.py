"""Tests for the query expression DSL."""

import pytest

from repro.exceptions import SchemaError
from repro.tabular.expressions import col, query
from repro.tabular.table import Table


@pytest.fixture
def people() -> Table:
    return Table.from_dict(
        {
            "age": [15.0, 25.0, 35.0, 70.0],
            "race": ["X", "Y", "X", "Z"],
            "employed": [False, True, True, False],
        }
    )


class TestComparisons:
    def test_equality_on_categorical(self, people):
        result = people.query(col("race") == "X")
        assert result.n_rows == 2

    def test_inequality(self, people):
        assert people.query(col("race") != "X").n_rows == 2

    def test_numeric_ordering(self, people):
        assert people.query(col("age") > 30).n_rows == 2
        assert people.query(col("age") >= 35).n_rows == 2
        assert people.query(col("age") < 20).n_rows == 1
        assert people.query(col("age") <= 25).n_rows == 2

    def test_boolean_equality(self, people):
        assert people.query(col("employed") == True).n_rows == 2  # noqa: E712

    def test_isin(self, people):
        assert people.query(col("race").isin(["X", "Z"])).n_rows == 3

    def test_isin_empty(self, people):
        assert people.query(col("race").isin([])).n_rows == 0

    def test_ordering_on_categorical_rejected(self, people):
        with pytest.raises(SchemaError, match="categorical"):
            people.query(col("race") > "X")

    def test_unknown_column(self, people):
        with pytest.raises(SchemaError):
            people.query(col("height") == 1)


class TestComposition:
    def test_and(self, people):
        result = people.query((col("age") > 20) & (col("race") == "X"))
        assert result.n_rows == 1
        assert result.row(0)["age"] == 35.0

    def test_or(self, people):
        result = people.query((col("age") < 20) | (col("age") > 60))
        assert result.n_rows == 2

    def test_not(self, people):
        result = people.query(~(col("race") == "X"))
        assert result.n_rows == 2

    def test_nested(self, people):
        expr = ((col("age") >= 18) & (col("employed") == True)) | (  # noqa: E712
            col("race") == "Z"
        )
        assert people.query(expr).n_rows == 3

    def test_demorgan(self, people):
        left = people.query(~((col("race") == "X") | (col("age") > 30)))
        right = people.query((col("race") != "X") & ~(col("age") > 30))
        assert left.to_dict() == right.to_dict()

    def test_combining_with_non_expression_rejected(self, people):
        with pytest.raises(TypeError):
            (col("age") > 20) & "not an expression"

    def test_module_level_query(self, people):
        assert query(people, col("race") == "X").n_rows == 2

    def test_repr_roundtrip_readable(self):
        expr = (col("age") > 20) & ~(col("race") == "X")
        text = repr(expr)
        assert "age" in text and "race" in text and "&" in text


class TestAuditUseCase:
    def test_slice_then_measure(self, people):
        """The intended workflow: subset the data, then measure epsilon."""
        from repro.core.empirical import dataset_edf

        table = Table.from_dict(
            {
                "gender": ["F", "F", "M", "M", "F", "M"],
                "age": [30.0, 40.0, 30.0, 40.0, 15.0, 15.0],
                "outcome": ["yes", "no", "yes", "yes", "no", "yes"],
            }
        )
        adults = table.query(col("age") >= 18)
        assert adults.n_rows == 4
        result = dataset_edf(adults, protected="gender", outcome="outcome")
        assert result.epsilon > 0
