"""Tests for conditional differential fairness (the equalized-odds-style
extension of Section 7.1)."""

import math

import pytest

from repro.core.conditional import conditional_edf
from repro.core.estimators import DirichletEstimator
from repro.exceptions import ValidationError
from repro.tabular.table import Table


@pytest.fixture
def predictions_table() -> Table:
    """True labels, predictions, and one protected attribute.

    Group a: among y=1, predicted 1 at 3/4; among y=0, predicted 1 at 1/4.
    Group b: among y=1, predicted 1 at 1/2; among y=0, predicted 1 at 1/2.
    """
    rows = (
        [("a", "1", "1")] * 3 + [("a", "1", "0")] * 1
        + [("a", "0", "1")] * 1 + [("a", "0", "0")] * 3
        + [("b", "1", "1")] * 2 + [("b", "1", "0")] * 2
        + [("b", "0", "1")] * 2 + [("b", "0", "0")] * 2
    )
    return Table.from_rows(["group", "label", "pred"], rows)


class TestConditionalEdf:
    def test_per_condition_epsilons(self, predictions_table):
        result = conditional_edf(
            predictions_table, protected="group", outcome="pred", given="label"
        )
        # Within y=1: rates 0.75 vs 0.5 -> eps = log(0.5/0.25) = log 2.
        assert result.result("1").epsilon == pytest.approx(math.log(2))
        # Within y=0: rates 0.25 vs 0.5 -> eps = log 2 as well.
        assert result.result("0").epsilon == pytest.approx(math.log(2))
        assert result.epsilon == pytest.approx(math.log(2))

    def test_perfect_classifier_conditionally_fair(self):
        """Predicting the true label exactly has conditional epsilon 0
        even when the base rates differ wildly across groups."""
        rows = (
            [("a", "1", "1")] * 9 + [("a", "0", "0")] * 1
            + [("b", "1", "1")] * 1 + [("b", "0", "0")] * 9
        )
        table = Table.from_rows(["group", "label", "pred"], rows)
        result = conditional_edf(table, "group", "pred", given="label")
        assert result.epsilon == 0.0
        # ... while the unconditional epsilon is large (demographic
        # disparity): this is exactly the equalized-odds vs parity split.
        from repro.core.empirical import dataset_edf

        unconditional = dataset_edf(table, protected="group", outcome="pred")
        assert unconditional.epsilon > 2.0

    def test_binding_condition(self, predictions_table):
        result = conditional_edf(
            predictions_table, "group", "pred", given="label"
        )
        assert result.binding_condition() in ("0", "1")

    def test_missing_group_in_slice_excluded(self):
        rows = (
            [("a", "1", "1")] * 2 + [("a", "0", "0")] * 2
            + [("b", "1", "1")] * 2  # group b never has label 0
        )
        table = Table.from_rows(["group", "label", "pred"], rows)
        result = conditional_edf(table, "group", "pred", given="label")
        slice_zero = result.result("0")
        assert slice_zero.epsilon == 0.0  # single populated group: vacuous
        assert len(slice_zero.populated_groups()) == 1

    def test_smoothed_variant(self, predictions_table):
        raw = conditional_edf(
            predictions_table, "group", "pred", given="label"
        )
        smoothed = conditional_edf(
            predictions_table,
            "group",
            "pred",
            given="label",
            estimator=DirichletEstimator(1.0),
        )
        assert smoothed.epsilon < raw.epsilon

    def test_conditioning_column_validation(self, predictions_table):
        with pytest.raises(ValidationError):
            conditional_edf(predictions_table, "group", "pred", given="pred")
        with pytest.raises(ValidationError):
            conditional_edf(predictions_table, "group", "pred", given="group")

    def test_unknown_condition_lookup(self, predictions_table):
        result = conditional_edf(
            predictions_table, "group", "pred", given="label"
        )
        with pytest.raises(ValidationError):
            result.result("zzz")

    def test_to_text(self, predictions_table):
        result = conditional_edf(
            predictions_table, "group", "pred", given="label"
        )
        text = result.to_text()
        assert "Conditional differential fairness" in text
        assert "max" in text

    def test_intersectional_conditioning(self):
        """Two protected attributes, conditioned on the label."""
        rows = []
        for group, label, pred, count in [
            (("a", "x"), "1", "1", 3), (("a", "x"), "1", "0", 1),
            (("a", "y"), "1", "1", 2), (("a", "y"), "1", "0", 2),
            (("b", "x"), "1", "1", 1), (("b", "x"), "1", "0", 3),
            (("b", "y"), "1", "1", 2), (("b", "y"), "1", "0", 2),
        ]:
            rows.extend([(group[0], group[1], label, pred)] * count)
        table = Table.from_rows(["g1", "g2", "label", "pred"], rows)
        result = conditional_edf(
            table, ["g1", "g2"], "pred", given="label"
        )
        # Rates 0.75 vs 0.25 within y=1 -> log 3.
        assert result.epsilon == pytest.approx(math.log(3))
