"""Determinism sweep: every public Monte Carlo entry point is seed-stable.

One parametrized test asserts, for each stochastic entry point, that an
explicit seed reproduces *identical* results and that distinct seeds
produce distinct results. This pins the seeding contract the streaming
and reporting layers rely on (repeated ``StreamingAuditor.audit()`` calls
must agree; checkpoint-restored runs must replay), and catches silent
RNG-plumbing regressions — e.g. an entry point drawing from the global
numpy state, or consuming a shared generator out of order.

Each case maps a seed to a fingerprint (bytes / nested tuples) built from
the entry point's full numeric output, so "identical" means bitwise.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.audit.stream import StreamingAuditor
from repro.core.bayesian import (
    epsilon_over_sampled_theta,
    posterior_epsilon,
    posterior_epsilon_samples,
)
from repro.core.mechanism import mechanism_epsilon
from repro.core.sweep import posterior_subset_sweep
from repro.distributions.dirichlet import GroupOutcomePosterior
from repro.distributions.gaussian import GroupGaussianScores
from repro.mechanisms.randomized_response import RandomizedResponse
from repro.mechanisms.threshold import ScoreThresholdMechanism
from repro.tabular.crosstab import ContingencyTable

COUNTS = np.array(
    [[30.0, 10.0], [12.0, 28.0], [7.0, 3.0], [20.0, 20.0]]
)


def _contingency() -> ContingencyTable:
    return ContingencyTable(
        COUNTS.reshape(2, 2, 2),
        ["gender", "race"],
        [("F", "M"), ("X", "Y")],
        "hired",
        ("no", "yes"),
    )


def _summary_fingerprint(summary) -> tuple:
    return (summary.mean, summary.median, tuple(sorted(summary.quantiles.items())))


def _posterior_epsilon(seed):
    return _summary_fingerprint(
        posterior_epsilon(COUNTS, alpha=1.0, n_samples=64, seed=seed)
    )


def _posterior_epsilon_samples(seed):
    return posterior_epsilon_samples(COUNTS, n_samples=64, seed=seed).tobytes()


def _epsilon_over_sampled_theta(seed):
    return epsilon_over_sampled_theta(COUNTS, n_samples=32, seed=seed)


def _posterior_subset_sweep(seed):
    sweep = posterior_subset_sweep(
        _contingency(), alpha=1.0, n_samples=48, seed=seed
    )
    return tuple(
        (subset, sweep.samples[subset].tobytes())
        for subset in sorted(sweep.samples)
    )


def _streaming_posterior(seed):
    auditor = StreamingAuditor(
        ["gender", "race"],
        "hired",
        posterior_samples=40,
        seed=seed,
    )
    rng = np.random.default_rng(0)  # data stream fixed; only the audit seed varies
    rows = [
        (("F", "M")[rng.integers(2)], ("X", "Y")[rng.integers(2)],
         ("no", "yes")[rng.integers(2)])
        for _ in range(300)
    ]
    auditor.observe(rows)
    audit = auditor.audit()
    return (
        _summary_fingerprint(audit.posterior),
        tuple(
            (subset, audit.posterior_sweep.samples[subset].tobytes())
            for subset in sorted(audit.posterior_sweep.samples)
        ),
    )


def _mechanism_monte_carlo(seed):
    result = mechanism_epsilon(
        ScoreThresholdMechanism(0.5),
        GroupGaussianScores([0.0, 1.0], [1.0, 1.0]),
        n_samples=512,
        seed=seed,
    )
    return (result.epsilon, result.probabilities.tobytes())


def _mechanism_sample_outcomes(seed):
    truths = np.tile([0, 1], 100)
    return tuple(RandomizedResponse().sample_outcomes(truths, seed=seed))


def _dirichlet_sampler(seed):
    posterior = GroupOutcomePosterior(COUNTS, prior_concentration=1.0)
    return posterior.sample_matrices(16, seed=seed).tobytes()


CASES = {
    "posterior_epsilon": _posterior_epsilon,
    "posterior_epsilon_samples": _posterior_epsilon_samples,
    "epsilon_over_sampled_theta": _epsilon_over_sampled_theta,
    "posterior_subset_sweep": _posterior_subset_sweep,
    "streaming_auditor_posterior": _streaming_posterior,
    "mechanism_monte_carlo": _mechanism_monte_carlo,
    "mechanism_sample_outcomes": _mechanism_sample_outcomes,
    "dirichlet_group_sampler": _dirichlet_sampler,
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_seed_determinism(name):
    fingerprint = CASES[name]
    assert fingerprint(1234) == fingerprint(1234), (
        f"{name} is not reproducible for a fixed seed"
    )
    assert fingerprint(1234) != fingerprint(4321), (
        f"{name} ignores its seed (distinct seeds agree)"
    )


@pytest.mark.parametrize("name", sorted(CASES))
def test_generator_seeds_accepted(name):
    """Entry points accept a pre-built Generator and stay deterministic."""
    fingerprint = CASES[name]
    assert fingerprint(np.random.default_rng(77)) == fingerprint(
        np.random.default_rng(77)
    )
