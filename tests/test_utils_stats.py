"""Tests for repro.utils.stats."""

import math

import pytest

from repro.utils.stats import normal_cdf, normal_pdf, normal_ppf, normal_tail


class TestNormalCdf:
    def test_median(self):
        assert normal_cdf(0.0) == pytest.approx(0.5)

    def test_known_value(self):
        # Phi(1.0) from standard tables.
        assert normal_cdf(1.0) == pytest.approx(0.8413, abs=1e-4)

    def test_location_scale(self):
        assert normal_cdf(12.0, mean=10.0, std=2.0) == pytest.approx(
            normal_cdf(1.0)
        )

    def test_rejects_nonpositive_std(self):
        with pytest.raises(Exception):
            normal_cdf(0.0, std=0.0)


class TestNormalTail:
    def test_complement(self):
        assert normal_tail(0.7) == pytest.approx(1.0 - normal_cdf(0.7))

    def test_paper_worked_example_values(self):
        # Figure 2: P(x >= 10.5) for N(10, 1) and N(12, 1).
        assert normal_tail(10.5, 10.0, 1.0) == pytest.approx(0.3085, abs=5e-5)
        assert normal_tail(10.5, 12.0, 1.0) == pytest.approx(0.9332, abs=5e-5)


class TestNormalPdf:
    def test_peak(self):
        assert normal_pdf(0.0) == pytest.approx(1.0 / math.sqrt(2 * math.pi))

    def test_symmetry(self):
        assert normal_pdf(1.3) == pytest.approx(normal_pdf(-1.3))

    def test_scaling(self):
        assert normal_pdf(0.0, std=2.0) == pytest.approx(normal_pdf(0.0) / 2.0)


class TestNormalPpf:
    def test_inverts_cdf(self):
        for q in (0.01, 0.25, 0.5, 0.9, 0.999):
            assert normal_cdf(normal_ppf(q)) == pytest.approx(q, abs=1e-10)

    def test_extremes(self):
        assert normal_ppf(0.0) == -math.inf
        assert normal_ppf(1.0) == math.inf

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            normal_ppf(1.5)

    def test_location_scale(self):
        assert normal_ppf(0.5, mean=3.0, std=9.0) == pytest.approx(3.0)
