"""Direct tests of the census feature model (repro.data.census_features)."""

import numpy as np
import pytest

from repro.data.census_features import (
    EDUCATION_LEVELS,
    MARITAL_STATUSES,
    OCCUPATIONS,
    RELATIONSHIPS,
    WORKCLASSES,
    CensusFeatureModel,
    _choice_rows,
)


@pytest.fixture
def model() -> CensusFeatureModel:
    return CensusFeatureModel()


def draw(model, rng, positive, n=4000, cell=("Male", "White", "United-States")):
    return model.generate(cell[0], cell[1], cell[2], positive, n, rng)


class TestChoiceRows:
    def test_respects_probabilities(self, rng):
        probs = np.tile(np.array([0.2, 0.8]), (20_000, 1))
        draws = _choice_rows(rng, ("a", "b"), probs)
        assert (draws == "b").mean() == pytest.approx(0.8, abs=0.01)

    def test_per_row_probabilities(self, rng):
        probs = np.array([[1.0, 0.0], [0.0, 1.0]])
        draws = _choice_rows(rng, ("a", "b"), probs)
        assert draws.tolist() == ["a", "b"]


class TestGenerate:
    def test_empty_block(self, model, rng):
        assert draw(model, rng, True, n=0) == {}

    def test_all_columns_present(self, model, rng):
        block = draw(model, rng, False, n=10)
        assert set(block) == {
            "age", "workclass", "fnlwgt", "education", "education_num",
            "marital_status", "occupation", "relationship", "capital_gain",
            "capital_loss", "hours_per_week",
        }
        assert all(len(values) == 10 for values in block.values())

    def test_categorical_values_in_vocabulary(self, model, rng):
        block = draw(model, rng, True, n=2000)
        assert set(block["education"]) <= set(EDUCATION_LEVELS)
        assert set(block["workclass"]) <= set(WORKCLASSES)
        assert set(block["marital_status"]) <= set(MARITAL_STATUSES)
        assert set(block["occupation"]) <= set(OCCUPATIONS)
        assert set(block["relationship"]) <= set(RELATIONSHIPS)

    def test_label_shifts_education(self, model, rng):
        rich = draw(model, rng, True)["education_num"].mean()
        poor = draw(model, rng, False)["education_num"].mean()
        assert rich - poor > 1.0

    def test_label_shifts_hours_and_age(self, model, rng):
        rich = draw(model, rng, True)
        poor = draw(model, rng, False)
        assert rich["hours_per_week"].mean() > poor["hours_per_week"].mean()
        assert rich["age"].mean() > poor["age"].mean()

    def test_structural_bias_leaks_into_features(self, model, rng):
        """Same label, different cell: the proxies differ — the mechanism
        behind Table 3's 'withholding the attribute is not enough'."""
        advantaged = model.generate(
            "Male", "White", "United-States", False, 6000, rng
        )
        disadvantaged = model.generate(
            "Female", "Other", "Other", False, 6000, rng
        )
        assert (
            advantaged["education_num"].mean()
            > disadvantaged["education_num"].mean() + 0.5
        )

    def test_wives_only_in_female_blocks(self, model, rng):
        male_block = model.generate(
            "Male", "White", "United-States", True, 3000, rng
        )
        assert "Wife" not in set(male_block["relationship"])
        female_block = model.generate(
            "Female", "White", "United-States", True, 3000, rng
        )
        assert "Husband" not in set(female_block["relationship"])

    def test_capital_gain_zero_inflated(self, model, rng):
        block = draw(model, rng, False)
        gains = block["capital_gain"]
        assert (gains == 0).mean() > 0.9
        positive_gains = gains[gains > 0]
        if positive_gains.size:
            assert positive_gains.min() >= 114

    def test_label_pull_controls_separation(self, rng):
        weak = CensusFeatureModel(label_pull=0.2)
        strong = CensusFeatureModel(label_pull=3.0)
        weak_gap = (
            draw(weak, rng, True)["education_num"].mean()
            - draw(weak, rng, False)["education_num"].mean()
        )
        strong_gap = (
            draw(strong, rng, True)["education_num"].mean()
            - draw(strong, rng, False)["education_num"].mean()
        )
        assert strong_gap > weak_gap

    def test_deterministic_given_rng_state(self, model):
        first = draw(model, np.random.default_rng(5), True, n=50)
        second = draw(model, np.random.default_rng(5), True, n=50)
        for name in first:
            assert np.array_equal(first[name], second[name]), name
