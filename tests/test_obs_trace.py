"""Unit tests for trace spans and the Chrome-trace export (repro.obs.trace)."""

from __future__ import annotations

import io
import json
import threading

import pytest

from repro.exceptions import ValidationError
from repro.obs.trace import (
    NULL_TRACER,
    TraceSink,
    Tracer,
    read_trace_events,
    to_chrome_trace,
    write_chrome_trace,
)

pytestmark = pytest.mark.obs


def _tracer_over(buffer: io.StringIO, **kwargs) -> tuple[Tracer, TraceSink]:
    sink = TraceSink(buffer, **kwargs)
    return Tracer(sink), sink


def _events(buffer: io.StringIO) -> list[dict]:
    return [json.loads(line) for line in buffer.getvalue().splitlines()]


class TestSpans:
    def test_nesting_assigns_parent_ids(self):
        buffer = io.StringIO()
        tracer, _ = _tracer_over(buffer)
        with tracer.span("ingest", path="a.csv"):
            with tracer.span("parse", chunk=0):
                pass
            with tracer.span("decode", chunk=0):
                pass
        by_name = {event["name"]: event for event in _events(buffer)}
        ingest = by_name["ingest"]
        assert ingest["parent"] is None
        assert by_name["parse"]["parent"] == ingest["id"]
        assert by_name["decode"]["parent"] == ingest["id"]
        assert ingest["attrs"] == {"path": "a.csv"}
        # children close before the parent, so they are emitted first
        assert [event["name"] for event in _events(buffer)] == [
            "parse",
            "decode",
            "ingest",
        ]

    def test_span_set_adds_attrs_and_durations_use_clock(self):
        ticks = iter([1.0, 3.5])
        buffer = io.StringIO()
        sink = TraceSink(buffer)
        tracer = Tracer(sink, clock=lambda: next(ticks))
        with tracer.span("work") as span:
            span.set(rows=42)
        (event,) = _events(buffer)
        assert event["attrs"] == {"rows": 42}
        assert event["ts"] == 1.0
        assert event["dur"] == 2.5

    def test_exception_is_recorded_and_span_still_emitted(self):
        buffer = io.StringIO()
        tracer, _ = _tracer_over(buffer)
        with pytest.raises(RuntimeError):
            with tracer.span("ingest"):
                raise RuntimeError("boom")
        (event,) = _events(buffer)
        assert event["attrs"]["error"] == "RuntimeError"

    def test_threads_get_independent_stacks(self):
        buffer = io.StringIO()
        tracer, _ = _tracer_over(buffer)
        barrier = threading.Barrier(2)

        def work(label: str) -> None:
            with tracer.span("outer", who=label):
                barrier.wait(timeout=5)
                with tracer.span("inner", who=label):
                    pass

        threads = [
            threading.Thread(target=work, args=(label,)) for label in ("a", "b")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        events = _events(buffer)
        outers = {
            event["attrs"]["who"]: event
            for event in events
            if event["name"] == "outer"
        }
        for event in events:
            if event["name"] == "inner":
                # each inner nests under its own thread's outer span
                assert event["parent"] == outers[event["attrs"]["who"]]["id"]

    def test_null_tracer_is_disabled_and_free(self):
        assert not NULL_TRACER.enabled
        with NULL_TRACER.span("anything", x=1) as span:
            assert span is None


class TestSink:
    def test_bounded_sink_drops_and_marks_truncation(self):
        buffer = io.StringIO()
        tracer, sink = _tracer_over(buffer, max_events=2)
        for index in range(5):
            with tracer.span("s", i=index):
                pass
        assert sink.written == 2
        assert sink.dropped == 3
        sink.close()
        events = _events(buffer)
        assert len(events) == 3
        assert events[-1]["name"] == "trace_truncated"
        assert events[-1]["attrs"]["dropped_events"] == 3

    def test_sink_rejects_nonpositive_cap(self):
        with pytest.raises(ValidationError):
            TraceSink(io.StringIO(), max_events=0)

    def test_close_is_idempotent_and_emit_after_close_drops(self):
        buffer = io.StringIO()
        sink = TraceSink(buffer)
        sink.close()
        sink.close()
        assert not sink.emit({"name": "late"})
        assert sink.dropped == 1

    def test_path_target_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceSink(path) as sink:
            tracer = Tracer(sink)
            with tracer.span("root"):
                pass
        events = read_trace_events(path)
        assert [event["name"] for event in events] == ["root"]


class TestTraceFiles:
    def test_torn_trailing_line_is_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        good = json.dumps({"name": "ok", "id": 1, "parent": None, "ts": 0.0})
        path.write_text(good + "\n" + '{"name": "torn', encoding="utf-8")
        events = read_trace_events(path)
        assert [event["name"] for event in events] == ["ok"]

    def test_midfile_corruption_raises(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        good = json.dumps({"name": "ok", "id": 1, "parent": None, "ts": 0.0})
        path.write_text("not json\n" + good + "\n", encoding="utf-8")
        with pytest.raises(ValidationError):
            read_trace_events(path)

    def test_chrome_trace_conversion(self, tmp_path):
        events = [
            {
                "name": "ingest",
                "id": 1,
                "parent": None,
                "ts": 0.001,
                "dur": 0.5,
                "pid": 7,
                "tid": 9,
                "attrs": {"path": "a.csv"},
            },
            {
                "name": "parse",
                "id": 2,
                "parent": 1,
                "ts": 0.002,
                "dur": 0.1,
                "pid": 7,
                "tid": 9,
                "attrs": {},
            },
        ]
        payload = to_chrome_trace(events)
        assert payload["displayTimeUnit"] == "ms"
        ingest, parse = payload["traceEvents"]
        assert ingest["ph"] == "X"
        assert ingest["ts"] == pytest.approx(1000.0)  # seconds -> µs
        assert ingest["dur"] == pytest.approx(500_000.0)
        assert ingest["args"]["span_id"] == 1
        assert "parent_span_id" not in ingest["args"]
        assert parse["args"]["parent_span_id"] == 1

        out = tmp_path / "trace.json"
        write_chrome_trace(events, out)
        assert json.loads(out.read_text(encoding="utf-8")) == payload
