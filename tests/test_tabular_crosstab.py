"""Tests for repro.tabular.crosstab."""

import numpy as np
import pytest

from repro.exceptions import SchemaError, ValidationError
from repro.tabular.crosstab import ContingencyTable, crosstab
from repro.tabular.table import Table


class TestFromTable:
    def test_counts(self, hiring_table):
        table = crosstab(hiring_table, ["gender", "race"], "hired")
        assert table.counts.shape == (2, 2, 2)
        assert table.cell(("A", "X"), "yes") == 3
        assert table.cell(("A", "Y"), "no") == 3
        assert table.total() == 16

    def test_single_factor_string(self, hiring_table):
        table = crosstab(hiring_table, "gender", "hired")
        assert table.counts.shape == (2, 2)

    def test_outcome_cannot_be_factor(self, hiring_table):
        with pytest.raises(ValidationError):
            crosstab(hiring_table, ["hired"], "hired")

    def test_numeric_column_rejected(self, numeric_table):
        with pytest.raises(SchemaError):
            crosstab(numeric_table, ["group"], "x")

    def test_group_labels_order(self, hiring_table):
        table = crosstab(hiring_table, ["gender", "race"], "hired")
        assert table.group_labels() == [
            ("A", "X"),
            ("A", "Y"),
            ("B", "X"),
            ("B", "Y"),
        ]

    def test_group_outcome_matrix_alignment(self, hiring_table):
        table = crosstab(hiring_table, ["gender", "race"], "hired")
        matrix, labels = table.group_outcome_matrix()
        index = labels.index(("A", "X"))
        yes_column = table.outcome_levels.index("yes")
        assert matrix[index, yes_column] == 3

    def test_group_sizes_and_outcome_totals(self, hiring_table):
        table = crosstab(hiring_table, ["gender"], "hired")
        assert table.group_sizes().tolist() == [8.0, 8.0]
        assert table.outcome_totals().sum() == 16


class TestFromGroupCounts:
    def test_basic(self):
        table = ContingencyTable.from_group_counts(
            {("a",): [1, 2], ("b",): [3, 4]},
            factor_names=["g"],
            outcome_name="y",
            outcome_levels=["no", "yes"],
        )
        assert table.cell(("b",), "yes") == 4

    def test_missing_cells_zero_filled(self):
        table = ContingencyTable.from_group_counts(
            {("a", "x"): [1, 0], ("b", "y"): [0, 1]},
            factor_names=["g", "h"],
            outcome_name="y",
            outcome_levels=["no", "yes"],
        )
        assert table.cell(("a", "y"), "yes") == 0

    def test_key_arity_checked(self):
        with pytest.raises(ValidationError):
            ContingencyTable.from_group_counts(
                {("a",): [1, 2]},
                factor_names=["g", "h"],
                outcome_name="y",
                outcome_levels=["no", "yes"],
            )

    def test_outcome_count_length_checked(self):
        with pytest.raises(ValidationError):
            ContingencyTable.from_group_counts(
                {("a",): [1]},
                factor_names=["g"],
                outcome_name="y",
                outcome_levels=["no", "yes"],
            )


class TestValidation:
    def test_negative_counts_rejected(self):
        with pytest.raises(ValidationError):
            ContingencyTable(
                np.array([[-1.0, 1.0]]),
                ["g"],
                [["a"]],
                "y",
                ["no", "yes"],
            )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            ContingencyTable(
                np.zeros((2, 2)), ["g"], [["a"]], "y", ["no", "yes"]
            )

    def test_duplicate_factor_names_rejected(self):
        with pytest.raises(ValidationError):
            ContingencyTable(
                np.zeros((1, 1, 2)), ["g", "g"], [["a"], ["b"]], "y", ["n", "y2"]
            )


class TestMarginalize:
    def test_sums_out_factors(self, hiring_table):
        full = crosstab(hiring_table, ["gender", "race"], "hired")
        marginal = full.marginalize(["gender"])
        assert marginal.factor_names == ["gender"]
        assert marginal.cell(("A",), "yes") == 4  # 3 + 1
        assert marginal.total() == full.total()

    def test_keeps_requested_order(self, hiring_table):
        full = crosstab(hiring_table, ["gender", "race"], "hired")
        swapped = full.marginalize(["race", "gender"])
        assert swapped.factor_names == ["race", "gender"]
        assert swapped.cell(("X", "A"), "yes") == full.cell(("A", "X"), "yes")

    def test_identity(self, hiring_table):
        full = crosstab(hiring_table, ["gender", "race"], "hired")
        same = full.marginalize(["gender", "race"])
        assert np.array_equal(same.counts, full.counts)

    def test_unknown_factor_rejected(self, hiring_table):
        full = crosstab(hiring_table, ["gender"], "hired")
        with pytest.raises(SchemaError):
            full.marginalize(["height"])

    def test_empty_keep_rejected(self, hiring_table):
        full = crosstab(hiring_table, ["gender"], "hired")
        with pytest.raises(ValidationError):
            full.marginalize([])

    def test_duplicate_keep_rejected(self, hiring_table):
        full = crosstab(hiring_table, ["gender", "race"], "hired")
        with pytest.raises(ValidationError):
            full.marginalize(["gender", "gender"])


class TestMisc:
    def test_scale(self, hiring_table):
        table = crosstab(hiring_table, ["gender"], "hired")
        doubled = table.scale(2.0)
        assert doubled.total() == 32

    def test_scale_rejects_nonpositive(self, hiring_table):
        table = crosstab(hiring_table, ["gender"], "hired")
        with pytest.raises(ValidationError):
            table.scale(0.0)

    def test_cell_unknown_level(self, hiring_table):
        table = crosstab(hiring_table, ["gender"], "hired")
        with pytest.raises(KeyError):
            table.cell(("Q",), "yes")
        with pytest.raises(KeyError):
            table.cell(("A",), "maybe")

    def test_to_text_contains_counts(self, hiring_table):
        table = crosstab(hiring_table, ["gender"], "hired")
        assert "gender" in table.to_text()
