"""Fairness gerrymandering: differential fairness catches what marginal
demographic parity misses.

Dwork et al.'s "subset targeting" critique (Section 7.1 of the paper): a
mechanism can satisfy demographic parity on each attribute *separately*
while discriminating at their intersections. These tests construct such
mechanisms and verify that the intersectional epsilon exposes them.
"""

import math

import pytest

from repro.core.empirical import dataset_edf
from repro.core.subsets import subset_sweep
from repro.data.generators import expand_cells_to_table
from repro.metrics.demographic_parity import demographic_parity_difference


def gerrymandered_table():
    """Approval rates: 0.6/0.2 on one diagonal, 0.2/0.6 on the other.

    Both marginal views see a uniform 0.4 approval rate; the intersections
    differ by a factor of three.
    """
    cells = {
        ("F", "X"): [40, 60],   # (denied, approved): rate 0.6
        ("F", "Y"): [80, 20],   # rate 0.2
        ("M", "X"): [80, 20],   # rate 0.2
        ("M", "Y"): [40, 60],   # rate 0.6
    }
    return expand_cells_to_table(
        cells,
        attribute_names=["gender", "race"],
        outcome_name="approved",
        outcome_levels=["no", "yes"],
    )


class TestGerrymanderingDetection:
    def test_marginal_views_see_perfect_parity(self):
        table = gerrymandered_table()
        sweep = subset_sweep(
            table, protected=["gender", "race"], outcome="approved"
        )
        assert sweep.epsilon("gender") == pytest.approx(0.0, abs=1e-12)
        assert sweep.epsilon("race") == pytest.approx(0.0, abs=1e-12)

    def test_marginal_demographic_parity_is_satisfied(self):
        table = gerrymandered_table()
        approvals = table.column("approved").to_list()
        for attribute in ("gender", "race"):
            groups = table.column(attribute).to_list()
            assert demographic_parity_difference(
                approvals, groups, positive="yes"
            ) == pytest.approx(0.0, abs=1e-12)

    def test_intersectional_epsilon_exposes_the_targeting(self):
        table = gerrymandered_table()
        result = dataset_edf(
            table, protected=["gender", "race"], outcome="approved"
        )
        assert result.epsilon == pytest.approx(math.log(3))
        assert result.witness.outcome == "yes"

    def test_subset_theorem_still_holds(self):
        """The 2x bound runs in the safe direction: zero marginal epsilon
        implies nothing about the intersection, but a small intersectional
        epsilon WOULD bound the marginals."""
        table = gerrymandered_table()
        sweep = subset_sweep(
            table, protected=["gender", "race"], outcome="approved"
        )
        assert sweep.theorem_violations() == []
        # The converse direction is exactly what gerrymandering exploits:
        assert sweep.full_epsilon > 10 * max(
            sweep.epsilon("gender"), sweep.epsilon("race")
        )

    def test_subgroup_fairness_also_catches_it(self):
        """Kearns et al.'s metric over the intersections agrees."""
        from repro.metrics.subgroup_fairness import (
            statistical_parity_subgroup_fairness,
        )

        table = gerrymandered_table()
        groups = list(
            zip(table.column("gender").to_list(), table.column("race").to_list())
        )
        violations = statistical_parity_subgroup_fairness(
            table.column("approved").to_list(), groups, positive="yes"
        )
        assert violations[0].violation == pytest.approx(0.25 * 0.2)

    def test_three_way_gerrymander(self):
        """Targeting hidden one level deeper: all two-way views clean."""
        cells = {}
        for gender in ("F", "M"):
            for race in ("X", "Y"):
                for nation in ("U", "V"):
                    # XOR of the three attribute parities decides the rate.
                    parity = (
                        (gender == "M") ^ (race == "Y") ^ (nation == "V")
                    )
                    rate = 0.6 if parity else 0.2
                    cells[(gender, race, nation)] = [
                        int(100 * (1 - rate)),
                        int(100 * rate),
                    ]
        table = expand_cells_to_table(
            cells,
            attribute_names=["gender", "race", "nation"],
            outcome_name="approved",
            outcome_levels=["no", "yes"],
        )
        sweep = subset_sweep(
            table, protected=["gender", "race", "nation"], outcome="approved"
        )
        for subset in (
            ("gender",), ("race",), ("nation",),
            ("gender", "race"), ("gender", "nation"), ("race", "nation"),
        ):
            assert sweep.epsilon(subset) == pytest.approx(0.0, abs=1e-12), subset
        assert sweep.full_epsilon == pytest.approx(math.log(3))
