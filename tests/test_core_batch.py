"""Tests for repro.core.batch — the vectorised batch epsilon kernel.

The kernel must agree with the pointwise :func:`epsilon_from_probabilities`
draw by draw, including every edge convention: NaN rows (excluded groups),
all-zero outcome columns (outside Range(M)), zero-probability cells
(infinite epsilon), and fewer than two populated groups (vacuous zero).
"""

import math

import numpy as np
import pytest
from scipy import stats

from repro.core.batch import (
    epsilon_batch,
    per_outcome_epsilon_batch,
    witness_batch,
)
from repro.core.epsilon import epsilon_from_probabilities
from repro.distributions.dirichlet import GroupOutcomePosterior
from repro.exceptions import ValidationError


def random_stack(
    rng: np.random.Generator,
    n_draws: int,
    n_groups: int,
    n_outcomes: int,
    nan_row_rate: float = 0.0,
    zero_cell_rate: float = 0.0,
    dead_column: bool = False,
) -> np.ndarray:
    """Random probability stack exercising the kernel's edge conventions."""
    raw = rng.dirichlet(np.ones(n_outcomes), size=(n_draws, n_groups))
    if zero_cell_rate > 0:
        zeros = rng.random(raw.shape) < zero_cell_rate
        # Never zero a full row: rows must stay valid distributions.
        zeros[..., 0] = False
        raw = np.where(zeros, 0.0, raw)
    if dead_column:
        # Outcome column n-1 impossible for every group: outside Range(M).
        raw[..., -1] = 0.0
    raw = raw / raw.sum(axis=2, keepdims=True)
    if nan_row_rate > 0:
        dead_rows = rng.random((n_draws, n_groups)) < nan_row_rate
        raw[dead_rows] = np.nan
    return raw


def pointwise_epsilons(stack: np.ndarray) -> np.ndarray:
    return np.array(
        [
            epsilon_from_probabilities(matrix, validate=False).epsilon
            for matrix in stack
        ]
    )


class TestAgreementWithPointwise:
    @pytest.mark.parametrize("n_groups,n_outcomes", [(2, 2), (5, 3), (16, 4)])
    def test_clean_stacks(self, rng, n_groups, n_outcomes):
        stack = random_stack(rng, 40, n_groups, n_outcomes)
        assert np.array_equal(epsilon_batch(stack), pointwise_epsilons(stack))

    def test_nan_rows(self, rng):
        stack = random_stack(rng, 60, 6, 3, nan_row_rate=0.3)
        assert np.array_equal(epsilon_batch(stack), pointwise_epsilons(stack))

    def test_zero_cells_give_matching_infinities(self, rng):
        stack = random_stack(rng, 60, 5, 3, zero_cell_rate=0.2)
        batched = epsilon_batch(stack)
        looped = pointwise_epsilons(stack)
        assert np.isinf(batched).any()  # the regime is actually exercised
        assert np.array_equal(batched, looped)

    def test_dead_column_outside_range(self, rng):
        stack = random_stack(rng, 30, 4, 3, dead_column=True)
        batched = epsilon_batch(stack)
        assert np.array_equal(batched, pointwise_epsilons(stack))
        assert np.isfinite(batched).all()  # dead column never constrains

    def test_everything_at_once(self, rng):
        stack = random_stack(
            rng, 80, 6, 4, nan_row_rate=0.25, zero_cell_rate=0.15,
            dead_column=True,
        )
        assert np.array_equal(epsilon_batch(stack), pointwise_epsilons(stack))

    def test_per_outcome_rows_match(self, rng):
        stack = random_stack(rng, 25, 5, 3, zero_cell_rate=0.1)
        per_outcome, _ = per_outcome_epsilon_batch(stack)
        for draw, matrix in enumerate(stack):
            expected = epsilon_from_probabilities(
                matrix, validate=False
            ).per_outcome
            for column in range(stack.shape[2]):
                want = expected[column]
                got = per_outcome[draw, column]
                assert (math.isnan(want) and math.isnan(got)) or want == got


class TestVacuousDraws:
    def test_fewer_than_two_populated_groups(self):
        one_group = np.array([[[0.5, 0.5], [np.nan, np.nan]]])
        no_groups = np.full((1, 2, 2), np.nan)
        assert epsilon_batch(one_group).tolist() == [0.0]
        assert epsilon_batch(no_groups).tolist() == [0.0]

    def test_vacuous_witness_is_sentinel(self):
        witness = witness_batch(np.full((1, 3, 2), np.nan))
        assert witness["outcome"][0] == -1
        assert witness["group_high"][0] == -1
        assert math.isnan(witness["prob_high"][0])
        assert witness["epsilon"][0] == 0.0

    def test_group_mass_excludes_rows(self, rng):
        stack = random_stack(rng, 20, 4, 2)
        mass = np.array([1.0, 0.0, 2.0, 1.0])
        batched = epsilon_batch(stack, group_mass=mass)
        looped = np.array(
            [
                epsilon_from_probabilities(
                    matrix, group_mass=mass, validate=False
                ).epsilon
                for matrix in stack
            ]
        )
        assert np.array_equal(batched, looped)


class TestWitnessExtraction:
    def test_matches_pointwise_witness(self, rng):
        stack = random_stack(rng, 50, 6, 3, nan_row_rate=0.2, zero_cell_rate=0.1)
        witness = witness_batch(stack)
        for draw, matrix in enumerate(stack):
            result = epsilon_from_probabilities(matrix, validate=False)
            if result.witness is None:
                assert witness["outcome"][draw] == -1
                continue
            assert result.witness.outcome == int(witness["outcome"][draw])
            assert result.witness.group_high == (int(witness["group_high"][draw]),)
            assert result.witness.group_low == (int(witness["group_low"][draw]),)
            assert result.witness.prob_high == witness["prob_high"][draw]
            assert result.witness.prob_low == witness["prob_low"][draw]
            assert result.epsilon == witness["epsilon"][draw]


class TestValidation:
    def test_rejects_2d_input(self):
        with pytest.raises(ValidationError):
            epsilon_batch(np.ones((3, 2)))

    def test_rejects_single_outcome(self):
        with pytest.raises(ValidationError):
            epsilon_batch(np.ones((3, 2, 1)))

    def test_rejects_misaligned_mass(self, rng):
        stack = random_stack(rng, 5, 3, 2)
        with pytest.raises(ValidationError):
            epsilon_batch(stack, group_mass=[1.0])

    def test_rejects_negative_mass(self, rng):
        stack = random_stack(rng, 5, 3, 2)
        with pytest.raises(ValidationError):
            epsilon_batch(stack, group_mass=[1.0, -1.0, 1.0])

    def test_validate_flag_checks_rows(self, rng):
        stack = random_stack(rng, 5, 3, 2)
        stack[2, 1] = [0.5, 0.2]  # does not sum to one
        epsilon_batch(stack)  # off by default: Monte Carlo rows are valid
        with pytest.raises(ValidationError, match="sum to 1"):
            epsilon_batch(stack, validate=True)
        stack[2, 1] = [-0.5, 1.5]
        with pytest.raises(ValidationError, match=r"\[0, 1\]"):
            epsilon_batch(stack, validate=True)


class TestVectorisedSampler:
    """The gamma-normalisation sampler must match the per-group Dirichlet
    loop it replaced *in distribution* (the bit-stream consumption changed,
    so draws for a fixed seed are different variates of the same law)."""

    COUNTS = np.array([[30.0, 10.0], [5.0, 45.0], [0.0, 0.0], [12.0, 12.0]])

    @staticmethod
    def looped_reference(counts, alpha, n, seed):
        """The historical implementation: one rng.dirichlet per group per draw."""
        rng = np.random.default_rng(seed)
        stack = np.full((n, *counts.shape), np.nan)
        for draw in range(n):
            for group, row in enumerate(counts):
                if row.sum() > 0:
                    stack[draw, group] = rng.dirichlet(row + alpha)
        return stack

    def test_shapes_and_conventions(self):
        posterior = GroupOutcomePosterior(self.COUNTS, prior_concentration=1.0)
        stack = posterior.sample_matrices(9, seed=0)
        assert stack.shape == (9, 4, 2)
        assert np.isnan(stack[:, 2, :]).all()  # empty group excluded
        populated = np.delete(stack, 2, axis=1)
        assert np.allclose(populated.sum(axis=2), 1.0)
        assert (populated >= 0).all()

    def test_marginals_match_loop_distribution(self):
        """KS two-sample test per populated group's first coordinate."""
        n = 4000
        posterior = GroupOutcomePosterior(self.COUNTS, prior_concentration=1.0)
        vectorised = posterior.sample_matrices(n, seed=7)
        looped = self.looped_reference(self.COUNTS, 1.0, n, seed=11)
        for group in (0, 1, 3):
            statistic = stats.ks_2samp(
                vectorised[:, group, 0], looped[:, group, 0]
            )
            assert statistic.pvalue > 1e-3, f"group {group} marginal diverged"

    def test_moments_match_posterior(self):
        """Sample mean/variance agree with the analytic Dirichlet moments."""
        n = 20_000
        posterior = GroupOutcomePosterior(self.COUNTS, prior_concentration=1.0)
        stack = posterior.sample_matrices(n, seed=3)
        for group in (0, 1, 3):
            alpha = self.COUNTS[group] + 1.0
            total = alpha.sum()
            mean = alpha / total
            var = alpha * (total - alpha) / (total**2 * (total + 1.0))
            assert stack[:, group].mean(axis=0) == pytest.approx(mean, abs=0.01)
            assert stack[:, group].var(axis=0) == pytest.approx(
                var, rel=0.15, abs=1e-4
            )

    def test_sample_matrix_is_first_slice(self):
        posterior = GroupOutcomePosterior(self.COUNTS, prior_concentration=1.0)
        assert np.array_equal(
            posterior.sample_matrix(seed=5),
            posterior.sample_matrices(1, seed=5)[0],
            equal_nan=True,
        )

    def test_rejects_zero_draws(self):
        posterior = GroupOutcomePosterior(self.COUNTS)
        with pytest.raises(ValidationError):
            posterior.sample_matrices(0)
