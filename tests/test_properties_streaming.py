"""Property-based tests (hypothesis) for the streaming audit subsystem.

The algebraic contract of :class:`repro.core.streaming.StreamingContingency`
is what makes sharded and windowed deployment sound:

* ``merge`` is associative and commutative (any shard/reduce tree over a
  partitioned stream yields the same counts);
* ``update`` then ``retract`` of the same rows is an identity on the
  counted content (sliding windows are exact, not approximate);
* a shard-split + merge of any row set produces an accumulator whose
  snapshot audit is **bit-identical** to
  :meth:`FairnessAuditor.audit_dataset` on the concatenated table —
  including the posterior sweep for a fixed seed.

These are checked here on arbitrary row multisets, shard assignments,
and arrival orders.
"""

from __future__ import annotations

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.audit.auditor import FairnessAuditor
from repro.core.streaming import StreamingContingency
from repro.engine.backends import tree_merge
from repro.tabular.crosstab import ContingencyTable
from repro.tabular.table import Table

FACTOR_POOLS = [
    ("a0", "a1", "a2"),
    ("b0", "b1"),
    ("c0", "c1", "c2"),
]
OUTCOME_POOL = ("no", "yes", "maybe")


@st.composite
def row_sets(draw, min_rows=0, max_rows=30):
    """(factor names, rows) over small alphabets; 1-3 protected attributes."""
    n_factors = draw(st.integers(1, 3))
    names = [f"f{index}" for index in range(n_factors)]
    cell = st.tuples(
        *(st.sampled_from(FACTOR_POOLS[index]) for index in range(n_factors)),
        st.sampled_from(OUTCOME_POOL),
    )
    rows = draw(st.lists(cell, min_size=min_rows, max_size=max_rows))
    return names, rows


def build(names, rows) -> StreamingContingency:
    return StreamingContingency(names, "y").update(rows)


def snapshot_key(accumulator: StreamingContingency):
    """Canonical fingerprint: snapshot levels + count tensor bytes."""
    snapshot = accumulator.snapshot()
    return (
        tuple(snapshot.factor_names),
        tuple(map(tuple, snapshot.factor_levels)),
        tuple(snapshot.outcome_levels),
        snapshot.counts.tobytes(),
    )


def counted_content(accumulator: StreamingContingency):
    """The multiset actually counted: nonzero cells only.

    Retraction zeroes counts but keeps discovered levels, so identity is
    stated on content, not on tensor shape.
    """
    snapshot = accumulator.snapshot()
    if snapshot.counts.size == 0:  # nothing ever counted: no levels yet
        return {}
    matrix, labels = snapshot.group_outcome_matrix()
    return {
        (label, outcome): value
        for label, row in zip(labels, matrix)
        for outcome, value in zip(snapshot.outcome_levels, row)
        if value
    }


class TestMergeAlgebra:
    @given(row_sets(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_merge_commutative(self, ab, data):
        names, rows = ab
        split = data.draw(st.integers(0, len(rows)))
        a = build(names, rows[:split])
        b = build(names, rows[split:])
        assert snapshot_key(a.merge(b)) == snapshot_key(b.merge(a))

    @given(row_sets(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_merge_associative(self, abc, data):
        names, rows = abc
        first = data.draw(st.integers(0, len(rows)))
        second = data.draw(st.integers(first, len(rows)))
        a = build(names, rows[:first])
        b = build(names, rows[first:second])
        c = build(names, rows[second:])
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert snapshot_key(left) == snapshot_key(right)
        assert left.n_rows == right.n_rows == len(rows)

    @given(row_sets())
    @settings(max_examples=40, deadline=None)
    def test_merge_with_empty_is_identity(self, ab):
        names, rows = ab
        accumulator = build(names, rows)
        empty = StreamingContingency(names, "y")
        assert snapshot_key(accumulator.merge(empty)) == snapshot_key(accumulator)
        assert snapshot_key(empty.merge(accumulator)) == snapshot_key(accumulator)


class TestUpdateRetract:
    @given(row_sets(), row_sets())
    @settings(max_examples=60, deadline=None)
    def test_update_then_retract_is_identity(self, base_set, extra_set):
        base_names, base_rows = base_set
        extra_names, extra_rows = extra_set
        assume(len(extra_names) == len(base_names))
        accumulator = build(base_names, base_rows)
        before_content = counted_content(accumulator)
        before_rows = accumulator.n_rows
        accumulator.update(extra_rows)
        accumulator.retract(extra_rows)
        assert counted_content(accumulator) == before_content
        assert accumulator.n_rows == before_rows

    @given(row_sets(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_retract_in_any_order(self, ab, data):
        """Retracting a permutation of a sub-multiset equals never adding it."""
        names, rows = ab
        split = data.draw(st.integers(0, len(rows)))
        removed = data.draw(st.permutations(rows[split:]))
        accumulator = build(names, rows)
        accumulator.retract(removed)
        assert counted_content(accumulator) == counted_content(
            build(names, rows[:split])
        )


class TestShardSplitAuditBitIdentity:
    @given(row_sets(min_rows=2), st.data())
    @settings(max_examples=50, deadline=None)
    def test_sharded_merge_audit_matches_audit_dataset(self, ab, data):
        names, rows = ab
        assume(len({row[-1] for row in rows}) >= 2)
        n_shards = data.draw(st.integers(1, 4))
        assignment = data.draw(
            st.lists(
                st.integers(0, n_shards - 1),
                min_size=len(rows),
                max_size=len(rows),
            )
        )

        shards = [StreamingContingency(names, "y") for _ in range(n_shards)]
        for row, shard in zip(rows, assignment):
            shards[shard].update([row])
        merged = shards[0]
        for shard in shards[1:]:
            merged = merged.merge(shard)

        table = Table.from_rows([*names, "y"], rows)
        auditor = FairnessAuditor(names, "y", posterior_samples=8, seed=3)
        reference = auditor.audit_dataset(table)
        streamed = auditor.audit_contingency(merged.snapshot())

        # The count tensors agree bitwise, so every downstream statistic
        # must too; both layers are asserted to localise failures.
        table_contingency = ContingencyTable.from_table(table, names, "y")
        snapshot = merged.snapshot()
        assert snapshot.factor_levels == table_contingency.factor_levels
        assert snapshot.outcome_levels == table_contingency.outcome_levels
        assert np.array_equal(snapshot.counts, table_contingency.counts)

        for subset, result in reference.sweep.results.items():
            streamed_result = streamed.sweep.results[subset]
            assert streamed_result.epsilon == result.epsilon
            assert np.array_equal(
                streamed_result.probabilities,
                result.probabilities,
                equal_nan=True,
            )
        assert streamed.interpretation == reference.interpretation
        assert streamed.posterior.mean == reference.posterior.mean
        assert streamed.posterior.quantiles == reference.posterior.quantiles
        for subset, samples in reference.posterior_sweep.samples.items():
            assert np.array_equal(
                streamed.posterior_sweep.epsilon_samples(subset), samples
            )


class TestTreeMergeAtScale:
    """Merge-at-scale: the execution engine's reduction is bit-exact.

    K shards (K in 2..8) with an arbitrary row assignment — including
    *empty* shards and shards whose rows introduce levels no other shard
    has seen — are reduced by the engine's balanced
    :func:`repro.engine.backends.tree_merge`. The result must be
    bit-identical to one serial ingest of all rows: point epsilon for
    every attribute subset *and* the posterior audit for a fixed seed.
    """

    @given(row_sets(min_rows=2, max_rows=40), st.data())
    @settings(max_examples=40, deadline=None)
    def test_tree_merge_of_k_shards_is_bit_identical(self, ab, data):
        names, rows = ab
        assume(len({row[-1] for row in rows}) >= 2)
        n_shards = data.draw(st.integers(2, 8))
        assignment = data.draw(
            st.lists(
                st.integers(0, n_shards - 1),
                min_size=len(rows),
                max_size=len(rows),
            )
        )

        shards = [StreamingContingency(names, "y") for _ in range(n_shards)]
        for row, shard in zip(rows, assignment):
            shards[shard].update([row])
        merged = tree_merge(shards)
        assert merged.n_rows == len(rows)

        serial = StreamingContingency(names, "y").update(rows)
        assert snapshot_key(merged) == snapshot_key(serial)

        auditor = FairnessAuditor(names, "y", posterior_samples=6, seed=11)
        reference = auditor.audit_contingency(serial.snapshot())
        sharded = auditor.audit_contingency(merged.snapshot())
        for subset, result in reference.sweep.results.items():
            assert sharded.sweep.results[subset].epsilon == result.epsilon
        assert sharded.posterior.mean == reference.posterior.mean
        assert sharded.posterior.quantiles == reference.posterior.quantiles
        assert sharded.to_text() == reference.to_text()

    def test_empty_and_unseen_level_shards_merge_exactly(self):
        """The deterministic worst case: empties plus disjoint levels."""
        names = ["f0"]
        shards = [
            StreamingContingency(names, "y"),  # never sees a row
            StreamingContingency(names, "y").update(
                [("a0", "no"), ("a0", "yes")]
            ),
            StreamingContingency(names, "y"),  # also empty
            StreamingContingency(names, "y").update(
                [("a2", "maybe"), ("a1", "no")]  # levels unseen elsewhere
            ),
        ]
        merged = tree_merge(shards)
        serial = StreamingContingency(names, "y").update(
            [("a0", "no"), ("a0", "yes"), ("a2", "maybe"), ("a1", "no")]
        )
        assert snapshot_key(merged) == snapshot_key(serial)
