"""Package-level API tests: exports, version, and docstring examples."""

import doctest
import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"
        from repro.version import PAPER

        assert "Intersectional" in PAPER

    @pytest.mark.parametrize("name", repro.__all__)
    def test_all_names_resolve(self, name):
        assert getattr(repro, name) is not None

    def test_core_quick_path(self):
        """The README quickstart snippet works verbatim."""
        from repro import Table, dataset_edf, interpret_epsilon, subset_sweep

        table = Table.from_dict(
            {
                "gender": ["F", "F", "M", "M", "M", "F"],
                "race": ["X", "Y", "X", "Y", "X", "X"],
                "loan": ["no", "yes", "yes", "yes", "no", "yes"],
            }
        )
        result = dataset_edf(table, protected=["gender", "race"], outcome="loan")
        assert result.epsilon >= 0
        interpret_epsilon(result.epsilon)
        sweep = subset_sweep(table, protected=["gender", "race"], outcome="loan")
        assert sweep.theorem_bound() == pytest.approx(2 * sweep.full_epsilon)


SUBPACKAGES = [
    "repro.core",
    "repro.tabular",
    "repro.distributions",
    "repro.mechanisms",
    "repro.metrics",
    "repro.learn",
    "repro.data",
    "repro.audit",
    "repro.utils",
]


class TestSubpackages:
    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_imports_cleanly(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} is missing a docstring"

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_all_exports_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert getattr(module, name) is not None, f"{module_name}.{name}"


METRIC_MODULES = [
    "repro.metrics.calibration",
    "repro.metrics.demographic_parity",
    "repro.metrics.equalized_odds",
    "repro.metrics.subgroup_fairness",
]


class TestMetricExportCompleteness:
    """Every public def/class in a metric module is re-exported.

    ``demographic_parity_epsilon`` spent several releases defined and
    documented but absent from both the module ``__all__`` and the
    package surface; this closes the class of bug."""

    @pytest.mark.parametrize("module_name", METRIC_MODULES)
    def test_module_all_covers_every_public_definition(self, module_name):
        import inspect

        module = importlib.import_module(module_name)
        public = {
            name
            for name, item in vars(module).items()
            if not name.startswith("_")
            and (inspect.isfunction(item) or inspect.isclass(item))
            and getattr(item, "__module__", None) == module_name
        }
        missing = public - set(module.__all__)
        assert not missing, f"{module_name}.__all__ is missing {sorted(missing)}"

    @pytest.mark.parametrize("module_name", METRIC_MODULES)
    def test_package_all_covers_every_module_export(self, module_name):
        import repro.metrics

        module = importlib.import_module(module_name)
        missing = set(module.__all__) - set(repro.metrics.__all__)
        assert not missing, (
            f"repro.metrics.__all__ is missing {sorted(missing)} "
            f"from {module_name}"
        )

    def test_the_original_orphan_is_reachable(self):
        import repro.metrics

        assert "demographic_parity_epsilon" in repro.metrics.__all__
        assert callable(repro.metrics.demographic_parity_epsilon)


DOCTEST_MODULES = [
    "repro.core.empirical",
    "repro.utils.formatting",
]


class TestDoctests:
    @pytest.mark.parametrize("module_name", DOCTEST_MODULES)
    def test_doctests_pass(self, module_name):
        module = importlib.import_module(module_name)
        failures, _ = doctest.testmod(module, verbose=False)
        assert failures == 0


class TestPublicDocstrings:
    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_public_callables_documented(self, module_name):
        """Every public item reachable from a subpackage has a docstring."""
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            item = getattr(module, name)
            if callable(item) or isinstance(item, type):
                assert item.__doc__, f"{module_name}.{name} lacks a docstring"
