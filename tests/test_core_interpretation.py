"""Tests for repro.core.interpretation and amplification."""

import math

import pytest

from repro.core.amplification import bias_amplification
from repro.core.epsilon import epsilon_from_probabilities
from repro.core.interpretation import (
    HIGH_FAIRNESS_THRESHOLD,
    RANDOMIZED_RESPONSE_EPSILON,
    FairnessRegime,
    interpret_epsilon,
    utility_factor,
)


class TestInterpretEpsilon:
    def test_perfect(self):
        assert interpret_epsilon(0.0).regime is FairnessRegime.PERFECT

    def test_high(self):
        assert interpret_epsilon(0.5).regime is FairnessRegime.HIGH

    def test_boundary_at_one(self):
        assert interpret_epsilon(0.999).regime is FairnessRegime.HIGH
        assert interpret_epsilon(1.0).regime is FairnessRegime.MODERATE

    def test_randomized_response_is_moderate(self):
        """ln(3) sits 'slightly above the high-privacy cut-off' (Sec 3.3)."""
        regime = interpret_epsilon(RANDOMIZED_RESPONSE_EPSILON).regime
        assert regime is FairnessRegime.MODERATE

    def test_figure2_epsilon_is_weak(self):
        # The paper calls 2.337 'clearly unsatisfactory'.
        assert interpret_epsilon(2.337).regime is FairnessRegime.WEAK

    def test_twenty_is_negligible(self):
        # The paper: "eps = 20 ... almost meaningless".
        assert interpret_epsilon(20.0).regime is FairnessRegime.NEGLIGIBLE

    def test_utility_factor(self):
        assert interpret_epsilon(math.log(3)).utility_factor == pytest.approx(3.0)
        assert utility_factor(0.0) == 1.0
        assert utility_factor(math.inf) == math.inf

    def test_text_mentions_regime(self):
        text = interpret_epsilon(0.5).to_text()
        assert "high" in text
        assert interpret_epsilon(0.0).to_text().startswith("epsilon = 0")

    def test_negative_rejected(self):
        with pytest.raises(Exception):
            interpret_epsilon(-0.1)

    def test_constants(self):
        assert HIGH_FAIRNESS_THRESHOLD == 1.0
        assert RANDOMIZED_RESPONSE_EPSILON == pytest.approx(math.log(3))


class TestBiasAmplification:
    def test_difference(self):
        amp = bias_amplification(2.06, 2.14)
        assert amp.difference == pytest.approx(0.08)
        assert amp.amplifies

    def test_attenuation(self):
        amp = bias_amplification(2.06, 1.95)
        assert amp.difference == pytest.approx(-0.11)
        assert not amp.amplifies

    def test_disparity_factor(self):
        amp = bias_amplification(1.0, 1.0 + math.log(2))
        assert amp.disparity_factor == pytest.approx(2.0)

    def test_accepts_results(self):
        baseline = epsilon_from_probabilities([[0.5, 0.5], [0.25, 0.75]])
        mechanism = epsilon_from_probabilities([[0.5, 0.5], [0.125, 0.875]])
        amp = bias_amplification(baseline, mechanism)
        assert amp.epsilon_baseline == pytest.approx(baseline.epsilon)
        assert amp.epsilon_mechanism == pytest.approx(mechanism.epsilon)

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            bias_amplification(-1.0, 0.0)

    def test_text(self):
        assert "amplifies" in bias_amplification(1.0, 2.0).to_text()
        assert "attenuates" in bias_amplification(2.0, 1.0).to_text()
