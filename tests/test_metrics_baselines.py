"""Tests for repro.metrics — the related-work fairness baselines."""

import math

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.metrics.calibration import groupwise_calibration
from repro.metrics.demographic_parity import (
    demographic_parity_difference,
    demographic_parity_epsilon,
    demographic_parity_ratio,
    group_positive_rates,
)
from repro.metrics.equalized_odds import (
    equal_opportunity_difference,
    equalized_odds_difference,
    group_conditional_rates,
)
from repro.metrics.subgroup_fairness import statistical_parity_subgroup_fairness


class TestDemographicParity:
    def test_group_rates(self):
        rates = group_positive_rates(
            [1, 1, 0, 0, 1, 0], ["a", "a", "a", "b", "b", "b"], positive=1
        )
        assert rates == {"a": pytest.approx(2 / 3), "b": pytest.approx(1 / 3)}

    def test_difference(self):
        value = demographic_parity_difference(
            [1, 0, 1, 1], ["a", "a", "b", "b"], positive=1
        )
        assert value == pytest.approx(0.5)

    def test_ratio(self):
        value = demographic_parity_ratio(
            [1, 0, 1, 1], ["a", "a", "b", "b"], positive=1
        )
        assert value == pytest.approx(0.5)

    def test_ratio_all_zero(self):
        assert demographic_parity_ratio([0, 0], ["a", "b"], positive=1) == 1.0

    def test_epsilon_form_matches_log_ratio(self):
        value = demographic_parity_epsilon(
            [1, 0, 1, 1], ["a", "a", "b", "b"], positive=1
        )
        # rates 0.5 vs 1.0: positive side log 2; negative side 0.5/0 -> inf.
        assert value == math.inf

    def test_epsilon_finite_case(self):
        value = demographic_parity_epsilon(
            [1, 0, 0, 0, 1, 1, 1, 0], ["a"] * 4 + ["b"] * 4, positive=1
        )
        assert value == pytest.approx(math.log(3))

    def test_perfect_parity(self):
        assert (
            demographic_parity_difference([1, 0, 1, 0], ["a", "a", "b", "b"], 1)
            == 0.0
        )

    def test_single_group_rejected(self):
        with pytest.raises(ValidationError):
            group_positive_rates([1, 0], ["a", "a"], positive=1)


class TestEqualizedOdds:
    def test_conditional_rates(self):
        rates = group_conditional_rates(
            y_true=[1, 1, 0, 0, 1, 0],
            y_pred=[1, 0, 0, 1, 1, 0],
            groups=["a", "a", "a", "b", "b", "b"],
            positive=1,
        )
        assert rates["a"][1] == pytest.approx(0.5)  # TPR group a
        assert rates["a"][0] == pytest.approx(0.0)  # FPR group a
        assert rates["b"][1] == pytest.approx(1.0)
        assert rates["b"][0] == pytest.approx(0.5)

    def test_equalized_odds_difference(self):
        value = equalized_odds_difference(
            y_true=[1, 1, 0, 0, 1, 0],
            y_pred=[1, 0, 0, 1, 1, 0],
            groups=["a", "a", "a", "b", "b", "b"],
            positive=1,
        )
        assert value == pytest.approx(0.5)

    def test_perfect_classifier_satisfies_equalized_odds(self):
        y = [1, 0, 1, 0]
        assert (
            equalized_odds_difference(y, y, ["a", "a", "b", "b"], positive=1)
            == 0.0
        )

    def test_equal_opportunity(self):
        value = equal_opportunity_difference(
            y_true=[1, 1, 1, 1],
            y_pred=[1, 0, 1, 1],
            groups=["a", "a", "b", "b"],
            positive=1,
            deserving=1,
        )
        assert value == pytest.approx(0.5)

    def test_equal_opportunity_needs_two_groups_with_label(self):
        with pytest.raises(ValidationError):
            equal_opportunity_difference(
                [1, 0], [1, 0], ["a", "b"], positive=1, deserving=1
            )

    def test_disjoint_label_supports_raise_instead_of_zero(self):
        # Group a only ever has true label 1, group b only 0: no label is
        # observed in two groups, so no equalized-odds comparison exists.
        # This used to return a silent (and wrong) 0.0.
        with pytest.raises(
            ValidationError, match="fewer than two groups"
        ):
            equalized_odds_difference(
                y_true=[1, 1, 0, 0],
                y_pred=[1, 0, 0, 1],
                groups=["a", "a", "b", "b"],
                positive=1,
            )

    def test_one_common_label_is_enough(self):
        # Label 1 appears in both groups; label 0 only in group b and is
        # rightly ignored rather than poisoning the comparison.
        value = equalized_odds_difference(
            y_true=[1, 1, 1, 1, 0],
            y_pred=[1, 0, 1, 1, 0],
            groups=["a", "a", "b", "b", "b"],
            positive=1,
        )
        assert value == pytest.approx(0.5)


class TestSubgroupFairness:
    def test_violations_weighted_by_mass(self):
        predictions = [1] * 9 + [0] * 1 + [0] * 90
        groups = ["small"] * 10 + ["big"] * 90
        violations = statistical_parity_subgroup_fairness(
            predictions, groups, positive=1
        )
        by_name = {v.subgroup: v for v in violations}
        # base rate 0.09; small: rate 0.9 gap 0.81 mass 0.1 -> 0.081
        assert by_name["small"].violation == pytest.approx(0.081)
        assert by_name["big"].violation == pytest.approx(0.9 * 0.09)
        assert violations[0].subgroup == "small"  # sorted worst-first

    def test_custom_membership_for_overlapping_subgroups(self):
        predictions = [1, 0, 1, 0]
        groups = [("F", "X"), ("F", "Y"), ("M", "X"), ("M", "Y")]
        violations = statistical_parity_subgroup_fairness(
            predictions,
            groups,
            positive=1,
            subgroups=["F", "M"],
            membership=lambda row, sub: row[0] == sub,
        )
        assert {v.subgroup for v in violations} == {"F", "M"}
        for violation in violations:
            assert violation.mass == 0.5

    def test_absent_subgroup_skipped(self):
        violations = statistical_parity_subgroup_fairness(
            [1, 0], ["a", "a"], positive=1, subgroups=["a", "ghost"]
        )
        assert [v.subgroup for v in violations] == ["a"]


class TestGroupwiseCalibration:
    def test_perfectly_calibrated_scores(self, rng):
        n = 4000
        scores = rng.random(n)
        y = (rng.random(n) < scores).astype(int)
        groups = np.where(rng.random(n) < 0.5, "a", "b").tolist()
        report = groupwise_calibration(scores, y, groups, positive=1, n_bins=5)
        assert report.max_gap() < 0.08

    def test_miscalibrated_group_detected(self, rng):
        n = 2000
        scores = np.full(n, 0.5)
        groups = ["a"] * (n // 2) + ["b"] * (n // 2)
        y = [1] * (n // 2) + [0] * (n // 2)  # group a always 1, b always 0
        report = groupwise_calibration(scores, y, groups, positive=1)
        assert report.max_gap() == pytest.approx(0.5)
        assert report.worst_cell().count >= report.min_count

    def test_small_cells_excluded_from_max(self):
        scores = np.array([0.1, 0.9])
        report = groupwise_calibration(
            scores, [1, 0], ["a", "b"], positive=1, min_count=10
        )
        assert report.max_gap() == 0.0
        assert report.worst_cell() is None
        assert len(report.cells) == 2

    def test_score_range_validated(self):
        with pytest.raises(ValidationError):
            groupwise_calibration(
                np.array([1.5]), [1], ["a"], positive=1
            )

    def test_to_text(self, rng):
        scores = rng.random(50)
        y = (scores > 0.5).astype(int)
        report = groupwise_calibration(scores, y, ["g"] * 50, positive=1)
        assert "gap" in report.to_text()


class TestMixedTypeGroupLabels:
    """The vectorised grouping must keep the old per-row ``==`` semantics
    on heterogeneous label columns (where np.unique would raise)."""

    PREDICTIONS = [1, 0, 1, 1, 0, 1, 0, 0]
    GROUPS = [1, "1", 1, None, None, 2.5, "1", 2.5]

    def test_rates_keyed_by_the_original_objects(self):
        rates = group_positive_rates(self.PREDICTIONS, self.GROUPS, positive=1)
        assert rates == {
            1: pytest.approx(1.0),
            "1": pytest.approx(0.0),
            None: pytest.approx(0.5),
            2.5: pytest.approx(0.5),
        }

    def test_difference_matches_per_row_masks(self):
        flags = np.asarray(
            [1.0 if p == 1 else 0.0 for p in self.PREDICTIONS]
        )
        per_level = [
            flags[np.asarray([g == level for g in self.GROUPS])].mean()
            for level in set(self.GROUPS)
        ]
        assert demographic_parity_difference(
            self.PREDICTIONS, self.GROUPS, positive=1
        ) == max(per_level) - min(per_level)

    def test_bool_int_collapse(self):
        # 1 == True: one group, exactly as set()/dict grouping collapses.
        with pytest.raises(ValidationError, match="two groups"):
            group_positive_rates([1, 0], [True, 1], positive=1)

    def test_subgroup_violations_on_mixed_labels(self):
        violations = statistical_parity_subgroup_fairness(
            self.PREDICTIONS, self.GROUPS, positive=1
        )
        assert {v.subgroup for v in violations} == {1, "1", None, 2.5}
        base = sum(1 for p in self.PREDICTIONS if p == 1) / 8
        by_name = {v.subgroup: v for v in violations}
        assert by_name[1].violation == pytest.approx((2 / 8) * (1.0 - base))
