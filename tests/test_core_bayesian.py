"""Tests for repro.core.bayesian (posterior uncertainty over epsilon)."""

import numpy as np
import pytest

from repro.core.bayesian import (
    epsilon_over_sampled_theta,
    posterior_epsilon,
    posterior_epsilon_samples,
)
from repro.core.empirical import dataset_edf
from repro.exceptions import ValidationError
from repro.tabular.crosstab import ContingencyTable


def small_contingency() -> ContingencyTable:
    return ContingencyTable.from_group_counts(
        {("a",): [30, 10], ("b",): [20, 20]},
        factor_names=["g"],
        outcome_name="y",
        outcome_levels=["no", "yes"],
    )


class TestPosteriorSamples:
    def test_shape_and_positivity(self):
        samples = posterior_epsilon_samples(small_contingency(), n_samples=50, seed=0)
        assert samples.shape == (50,)
        assert (samples >= 0).all()
        assert np.isfinite(samples).all()

    def test_deterministic_given_seed(self):
        first = posterior_epsilon_samples(small_contingency(), n_samples=20, seed=3)
        second = posterior_epsilon_samples(small_contingency(), n_samples=20, seed=3)
        assert np.array_equal(first, second)

    def test_accepts_raw_counts(self):
        samples = posterior_epsilon_samples(
            np.array([[30.0, 10.0], [20.0, 20.0]]), n_samples=10, seed=0
        )
        assert samples.shape == (10,)

    def test_rejects_zero_samples(self):
        with pytest.raises(ValidationError):
            posterior_epsilon_samples(small_contingency(), n_samples=0)

    def test_concentrates_with_data(self):
        """More data -> posterior epsilon concentrates near the MLE value."""
        small = small_contingency()
        big = small.scale(100.0)
        point = dataset_edf(small).epsilon
        spread_small = posterior_epsilon_samples(small, n_samples=300, seed=0).std()
        big_samples = posterior_epsilon_samples(big, n_samples=300, seed=0)
        assert big_samples.std() < spread_small
        assert abs(big_samples.mean() - point) < 0.1


class TestPosteriorSummary:
    def test_quantiles_ordered(self):
        summary = posterior_epsilon(
            small_contingency(), n_samples=200, seed=1,
            quantile_levels=(0.05, 0.5, 0.95),
        )
        assert summary.quantiles[0.05] <= summary.median <= summary.quantiles[0.95]
        assert summary.credible_upper(0.95) == summary.quantiles[0.95]

    def test_unknown_quantile_rejected(self):
        summary = posterior_epsilon(small_contingency(), n_samples=20, seed=1)
        with pytest.raises(ValidationError):
            summary.credible_upper(0.99)

    def test_to_text(self):
        summary = posterior_epsilon(small_contingency(), n_samples=20, seed=1)
        assert "posterior epsilon" in summary.to_text()


class TestSampledTheta:
    def test_max_exceeds_point_estimate_typically(self):
        """Definition 3.1's sup over a sampled Theta is conservative."""
        contingency = small_contingency()
        point = dataset_edf(contingency).epsilon
        sup = epsilon_over_sampled_theta(contingency, n_samples=100, seed=0)
        assert sup >= point - 1e-9

    def test_grows_with_more_samples(self):
        contingency = small_contingency()
        few = epsilon_over_sampled_theta(contingency, n_samples=5, seed=0)
        many = epsilon_over_sampled_theta(contingency, n_samples=200, seed=0)
        assert many >= few
