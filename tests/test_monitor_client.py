"""Tests for repro.monitor.backoff and repro.monitor.client.

The backoff half is pure-function testing with a seeded RNG: delays stay
in ``[base, cap]``, respond to the cap, and the ``retry_call`` policy
honours ``should_retry``'s verdicts — including the float override that
carries a server's ``Retry-After`` hint.

The client half runs against a fake ``urlopen`` (no sockets): retry on
429/503 with the server's hint, give up after the budget, surface other
statuses immediately as :class:`MonitorClientError` with the decoded
body, and never retry non-idempotent requests the service refused for a
non-backpressure reason. One end-to-end test drives the real service
over HTTP to prove the client and server agree on the contract.
"""

from __future__ import annotations

import io
import json
import random
import urllib.error

import pytest

from repro.exceptions import MonitorClientError, ValidationError
from repro.monitor.backoff import decorrelated_jitter, retry_call
from repro.monitor.client import RETRYABLE_STATUSES, MonitorClient


class TestDecorrelatedJitter:
    def test_delays_stay_within_bounds(self):
        delays = decorrelated_jitter(
            base=0.1, cap=2.0, rng=random.Random(7)
        )
        draws = [next(delays) for _ in range(200)]
        assert all(0.1 <= delay <= 2.0 for delay in draws)
        assert max(draws) == 2.0  # the cap engages under growth

    def test_is_deterministic_under_a_seeded_rng(self):
        first = [
            next(
                iter(
                    decorrelated_jitter(rng=random.Random(3))
                )
            )
        ]
        second = [
            next(
                iter(
                    decorrelated_jitter(rng=random.Random(3))
                )
            )
        ]
        assert first == second

    def test_validation(self):
        with pytest.raises(ValidationError, match="base"):
            next(decorrelated_jitter(base=0.0))
        with pytest.raises(ValidationError, match="cap"):
            next(decorrelated_jitter(base=1.0, cap=0.5))


class TestRetryCall:
    def test_returns_first_success_without_sleeping(self):
        slept = []
        result = retry_call(
            lambda: "ok",
            should_retry=lambda error: True,
            sleep=slept.append,
        )
        assert result == "ok"
        assert slept == []

    def test_retries_until_success(self):
        attempts = []
        slept = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise RuntimeError("transient")
            return "done"

        result = retry_call(
            flaky,
            retries=4,
            should_retry=lambda error: True,
            rng=random.Random(1),
            sleep=slept.append,
        )
        assert result == "done"
        assert len(attempts) == 3
        assert len(slept) == 2

    def test_budget_exhausted_reraises_the_final_error(self):
        attempts = []
        with pytest.raises(RuntimeError, match="always"):
            retry_call(
                lambda: (_ for _ in ()).throw(RuntimeError("always")),
                retries=2,
                should_retry=lambda error: True,
                rng=random.Random(1),
                sleep=lambda delay: attempts.append(delay),
            )
        assert len(attempts) == 2  # 3 attempts, 2 sleeps

    def test_should_retry_false_reraises_immediately(self):
        calls = []

        def once():
            calls.append(1)
            raise ValueError("fatal")

        with pytest.raises(ValueError, match="fatal"):
            retry_call(
                once,
                retries=5,
                should_retry=lambda error: False,
                sleep=lambda delay: pytest.fail("must not sleep"),
            )
        assert len(calls) == 1

    def test_float_verdict_overrides_the_jittered_delay(self):
        slept = []
        attempts = []

        def twice():
            attempts.append(1)
            if len(attempts) < 2:
                raise RuntimeError("wait")
            return "ok"

        retry_call(
            twice,
            should_retry=lambda error: 1.5,
            rng=random.Random(1),
            sleep=slept.append,
        )
        assert slept == [1.5]

    def test_true_verdict_uses_jitter_not_literal_one_second(self):
        slept = []
        attempts = []

        def twice():
            attempts.append(1)
            if len(attempts) < 2:
                raise RuntimeError("wait")
            return "ok"

        retry_call(
            twice,
            should_retry=lambda error: True,
            base=0.01,
            cap=0.05,
            rng=random.Random(1),
            sleep=slept.append,
        )
        assert len(slept) == 1
        assert 0.01 <= slept[0] <= 0.05

    def test_zero_verdict_retries_immediately(self):
        # Retry-After: 0 is a legal "retry now" — numeric zero must not
        # be conflated with False (refuse to retry).
        slept = []
        attempts = []

        def twice():
            attempts.append(1)
            if len(attempts) < 2:
                raise RuntimeError("wait")
            return "ok"

        result = retry_call(
            twice,
            should_retry=lambda error: 0.0,
            rng=random.Random(1),
            sleep=slept.append,
        )
        assert result == "ok"
        assert slept == [0.0]

    def test_none_verdict_reraises_immediately(self):
        calls = []

        def once():
            calls.append(1)
            raise ValueError("fatal")

        with pytest.raises(ValueError, match="fatal"):
            retry_call(
                once,
                retries=5,
                should_retry=lambda error: None,
                sleep=lambda delay: pytest.fail("must not sleep"),
            )
        assert len(calls) == 1

    def test_negative_retries_rejected(self):
        with pytest.raises(ValidationError, match="retries"):
            retry_call(lambda: 1, retries=-1, should_retry=lambda e: True)


class _FakeResponse:
    def __init__(self, payload: dict):
        self._payload = json.dumps(payload).encode("utf-8")

    def read(self) -> bytes:
        return self._payload

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False


def _http_error(url: str, status: int, body: dict, headers=None):
    return urllib.error.HTTPError(
        url,
        status,
        "status",
        dict(headers or {}),
        io.BytesIO(json.dumps(body).encode("utf-8")),
    )


class _FakeTransport:
    """Scripted ``urlopen``: pops the next canned outcome per call."""

    def __init__(self, outcomes):
        self.outcomes = list(outcomes)
        self.requests = []

    def __call__(self, request, timeout=None):
        self.requests.append(request)
        outcome = self.outcomes.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return _FakeResponse(outcome)


def _client(transport, **kwargs) -> MonitorClient:
    slept = kwargs.pop("slept", [])
    return MonitorClient(
        "http://service.test",
        opener=transport,
        rng=random.Random(5),
        sleep=slept.append,
        **kwargs,
    )


class TestMonitorClient:
    def test_retryable_statuses_are_exactly_the_backpressure_pair(self):
        assert RETRYABLE_STATUSES == {429, 503}

    def test_success_round_trip(self):
        transport = _FakeTransport([{"status": "ok"}])
        assert _client(transport).healthz() == {"status": "ok"}
        request = transport.requests[0]
        assert request.full_url == "http://service.test/healthz"
        assert request.get_method() == "GET"

    def test_observe_retries_429_honouring_retry_after_header(self):
        url = "http://service.test/monitors/m/observe"
        slept = []
        transport = _FakeTransport(
            [
                _http_error(
                    url,
                    429,
                    {"error": "queue is full", "retry_after": 0.5},
                    headers={"Retry-After": "0.25"},
                ),
                {"epsilon": 0.1, "batch_index": 1},
            ]
        )
        result = _client(transport, slept=slept).observe("m", [["a", "y"]])
        assert result["batch_index"] == 1
        assert slept == [0.25]  # the header wins over the body field
        assert len(transport.requests) == 2

    def test_503_retry_uses_body_hint_when_no_header(self):
        url = "http://service.test/monitors/m/observe"
        slept = []
        transport = _FakeTransport(
            [
                _http_error(
                    url,
                    503,
                    {"error": "degraded", "degraded": True,
                     "retry_after": 1.0},
                ),
                {"epsilon": 0.2, "batch_index": 2},
            ]
        )
        result = _client(transport, slept=slept).observe("m", [["a", "y"]])
        assert result["batch_index"] == 2
        assert slept == [1.0]

    def test_retry_after_zero_retries_with_no_delay(self):
        url = "http://service.test/monitors/m/observe"
        slept = []
        transport = _FakeTransport(
            [
                _http_error(
                    url,
                    429,
                    {"error": "queue is full"},
                    headers={"Retry-After": "0"},
                ),
                {"epsilon": 0.3, "batch_index": 3},
            ]
        )
        result = _client(transport, slept=slept).observe("m", [["a", "y"]])
        assert result["batch_index"] == 3
        assert slept == [0.0]
        assert len(transport.requests) == 2

    def test_indeterminate_500_is_never_retried(self):
        # fsync failed AND rollback failed: the batch may be durable and
        # replayed after a crash, so re-sending could double-count.
        url = "http://service.test/monitors/m/observe"
        transport = _FakeTransport(
            [
                _http_error(
                    url,
                    500,
                    {
                        "error": "write-ahead log fsync failed",
                        "degraded": True,
                        "indeterminate": True,
                    },
                )
            ]
        )
        with pytest.raises(MonitorClientError) as excinfo:
            _client(transport).observe("m", [["a", "y"]])
        assert excinfo.value.status == 500
        assert excinfo.value.body["indeterminate"] is True
        assert len(transport.requests) == 1

    def test_gives_up_after_the_retry_budget(self):
        url = "http://service.test/monitors/m/observe"
        outcomes = [
            _http_error(url, 429, {"error": "full", "retry_after": 0.1})
            for _ in range(3)
        ]
        transport = _FakeTransport(outcomes)
        with pytest.raises(MonitorClientError) as excinfo:
            _client(transport, retries=2).observe("m", [["a", "y"]])
        assert excinfo.value.status == 429
        assert len(transport.requests) == 3

    def test_non_backpressure_errors_never_retry(self):
        url = "http://service.test/monitors/ghost/report"
        transport = _FakeTransport(
            [_http_error(url, 404, {"error": "no monitor named 'ghost'"})]
        )
        with pytest.raises(MonitorClientError) as excinfo:
            _client(transport).report("ghost")
        error = excinfo.value
        assert error.status == 404
        assert error.body == {"error": "no monitor named 'ghost'"}
        assert "no monitor named" in str(error)
        assert len(transport.requests) == 1

    def test_network_failure_surfaces_with_status_zero(self):
        transport = _FakeTransport(
            [urllib.error.URLError("connection refused")]
        )
        with pytest.raises(MonitorClientError) as excinfo:
            _client(transport).healthz()
        assert excinfo.value.status == 0

    def test_connection_refused_is_retried(self):
        # A supervised shard restarting under the fleet: the connection
        # is refused until the new process binds. Retrying converges.
        transport = _FakeTransport(
            [
                urllib.error.URLError(
                    ConnectionRefusedError(111, "Connection refused")
                ),
                urllib.error.URLError(
                    ConnectionRefusedError(111, "Connection refused")
                ),
                {"monitor": "m", "n_rows": 5},
            ]
        )
        slept = []
        result = _client(transport, slept=slept).observe("m", [["a"]] * 5)
        assert result["n_rows"] == 5
        assert len(transport.requests) == 3
        assert len(slept) == 2  # decorrelated jitter, no server hint

    def test_connection_reset_is_retried(self):
        # The shard was SIGKILLed with our connection open.
        transport = _FakeTransport(
            [
                urllib.error.URLError(
                    ConnectionResetError(104, "Connection reset by peer")
                ),
                {"status": "ok"},
            ]
        )
        assert _client(transport).healthz() == {"status": "ok"}
        assert len(transport.requests) == 2

    def test_raw_connection_reset_is_retried(self):
        # http.client can surface the reset directly (peer died while
        # we were reading the response) without URLError wrapping —
        # RemoteDisconnected subclasses ConnectionResetError.
        import http.client

        transport = _FakeTransport(
            [
                http.client.RemoteDisconnected(
                    "Remote end closed connection without response"
                ),
                {"status": "ok"},
            ]
        )
        assert _client(transport).healthz() == {"status": "ok"}
        assert len(transport.requests) == 2

    def test_other_transport_failures_are_not_retried(self):
        # DNS failure, TLS error, bad URL... retrying cannot help and
        # the request may have non-idempotent effects server-side.
        transport = _FakeTransport(
            [
                urllib.error.URLError(OSError("no route to host")),
                {"status": "ok"},
            ]
        )
        with pytest.raises(MonitorClientError) as excinfo:
            _client(transport).healthz()
        assert excinfo.value.status == 0
        assert excinfo.value.transient is False
        assert len(transport.requests) == 1

    def test_observe_sends_batch_id_only_when_given(self):
        transport = _FakeTransport(
            [{"monitor": "m", "n_rows": 1}, {"monitor": "m", "n_rows": 1}]
        )
        client = _client(transport)
        client.observe("m", [["a"]])
        client.observe("m", [["a"]], batch_id="b-1")
        plain = json.loads(transport.requests[0].data.decode("utf-8"))
        tagged = json.loads(transport.requests[1].data.decode("utf-8"))
        assert "batch_id" not in plain
        assert tagged["batch_id"] == "b-1"

    def test_query_parameters_skip_none(self):
        transport = _FakeTransport(
            [{"monitor": "m", "kind": "batch", "records": []}]
        )
        _client(transport).history("m", since=3)
        assert transport.requests[0].full_url == (
            "http://service.test/monitors/m/history?since=3"
        )

    def test_validation(self):
        with pytest.raises(ValidationError, match="timeout"):
            MonitorClient("http://x", timeout=0)
        with pytest.raises(ValidationError, match="retries"):
            MonitorClient("http://x", retries=-1)


@pytest.mark.service
class TestClientAgainstRealService:
    def test_end_to_end_with_backpressure(self, tmp_path):
        from repro.monitor.registry import MonitorRegistry
        from repro.monitor.service import MonitorService

        registry = MonitorRegistry.open(tmp_path / "data")
        service = MonitorService(registry, queue_depth=1).start()
        try:
            client = MonitorClient(service.url, retries=2)
            client.create(
                {
                    "name": "m",
                    "protected": ["g", "r"],
                    "outcome": "y",
                    "alpha": 1.0,
                }
            )
            assert client.monitors() == ["m"]
            rows = [["g0", "r0", "y1"], ["g1", "r1", "y0"]] * 5
            result = client.observe("m", rows)
            assert result["batch_index"] == 1
            report = client.report("m")
            assert report["rows_seen"] == len(rows)
            assert client.history("m")[0]["batch_index"] == 1
            assert client.healthz()["monitors"] == 1
            with pytest.raises(MonitorClientError) as excinfo:
                client.report("ghost")
            assert excinfo.value.status == 404
            client.delete("m")
            assert client.monitors() == []
        finally:
            service.shutdown()
