"""Edge cases and failure injection across the stack."""

import math

import numpy as np
import pytest

from repro.core.empirical import dataset_edf
from repro.core.epsilon import epsilon_from_probabilities
from repro.core.subsets import subset_sweep
from repro.exceptions import (
    CsvParseError,
    SchemaError,
    ValidationError,
)
from repro.tabular.column import Column
from repro.tabular.crosstab import ContingencyTable
from repro.tabular.csv_io import read_csv_text
from repro.tabular.table import Table


class TestDegenerateTables:
    def test_single_row_table(self):
        table = Table(
            [
                Column.categorical("g", ["a"]),
                Column.categorical("y", ["yes"], levels=["no", "yes"]),
            ]
        )
        result = dataset_edf(table, protected="g", outcome="y")
        assert result.epsilon == 0.0  # one group: vacuous

    def test_single_level_factor(self):
        table = Table.from_dict(
            {"g": ["a", "a", "a"], "y": ["yes", "no", "yes"]}
        )
        result = dataset_edf(table, protected="g", outcome="y")
        assert result.epsilon == 0.0

    def test_single_outcome_level_rejected(self):
        table = Table.from_dict({"g": ["a", "b"], "y": ["yes", "yes"]})
        with pytest.raises(ValidationError):
            dataset_edf(table, protected="g", outcome="y")

    def test_all_groups_identical_rates(self):
        table = Table.from_dict(
            {
                "g": ["a", "a", "b", "b"],
                "y": ["yes", "no", "yes", "no"],
            }
        )
        assert dataset_edf(table, protected="g", outcome="y").epsilon == 0.0

    def test_extremely_unbalanced_groups(self):
        rows = [("big", "yes")] * 10_000 + [("big", "no")] * 10_000
        rows += [("tiny", "yes"), ("tiny", "no")]
        table = Table.from_rows(["g", "y"], rows)
        result = dataset_edf(table, protected="g", outcome="y")
        assert result.epsilon == pytest.approx(0.0, abs=1e-12)


class TestNumericalExtremes:
    def test_tiny_probabilities(self):
        probs = np.array([[1e-12, 1.0 - 1e-12], [0.5, 0.5]])
        result = epsilon_from_probabilities(probs, validate=False)
        assert result.epsilon == pytest.approx(math.log(0.5 / 1e-12))

    def test_epsilon_of_near_identical_rows(self):
        probs = np.array([[0.5, 0.5], [0.5 + 1e-15, 0.5 - 1e-15]])
        result = epsilon_from_probabilities(probs, validate=False)
        assert result.epsilon == pytest.approx(0.0, abs=1e-12)

    def test_float_counts_supported(self):
        contingency = ContingencyTable.from_group_counts(
            {("a",): [0.5, 1.5], ("b",): [1.25, 0.75]},
            factor_names=["g"],
            outcome_name="y",
            outcome_levels=["no", "yes"],
        )
        result = dataset_edf(contingency)
        assert math.isfinite(result.epsilon)

    def test_huge_counts_no_overflow(self):
        contingency = ContingencyTable.from_group_counts(
            {("a",): [1e15, 3e15], ("b",): [2e15, 2e15]},
            factor_names=["g"],
            outcome_name="y",
            outcome_levels=["no", "yes"],
        )
        # The "no" side binds: log(0.5 / 0.25).
        assert dataset_edf(contingency).epsilon == pytest.approx(math.log(2))


class TestMalformedInput:
    def test_csv_with_quoted_commas(self):
        table = read_csv_text('name,value\n"Smith, Jane",3\n')
        assert table.column("name").to_list() == ["Smith, Jane"]

    def test_csv_duplicate_header(self):
        with pytest.raises(SchemaError):
            read_csv_text("a,a\n1,2\n")

    def test_csv_numeric_column_with_one_bad_cell(self):
        table = read_csv_text("x\n1\n2\noops\n")
        # Falls back to categorical rather than corrupting data.
        assert table.column("x").kind == "categorical"

    def test_csv_entirely_blank(self):
        with pytest.raises(CsvParseError):
            read_csv_text("   \n \n")

    def test_unknown_protected_column(self, hiring_table):
        with pytest.raises(SchemaError):
            dataset_edf(hiring_table, protected="ghost", outcome="hired")

    def test_numeric_outcome_rejected(self, numeric_table):
        with pytest.raises(SchemaError):
            dataset_edf(numeric_table, protected="group", outcome="x")


class TestSweepEdgeCases:
    def test_single_attribute_sweep(self, hiring_table):
        sweep = subset_sweep(hiring_table, protected=["gender"], outcome="hired")
        assert list(sweep.results) == [("gender",)]
        assert sweep.theorem_violations() == []

    def test_sweep_with_infinite_full_epsilon(self):
        table = Table.from_dict(
            {
                "g": ["a", "a", "b", "b"],
                "h": ["x", "y", "x", "y"],
                "y": ["yes", "no", "no", "no"],
            }
        )
        sweep = subset_sweep(table, protected=["g", "h"], outcome="y")
        assert math.isinf(sweep.full_epsilon)
        assert sweep.theorem_violations() == []  # bound is infinite
        assert sweep.monotonicity_violations() == []  # skipped when inf

    def test_many_levels(self):
        rng = np.random.default_rng(0)
        n = 2000
        table = Table.from_dict(
            {
                "g": [f"group_{i % 25}" for i in range(n)],
                "y": rng.choice(["no", "yes"], size=n).tolist(),
            }
        )
        result = dataset_edf(table, protected="g", outcome="y")
        assert len(result.populated_groups()) == 25


class TestColumnEdgeCases:
    def test_level_with_special_characters(self):
        column = Column.categorical("c", ["a,b", 'quo"te', ""])
        assert set(column.unique()) == {"a,b", 'quo"te', ""}

    def test_numeric_level_values(self):
        column = Column.categorical("c", [1, 2, 1])
        assert column.levels == (1, 2)

    def test_mixed_type_levels(self):
        column = Column.categorical("c", ["a", 1, "a"])
        assert len(column.levels) == 2

    def test_take_empty_selection(self, hiring_table):
        empty = hiring_table.take(np.array([], dtype=np.int64))
        assert empty.n_rows == 0
        assert empty.column_names == hiring_table.column_names
