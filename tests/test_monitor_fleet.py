"""Tests for the sharded, self-healing monitoring fleet (PR 7).

Three layers, cheapest first:

* pure-logic tests: :func:`shard_for` stability and the fleet dir
  layout contract (``fleet.json`` pins the shard count);
* fake-clock tests: every :class:`ShardSupervisor` breaker transition —
  crash, hang, replay-lag stall, double-crash backoff doubling, spawn
  failure, the open → half-open → closed arc — driven by scripted
  probes and fake processes, with exact backoff timing asserted;
* router unit tests: a :class:`FleetRouter` over real in-process
  :class:`MonitorService` shards and a fake shard table, checking
  routing correctness, shard-scoped degradation (503 + Retry-After for
  the dead shard's monitors only), and error relaying.

The ``@pytest.mark.fleet`` classes then do it for real: spawn shard
worker *subprocesses* through :class:`FleetSupervisor`, SIGKILL them at
every ingest boundary under client load, and assert the healed fleet's
final epsilon and posterior are bit-identical to a run that never
crashed — the PR's acceptance criterion.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from collections import deque

import numpy as np
import pytest

from faults import feed_fleet_with_kills
from repro.core.empirical import dataset_edf
from repro.exceptions import (
    FleetError,
    MonitorClientError,
    MonitorError,
    ShardUnavailable,
    ValidationError,
)
from repro.monitor.client import MonitorClient
from repro.monitor.fleet import (
    BANNER_PREFIX,
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    FleetSupervisor,
    ShardProcess,
    ShardSupervisor,
    SupervisorPolicy,
    fleet_shard_count,
    fleet_status_snapshot,
    init_fleet_dir,
    shard_dir,
    shard_dirs,
)
from repro.monitor.registry import MonitorConfig, MonitorRegistry
from repro.monitor.routing import FleetRouter, shard_for
from repro.monitor.service import MonitorService
from repro.tabular.table import Table

NAMES = ["gender", "race", "hired"]


def synthetic_rows(n_rows: int, seed: int = 5) -> list[list[str]]:
    rng = np.random.default_rng(seed)
    return [
        [f"g{rng.integers(2)}", f"r{rng.integers(3)}", f"y{rng.integers(2)}"]
        for _ in range(n_rows)
    ]


def offline_epsilon(rows, alpha=1.0):
    return dataset_edf(
        Table.from_rows(NAMES, [tuple(row) for row in rows]),
        protected=NAMES[:2],
        outcome=NAMES[2],
        estimator=alpha,
    ).epsilon


def monitor_config(name: str, **overrides) -> dict:
    config = {
        "name": name,
        "protected": NAMES[:2],
        "outcome": NAMES[2],
        "alpha": 1.0,
    }
    config.update(overrides)
    return config


def names_for_shards(n_shards: int, prefix: str = "mon") -> list[str]:
    """One monitor name per shard, found by walking the hash."""
    found: dict[int, str] = {}
    index = 0
    while len(found) < n_shards:
        name = f"{prefix}{index}"
        found.setdefault(shard_for(name, n_shards), name)
        index += 1
    return [found[shard] for shard in range(n_shards)]


# ----------------------------------------------------------------------
# shard_for: the routing contract
# ----------------------------------------------------------------------
class TestShardFor:
    def test_pinned_golden_values(self):
        # shard_for is a durable on-disk contract: these values must
        # never change, or existing fleets would route monitors at the
        # wrong shard's data directory.
        assert shard_for("hiring", 1) == 0
        assert shard_for("hiring", 2) == 0
        assert shard_for("hiring", 3) == 2
        assert shard_for("hiring", 4) == 2
        assert shard_for("hiring", 8) == 6

    def test_deterministic_and_in_range(self):
        for name in ("a", "b", "hiring", "m" * 60, "Ünïcode-ok"):
            for n_shards in (1, 2, 3, 7, 16):
                shard = shard_for(name, n_shards)
                assert 0 <= shard < n_shards
                assert shard == shard_for(name, n_shards)

    def test_roughly_balanced(self):
        counts = [0] * 4
        for index in range(400):
            counts[shard_for(f"monitor-{index}", 4)] += 1
        assert min(counts) > 50  # sha256 spreads; salted hash() would too,
        # but not *stably* across processes

    def test_validation(self):
        with pytest.raises(ValidationError):
            shard_for("", 2)
        with pytest.raises(ValidationError):
            shard_for(123, 2)
        with pytest.raises(ValidationError):
            shard_for("x", 0)
        with pytest.raises(ValidationError):
            shard_for("x", True)


# ----------------------------------------------------------------------
# Fleet directory layout
# ----------------------------------------------------------------------
class TestFleetLayout:
    def test_init_records_and_validates_shard_count(self, tmp_path):
        fleet = tmp_path / "fleet"
        assert init_fleet_dir(fleet, 3) == 3
        config = json.loads((fleet / "fleet.json").read_text())
        assert config["shards"] == 3
        # Reopen: same count or inferred count are fine...
        assert init_fleet_dir(fleet, 3) == 3
        assert init_fleet_dir(fleet) == 3
        # ...a different count would silently re-route monitors.
        with pytest.raises(FleetError, match="hash-routing"):
            init_fleet_dir(fleet, 4)

    def test_first_use_requires_a_count(self, tmp_path):
        with pytest.raises(FleetError, match="no recorded layout"):
            init_fleet_dir(tmp_path / "fresh")
        with pytest.raises(ValidationError):
            init_fleet_dir(tmp_path / "fresh", 0)

    def test_shard_count_inferred_from_directories(self, tmp_path):
        # A fleet whose fleet.json was lost is still inspectable.
        fleet = tmp_path / "fleet"
        (fleet / "shard-00").mkdir(parents=True)
        (fleet / "shard-02").mkdir()
        assert fleet_shard_count(fleet) == 3
        assert [index for index, _ in shard_dirs(fleet)] == [0, 1, 2]

    def test_non_fleet_dirs(self, tmp_path):
        assert fleet_shard_count(tmp_path) is None
        with pytest.raises(MonitorError):
            shard_dirs(tmp_path)
        bad = tmp_path / "bad"
        bad.mkdir()
        (bad / "fleet.json").write_text("{not json")
        with pytest.raises(FleetError, match="unreadable"):
            fleet_shard_count(bad)

    def test_shard_dir_layout(self, tmp_path):
        assert shard_dir(tmp_path, 7).name == "shard-07"


# ----------------------------------------------------------------------
# ShardSupervisor: the breaker state machine under a fake clock
# ----------------------------------------------------------------------
HEALTHY = {
    "status": "ok",
    "monitors": 1,
    "rows_ingested": 40,
    "batches_ingested": 4,
    "durability": {"m": {"applied_seq": 4, "wal_replay_lag": 0}},
}

STARTING = {
    "status": "starting",
    "monitors": 0,
    "rows_ingested": 0,
    "batches_ingested": 0,
    "durability": {},
}


def lag_health(lag: int) -> dict:
    return {
        "status": "ok",
        "monitors": 1,
        "rows_ingested": 0,
        "batches_ingested": 0,
        "durability": {"m": {"applied_seq": 0, "wal_replay_lag": lag}},
    }


class FakeProcess:
    """A scriptable stand-in for :class:`ShardProcess`."""

    _counter = [4000]

    def __init__(self, index: int, *, start_error: Exception | None = None):
        self.index = index
        self._start_error = start_error
        self._alive = False
        self._exit = None
        self.killed = 0
        FakeProcess._counter[0] += 1
        self.pid = FakeProcess._counter[0]
        self.url = f"http://127.0.0.1:9{self.pid}"

    def start(self) -> str:
        if self._start_error is not None:
            raise self._start_error
        self._alive = True
        return self.url

    def alive(self) -> bool:
        return self._alive

    def exit_code(self):
        return self._exit

    def kill(self) -> None:
        self.killed += 1
        self._alive = False
        if self._exit is None:
            self._exit = -9

    def terminate(self, grace: float = 10.0):
        self.kill()
        return self._exit

    def die(self, code: int = -9) -> None:
        """The kernel OOM-killed (or the process crashed) off-screen."""
        self._alive = False
        self._exit = code


class ScriptedProber:
    """Probe outcomes in order; healthy forever once the script runs dry."""

    def __init__(self, *outcomes):
        self.script = deque(outcomes)
        self.calls = 0

    def push(self, *outcomes):
        self.script.extend(outcomes)

    def __call__(self, url, timeout):
        self.calls += 1
        outcome = self.script.popleft() if self.script else HEALTHY
        if isinstance(outcome, BaseException):
            raise outcome
        return outcome


def make_supervisor(policy=None, prober=None, events=None):
    created: list[FakeProcess] = []

    def factory(shard: int) -> FakeProcess:
        process = FakeProcess(shard)
        created.append(process)
        return process

    supervisor = ShardSupervisor(
        0,
        factory,
        policy=policy
        or SupervisorPolicy(
            probe_interval=1.0,
            probe_timeout=1.0,
            failure_threshold=3,
            recovery_probes=2,
            backoff_base=0.5,
            backoff_cap=4.0,
        ),
        prober=prober or ScriptedProber(),
        on_event=None if events is None else (lambda s, m: events.append(m)),
    )
    return supervisor, created


class TestShardSupervisor:
    def test_open_half_open_closed_arc(self):
        events: list[str] = []
        supervisor, created = make_supervisor(events=events)
        supervisor.tick(0.0)
        assert supervisor.state == BREAKER_HALF_OPEN
        assert supervisor.available  # routable while still on probation
        assert supervisor.generation == 1 and supervisor.restarts == 0
        assert len(created) == 1
        supervisor.tick(0.5)  # first probe (recovery 1 of 2)
        assert supervisor.state == BREAKER_HALF_OPEN
        supervisor.tick(1.0)  # not due yet: 0.5s < probe_interval
        assert supervisor.state == BREAKER_HALF_OPEN
        supervisor.tick(1.5)  # second probe: trusted
        assert supervisor.state == BREAKER_CLOSED
        assert any("spawned pid" in event for event in events)
        assert any("recovered" in event for event in events)

    def test_crash_opens_breaker_with_exact_backoff(self):
        supervisor, created = make_supervisor()
        for now in (0.0, 0.5, 1.5):
            supervisor.tick(now)
        assert supervisor.state == BREAKER_CLOSED
        created[-1].die(code=-9)
        supervisor.tick(2.0)
        assert supervisor.state == BREAKER_OPEN
        assert not supervisor.available
        assert "exited with code -9" in supervisor.last_error
        # First failure after a healthy life: backoff_base exactly.
        supervisor.tick(2.4)  # 0.4s elapsed < 0.5s: no restart yet
        assert len(created) == 1
        supervisor.tick(2.5)
        assert len(created) == 2
        assert supervisor.state == BREAKER_HALF_OPEN
        assert supervisor.generation == 2 and supervisor.restarts == 1

    def test_double_crash_during_replay_doubles_backoff(self):
        # A shard that dies *during its own recovery* (e.g. the WAL
        # replay re-triggers the crash) must not restart-spin: each
        # failed life doubles the delay until the cap.
        supervisor, created = make_supervisor()
        now = 0.0
        supervisor.tick(now)  # generation 1 up (half-open)
        expected = [0.5, 1.0, 2.0, 4.0, 4.0]  # base * 2^k, capped at 4
        for delay in expected:
            created[-1].die()
            supervisor.tick(now)
            assert supervisor.state == BREAKER_OPEN
            status = supervisor.status(now)
            assert status["next_restart_in"] == pytest.approx(delay)
            # Not a moment early:
            supervisor.tick(now + delay - 0.01)
            assert supervisor.state == BREAKER_OPEN
            now += delay
            supervisor.tick(now)
            assert supervisor.state == BREAKER_HALF_OPEN
        # Recovering fully resets the schedule.
        supervisor.tick(now + 1.0)
        supervisor.tick(now + 2.0)
        assert supervisor.state == BREAKER_CLOSED
        created[-1].die()
        supervisor.tick(now + 3.0)
        assert supervisor.status(now + 3.0)["next_restart_in"] == pytest.approx(
            0.5
        )

    def test_hung_shard_is_sigkilled_after_probe_failures(self):
        # The process is alive but /healthz never answers: after
        # failure_threshold consecutive probe failures the supervisor
        # must SIGKILL it (a hung process holds the WAL directory) and
        # open the breaker.
        prober = ScriptedProber(
            HEALTHY,
            HEALTHY,
            TimeoutError("probe timed out"),
            TimeoutError("probe timed out"),
            TimeoutError("probe timed out"),
        )
        supervisor, created = make_supervisor(prober=prober)
        for now in (0.0, 0.5, 1.5):
            supervisor.tick(now)
        assert supervisor.state == BREAKER_CLOSED
        supervisor.tick(2.5)
        supervisor.tick(3.5)
        assert supervisor.state == BREAKER_CLOSED  # 2 failures: not yet
        assert supervisor.status(3.5)["consecutive_probe_failures"] == 2
        supervisor.tick(4.5)  # third strike
        assert supervisor.state == BREAKER_OPEN
        assert created[-1].killed >= 1
        assert "consecutive probe failures" in supervisor.last_error

    def test_starting_status_neither_fails_nor_credits(self):
        # "starting" = socket bound, WAL replay running. The breaker
        # must stay half-open (no recovery credit) without counting a
        # failure — a long replay is healthy behaviour.
        prober = ScriptedProber(STARTING, STARTING, STARTING, HEALTHY, HEALTHY)
        supervisor, created = make_supervisor(prober=prober)
        supervisor.tick(0.0)
        for now in (0.5, 1.5, 2.5):
            supervisor.tick(now)
            assert supervisor.state == BREAKER_HALF_OPEN
            assert supervisor.status(now)["consecutive_probe_failures"] == 0
        supervisor.tick(3.5)
        supervisor.tick(4.5)
        assert supervisor.state == BREAKER_CLOSED
        assert created[-1].killed == 0

    def test_replay_lag_stall_restarts_the_shard(self):
        policy = SupervisorPolicy(
            probe_interval=1.0,
            probe_timeout=1.0,
            failure_threshold=3,
            recovery_probes=1,
            backoff_base=0.5,
            backoff_cap=4.0,
            max_replay_lag=5,
            stall_probes=2,
        )
        prober = ScriptedProber(HEALTHY, lag_health(7), lag_health(7))
        supervisor, created = make_supervisor(policy=policy, prober=prober)
        supervisor.tick(0.0)
        supervisor.tick(0.5)
        assert supervisor.state == BREAKER_CLOSED
        supervisor.tick(1.5)  # lag 7 (stall count 1)
        assert supervisor.state == BREAKER_CLOSED
        supervisor.tick(2.5)  # lag 7 again, not shrinking: wedged
        assert supervisor.state == BREAKER_OPEN
        assert "wal_replay_lag stalled" in supervisor.last_error
        assert created[-1].killed >= 1

    def test_shrinking_lag_resets_stall_detection(self):
        policy = SupervisorPolicy(
            probe_interval=1.0,
            probe_timeout=1.0,
            failure_threshold=3,
            recovery_probes=1,
            backoff_base=0.5,
            backoff_cap=4.0,
            max_replay_lag=5,
            stall_probes=2,
        )
        prober = ScriptedProber(
            HEALTHY, lag_health(7), lag_health(4), lag_health(7), HEALTHY
        )
        supervisor, _ = make_supervisor(policy=policy, prober=prober)
        supervisor.tick(0.0)
        for now in (0.5, 1.5, 2.5, 3.5, 4.5):
            supervisor.tick(now)
            # Lag is high but *shrinking* between the two 7s: progress,
            # never stalled.
            assert supervisor.state == BREAKER_CLOSED

    def test_half_open_probe_failures_reopen(self):
        prober = ScriptedProber(
            ConnectionRefusedError("refused"),
            ConnectionRefusedError("refused"),
            ConnectionRefusedError("refused"),
        )
        supervisor, created = make_supervisor(prober=prober)
        supervisor.tick(0.0)
        supervisor.tick(0.5)
        supervisor.tick(1.5)
        assert supervisor.state == BREAKER_HALF_OPEN
        supervisor.tick(2.5)
        assert supervisor.state == BREAKER_OPEN
        # The failed probation counts as a failed life: backoff doubles
        # relative to a fresh crash (streak includes the spawn).
        assert supervisor.status(2.5)["next_restart_in"] == pytest.approx(0.5)

    def test_spawn_failure_stays_open_and_backs_off(self):
        attempts = []

        def bad_factory(shard: int) -> FakeProcess:
            attempts.append(shard)
            raise RuntimeError("exec failed")

        supervisor = ShardSupervisor(
            3,
            bad_factory,
            policy=SupervisorPolicy(backoff_base=0.5, backoff_cap=4.0),
            prober=ScriptedProber(),
        )
        supervisor.tick(0.0)
        assert supervisor.state == BREAKER_OPEN
        assert "restart failed" in supervisor.last_error
        assert supervisor.status(0.0)["next_restart_in"] == pytest.approx(0.5)
        supervisor.tick(0.5)
        assert supervisor.status(0.5)["next_restart_in"] == pytest.approx(1.0)
        assert attempts == [3, 3]

    def test_retry_after_tracks_backoff(self):
        supervisor, created = make_supervisor()
        supervisor.tick(0.0)
        # Routable states hint one probe interval.
        assert supervisor.retry_after(0.0) == pytest.approx(1.0)
        created[-1].die()
        supervisor.tick(1.0)  # open, restart at 1.5
        assert supervisor.retry_after(1.0) == pytest.approx(0.5 + 1.0)
        assert supervisor.retry_after(1.4) == pytest.approx(
            0.1 + 1.0, abs=1e-9
        )

    def test_status_reports_health_rollup(self):
        supervisor, created = make_supervisor()
        supervisor.tick(0.0)
        supervisor.tick(0.5)
        status = supervisor.status(0.5)
        assert status["shard"] == 0
        assert status["state"] == BREAKER_HALF_OPEN
        assert status["pid"] == created[-1].pid
        assert status["url"] == created[-1].url
        assert status["monitors"] == 1
        assert status["rows_ingested"] == 40
        assert status["applied_seq"] == 4
        assert status["wal_replay_lag"] == 0
        assert status["shard_status"] == "ok"

    def test_policy_validation(self):
        with pytest.raises(ValidationError):
            SupervisorPolicy(probe_interval=0)
        with pytest.raises(ValidationError):
            SupervisorPolicy(failure_threshold=0)
        with pytest.raises(ValidationError):
            SupervisorPolicy(backoff_base=2.0, backoff_cap=1.0)
        with pytest.raises(ValidationError):
            SupervisorPolicy(max_replay_lag=0)


class TestFleetSupervisorUnit:
    def test_stopped_fleet_is_unavailable(self, tmp_path):
        processes: list[FakeProcess] = []

        def factory(shard: int) -> FakeProcess:
            process = FakeProcess(shard)
            processes.append(process)
            return process

        fleet = FleetSupervisor(
            tmp_path / "fleet",
            2,
            process_factory=factory,
            prober=ScriptedProber(),
            clock=lambda: 0.0,
        )
        fleet.start()
        try:
            assert fleet.shard_url(0) == processes[0].url
            assert fleet.fleet_health()["n_shards"] == 2
        finally:
            fleet.stop()
        with pytest.raises(ShardUnavailable):
            fleet.shard_url(0)

    def test_shard_count_pinned_across_reopen(self, tmp_path):
        FleetSupervisor(
            tmp_path / "fleet",
            2,
            process_factory=FakeProcess,
            prober=ScriptedProber(),
        )
        with pytest.raises(FleetError, match="hash-routing"):
            FleetSupervisor(
                tmp_path / "fleet",
                3,
                process_factory=FakeProcess,
                prober=ScriptedProber(),
            )
        # And the recorded count is enough by itself.
        fleet = FleetSupervisor(
            tmp_path / "fleet",
            process_factory=FakeProcess,
            prober=ScriptedProber(),
        )
        assert fleet.n_shards == 2


# ----------------------------------------------------------------------
# FleetRouter over in-process shard services
# ----------------------------------------------------------------------
class HttpProbe:
    """Raw JSON round-trips that expose status and headers."""

    def __init__(self, url: str):
        self.url = url

    def request(self, method: str, path: str, payload=None):
        data = None if payload is None else json.dumps(payload).encode()
        request = urllib.request.Request(
            self.url + path, data=data, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=10) as response:
                return response.status, json.loads(response.read()), dict(
                    response.headers
                )
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read()), dict(error.headers)


class FakeTable:
    """A shard table with scriptable outages."""

    def __init__(self, urls: list[str]):
        self.urls = urls
        self.n_shards = len(urls)
        self.down: dict[int, float] = {}

    def shard_url(self, shard: int) -> str:
        if shard in self.down:
            raise ShardUnavailable(
                f"shard {shard} is unavailable (breaker open)",
                shard=shard,
                retry_after=self.down[shard],
            )
        return self.urls[shard]

    def shard_retry_after(self, shard: int) -> float:
        return self.down.get(shard, 0.25)

    def fleet_health(self) -> dict:
        return {"status": "ok", "n_shards": self.n_shards, "shards": []}


@pytest.fixture
def shard_services(tmp_path):
    services = []
    for index in range(2):
        registry = MonitorRegistry.open(tmp_path / f"shard-{index:02d}")
        services.append(MonitorService(registry).start())
    yield services
    for service in services:
        service.shutdown()


@pytest.fixture
def fake_table(shard_services):
    return FakeTable([service.url for service in shard_services])


@pytest.fixture
def router(fake_table):
    with FleetRouter(fake_table, timeout=5.0) as running:
        yield running


@pytest.mark.service
class TestFleetRouter:
    def test_requests_land_on_the_owning_shard(
        self, router, fake_table, shard_services
    ):
        probe = HttpProbe(router.url)
        names = names_for_shards(2)
        for name in names:
            status, body, _ = probe.request(
                "POST", "/monitors", monitor_config(name)
            )
            assert (status, body["name"]) == (201, name)
        for shard, name in enumerate(names):
            # The monitor exists in exactly the hash-owning shard.
            owner = shard_services[shard].registry
            other = shard_services[1 - shard].registry
            assert name in owner and name not in other
        status, body, _ = probe.request("GET", "/monitors")
        assert status == 200
        assert body["monitors"] == sorted(names)
        assert body["unavailable_shards"] == []

    def test_observe_and_report_round_trip(self, router):
        probe = HttpProbe(router.url)
        name = names_for_shards(2)[0]
        probe.request("POST", "/monitors", monitor_config(name))
        rows = synthetic_rows(60)
        status, body, _ = probe.request(
            "POST", f"/monitors/{name}/observe", {"rows": rows}
        )
        assert status == 200
        assert body["n_rows"] == 60
        status, report, _ = probe.request("GET", f"/monitors/{name}/report")
        assert status == 200
        assert report["epsilon"] == offline_epsilon(rows)

    def test_down_shard_degrades_only_its_own_monitors(
        self, router, fake_table
    ):
        probe = HttpProbe(router.url)
        names = names_for_shards(2)
        for name in names:
            probe.request("POST", "/monitors", monitor_config(name))
        fake_table.down[0] = 2.5
        # Shard 0's monitor fast-fails with the breaker's hint...
        status, body, headers = probe.request(
            "POST",
            f"/monitors/{names[0]}/observe",
            {"rows": synthetic_rows(5)},
        )
        assert status == 503
        assert body["degraded"] is True
        assert body["shard"] == 0
        assert body["retry_after"] == 2.5
        assert headers["Retry-After"] == "2.5"
        # ...while shard 1 is untouched (degradation is shard-scoped).
        status, body, _ = probe.request(
            "POST",
            f"/monitors/{names[1]}/observe",
            {"rows": synthetic_rows(5)},
        )
        assert status == 200
        # Listing degrades to a partial view, flagged, not a failure.
        status, body, _ = probe.request("GET", "/monitors")
        assert status == 200
        assert body["monitors"] == [names[1]]
        assert body["unavailable_shards"] == [0]

    def test_all_shards_down_is_a_fleet_outage(self, router, fake_table):
        fake_table.down[0] = 1.0
        fake_table.down[1] = 1.0
        status, body, headers = HttpProbe(router.url).request(
            "GET", "/monitors"
        )
        assert status == 503
        assert "Retry-After" in headers

    def test_connection_refused_is_not_outcome_unknown(self, fake_table):
        # Point shard 0 at a dead port: a *refused* connection proves
        # the request never reached the shard's WAL, so the router must
        # not mark the outcome unknown.
        import socket as socket_module

        placeholder = socket_module.socket()
        placeholder.bind(("127.0.0.1", 0))
        dead_port = placeholder.getsockname()[1]
        placeholder.close()
        fake_table.urls[0] = f"http://127.0.0.1:{dead_port}"
        name = names_for_shards(2)[0]
        with FleetRouter(fake_table, timeout=5.0) as router:
            status, body, headers = HttpProbe(router.url).request(
                "POST", f"/monitors/{name}/observe", {"rows": [["a"]]}
            )
        assert status == 503
        assert body["degraded"] is True
        assert "outcome_unknown" not in body
        assert float(headers["Retry-After"]) == 0.25

    def test_shard_errors_relay_verbatim(self, router):
        probe = HttpProbe(router.url)
        name = names_for_shards(2)[0]
        assert probe.request("GET", f"/monitors/{name}/report")[0] == 404
        probe.request("POST", "/monitors", monitor_config(name))
        assert probe.request("POST", "/monitors", monitor_config(name))[0] == 409
        assert (
            probe.request("POST", f"/monitors/{name}/observe", {"rows": []})[0]
            == 400
        )

    def test_router_level_errors(self, router):
        probe = HttpProbe(router.url)
        assert probe.request("GET", "/nope")[0] == 404
        assert probe.request("POST", "/monitors", {"nope": 1})[0] == 400
        assert probe.request("DELETE", "/monitors")[0] == 405
        status, body, _ = probe.request("GET", "/healthz")
        assert (status, body["status"]) == (200, "ok")

    def test_table_protocol_is_validated(self):
        with pytest.raises(ValidationError, match="shard table"):
            FleetRouter(object())


def _get_raw(url: str):
    """GET returning (status, text, headers) without JSON parsing."""
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, response.read().decode(), dict(
                response.headers
            )
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode(), dict(error.headers)


@pytest.mark.service
@pytest.mark.obs
class TestRouterMetrics:
    """The router's /metrics page is the tree-merge of shard registries."""

    def _ingest(self, router, batches=3, rows_per_batch=20):
        probe = HttpProbe(router.url)
        names = names_for_shards(2)
        for name in names:
            probe.request("POST", "/monitors", monitor_config(name))
            for index in range(batches):
                status, _, _ = probe.request(
                    "POST",
                    f"/monitors/{name}/observe",
                    {"rows": synthetic_rows(rows_per_batch, seed=index)},
                )
                assert status == 200
        return names

    def test_metrics_are_bit_exact_tree_merge(
        self, router, shard_services
    ):
        from repro.obs.metrics import PROMETHEUS_CONTENT_TYPE, MetricsRegistry

        names = self._ingest(router)
        # Client-side ground truth: fetch each shard's registry state
        # and fold it with the same merge algebra the router uses.
        expected = MetricsRegistry()
        for service in shard_services:
            status, body, _ = _get_raw(service.url + "/metrics.json")
            assert status == 200
            expected.merge(MetricsRegistry.from_state(json.loads(body)))
        for shard in range(2):
            expected.gauge(
                "repro_fleet_shard_up",
                "1 when the shard answered the metrics fan-out, else 0.",
                labels={"shard": f"{shard:02d}"},
            ).set(1)

        status, text, headers = _get_raw(router.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        assert text == expected.render_prometheus()
        for shard, name in enumerate(names):
            assert (
                f'repro_observe_rows_total{{monitor="{name}"}} 60' in text
            )
        assert 'repro_fleet_shard_up{shard="00"} 1' in text
        assert 'repro_fleet_shard_up{shard="01"} 1' in text

        status, body, _ = _get_raw(router.url + "/metrics.json")
        assert status == 200
        merged = MetricsRegistry.from_state(json.loads(body))
        assert merged.state_dict() == expected.state_dict()

    def test_down_shard_is_annotated_and_omitted(self, router, fake_table):
        names = self._ingest(router)
        fake_table.down[0] = 2.5
        status, text, _ = _get_raw(router.url + "/metrics")
        assert status == 200
        assert text.startswith(
            "# shard 00 unavailable; its metrics are omitted"
        )
        assert 'repro_fleet_shard_up{shard="00"} 0' in text
        assert 'repro_fleet_shard_up{shard="01"} 1' in text
        # shard 0's monitor disappears from the totals; shard 1 remains
        down_name, up_name = names
        assert f'monitor="{down_name}"' not in text
        assert f'repro_observe_rows_total{{monitor="{up_name}"}} 60' in text

    def test_all_shards_down_is_503(self, router, fake_table):
        fake_table.down[0] = 1.5
        fake_table.down[1] = 1.5
        status, body, headers = _get_raw(router.url + "/metrics")
        assert status == 503
        assert "every shard is unavailable" in body
        assert headers.get("Retry-After") is not None

    def test_metrics_rejects_non_get(self, router):
        probe = HttpProbe(router.url)
        assert probe.request("POST", "/metrics", {})[0] == 405
        assert probe.request("POST", "/metrics.json", {})[0] == 405


# ----------------------------------------------------------------------
# Idempotent ingestion: batch_id dedup in the registry
# ----------------------------------------------------------------------
class TestBatchIdDedup:
    CONFIG = MonitorConfig(
        name="dedup", protected=("gender", "race"), outcome="hired"
    )

    def test_duplicate_batch_is_acked_not_reapplied(self, tmp_path):
        registry = MonitorRegistry.open(tmp_path / "data")
        registry.create_from_config(self.CONFIG)
        rows = synthetic_rows(30)
        first = registry.observe("dedup", rows, batch_id="b-1")
        assert first.duplicate is False
        again = registry.observe("dedup", rows, batch_id="b-1")
        assert again.duplicate is True
        assert again.batch_index == first.batch_index
        assert again.epsilon == first.epsilon
        monitor = registry.get("dedup")
        assert monitor.batches == 1
        assert registry.report("dedup").rows_seen == 30
        # A different id is a different batch.
        assert registry.observe("dedup", rows, batch_id="b-2").duplicate is False
        assert registry.get("dedup").batches == 2
        registry.close()

    def test_dedup_survives_wal_replay(self, tmp_path):
        # kill -9 after the ack: the reopened registry must still
        # recognise the id from the replayed WAL records.
        registry = MonitorRegistry.open(tmp_path / "data")
        registry.create_from_config(self.CONFIG)
        rows = synthetic_rows(30)
        registry.observe("dedup", rows, batch_id="b-1")
        del registry  # no close(), no checkpoint: process death
        survivor = MonitorRegistry.open(tmp_path / "data")
        result = survivor.observe("dedup", rows, batch_id="b-1")
        assert result.duplicate is True
        assert survivor.get("dedup").batches == 1
        survivor.close()

    def test_dedup_survives_checkpoint_restore(self, tmp_path):
        registry = MonitorRegistry.open(tmp_path / "data")
        registry.create_from_config(self.CONFIG)
        registry.observe("dedup", synthetic_rows(30), batch_id="b-1")
        registry.checkpoint_all()
        registry.close()
        survivor = MonitorRegistry.open(tmp_path / "data")
        result = survivor.observe("dedup", synthetic_rows(30), batch_id="b-1")
        assert result.duplicate is True
        assert survivor.get("dedup").batches == 1
        survivor.close()

    def test_remembered_ids_are_bounded(self, tmp_path, monkeypatch):
        import repro.monitor.registry as registry_module

        monkeypatch.setattr(registry_module, "RECENT_BATCH_IDS", 3)
        registry = MonitorRegistry.open(tmp_path / "data")
        registry.create_from_config(self.CONFIG)
        rows = synthetic_rows(10)
        for index in range(5):
            registry.observe("dedup", rows, batch_id=f"b-{index}")
        # The two oldest ids fell out of the window: no longer deduped.
        assert registry.observe("dedup", rows, batch_id="b-0").duplicate is False
        assert registry.observe("dedup", rows, batch_id="b-4").duplicate is True
        registry.close()

    def test_batch_id_validation(self, tmp_path):
        registry = MonitorRegistry.open(tmp_path / "data")
        registry.create_from_config(self.CONFIG)
        rows = synthetic_rows(5)
        with pytest.raises(ValidationError):
            registry.observe("dedup", rows, batch_id="")
        with pytest.raises(ValidationError):
            registry.observe("dedup", rows, batch_id=7)
        with pytest.raises(ValidationError):
            registry.observe("dedup", rows, batch_id="x" * 200)
        registry.close()


# ----------------------------------------------------------------------
# Banner-before-replay: the deferred-attach service
# ----------------------------------------------------------------------
@pytest.mark.service
class TestStartingService:
    def test_unattached_service_reports_starting(self, tmp_path):
        service = MonitorService(None).start()
        try:
            probe = HttpProbe(service.url)
            status, body, _ = probe.request("GET", "/healthz")
            assert (status, body["status"]) == (200, "starting")
            status, body, headers = probe.request("GET", "/monitors")
            assert status == 503
            assert body["starting"] is True
            assert "Retry-After" in headers
            registry = MonitorRegistry.open(tmp_path / "data")
            service.attach_registry(registry)
            status, body, _ = probe.request("GET", "/healthz")
            assert (status, body["status"]) == (200, "ok")
            assert probe.request("GET", "/monitors")[0] == 200
        finally:
            service.shutdown()

    def test_attach_twice_refuses(self, tmp_path):
        service = MonitorService(None)
        service.attach_registry(MonitorRegistry.open(tmp_path / "a"))
        with pytest.raises(MonitorError):
            service.attach_registry(MonitorRegistry.open(tmp_path / "b"))
        service.registry.close()


# ----------------------------------------------------------------------
# Live fleet: real subprocesses, real SIGKILL
# ----------------------------------------------------------------------
FAST_POLICY = SupervisorPolicy(
    probe_interval=0.1,
    probe_timeout=5.0,
    failure_threshold=3,
    recovery_probes=1,
    backoff_base=0.1,
    backoff_cap=2.0,
)


def wait_until(predicate, *, deadline=30.0, message="condition"):
    deadline_at = time.monotonic() + deadline
    while time.monotonic() < deadline_at:
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError(f"timed out waiting for {message}")


def report_until_acked(client, name, *, deadline=60.0):
    deadline_at = time.monotonic() + deadline
    last = None
    while time.monotonic() < deadline_at:
        try:
            return client.report(name)
        except MonitorClientError as error:
            if not (error.transient or error.status in (429, 503)):
                raise
            last = error
            time.sleep(0.05)
    raise AssertionError(f"report not served within {deadline}s: {last}")


@pytest.mark.fleet
class TestFleetLive:
    def test_smoke_ingest_and_status(self, tmp_path, capsys):
        from repro.cli import main

        fleet_dir = tmp_path / "fleet"
        names = names_for_shards(2, prefix="live")
        batches = [synthetic_rows(40, seed=seed) for seed in range(3)]
        with FleetSupervisor(fleet_dir, 2, policy=FAST_POLICY) as fleet:
            with FleetRouter(fleet) as router:
                client = MonitorClient(router.url, retries=8)
                for name in names:
                    client.create(monitor_config(name))
                assert client.monitors() == sorted(names)
                for name in names:
                    for index, rows in enumerate(batches):
                        ack = client.observe(
                            name, rows, batch_id=f"smoke-{name}-{index}"
                        )
                        assert ack["duplicate"] is False
                    # A replayed id is acked as a duplicate, not applied.
                    ack = client.observe(
                        name, batches[0], batch_id=f"smoke-{name}-0"
                    )
                    assert ack["duplicate"] is True
                expected = offline_epsilon(
                    [row for rows in batches for row in rows]
                )
                for name in names:
                    report = client.report(name)
                    assert report["epsilon"] == expected
                    assert report["rows_seen"] == 120
                    assert report["batches"] == 3
                # The fleet healthz aggregates each shard's *last*
                # probe, so the counters trail ingestion by up to one
                # probe interval.
                wait_until(
                    lambda: fleet.fleet_health()["status"] == "ok"
                    and fleet.fleet_health()["rows_ingested"] == 240,
                    message="probes to observe all ingested rows",
                )
                health = client.healthz()
                assert health["status"] == "ok"
                assert health["n_shards"] == 2
                assert health["monitors"] == 2
                assert health["rows_ingested"] == 240
                for shard in health["shards"]:
                    assert shard["state"] == BREAKER_CLOSED
                    assert shard["pid"] is not None
                    assert shard["generation"] == 1
                    assert shard["applied_seq"] >= 1
            fleet.stop()  # graceful: every shard checkpoints

        # Offline views over the same fleet dir.
        assert main(["fleet-status", "--data-dir", str(fleet_dir)]) == 0
        text = capsys.readouterr().out
        assert "shard-00" in text and "shard-01" in text
        for name in names:
            assert name in text
        assert "merged cumulative groups" in text
        # Both monitors share a schema: one merged group over all rows.
        snapshot = fleet_status_snapshot(fleet_dir)
        groups = snapshot["merged"]["groups"]
        assert len(groups) == 1
        assert groups[0]["rows"] == 240
        assert groups[0]["epsilon"] == offline_epsilon(
            [row for rows in batches for row in rows] * 2
        )
        # monitor-status on a fleet dir dispatches to the fleet view.
        assert main(["monitor-status", "--data-dir", str(fleet_dir)]) == 0
        assert "fleet data dir" in capsys.readouterr().out
        # wal-inspect reports per-shard WALs plus fleet totals.
        assert main(["wal-inspect", "--data-dir", str(fleet_dir)]) == 0
        wal_text = capsys.readouterr().out
        assert "fleet totals: 2 shard(s)" in wal_text

    def test_router_metrics_equal_tree_merged_shard_registries(
        self, tmp_path
    ):
        """PR-10 acceptance: live fleet /metrics is the bit-exact
        tree-merge of the per-shard registries, and its ingestion
        counters match the client-side ground truth."""
        from repro.obs.metrics import MetricsRegistry

        fleet_dir = tmp_path / "fleet"
        names = names_for_shards(2, prefix="obs")
        batches = [synthetic_rows(25, seed=seed) for seed in range(4)]
        with FleetSupervisor(fleet_dir, 2, policy=FAST_POLICY) as fleet:
            with FleetRouter(fleet) as router:
                client = MonitorClient(router.url, retries=8)
                for name in names:
                    client.create(monitor_config(name))
                    for index, rows in enumerate(batches):
                        client.observe(
                            name, rows, batch_id=f"obs-{name}-{index}"
                        )

                # Ground truth: fetch each live shard's registry state
                # and fold it with the same merge the router performs.
                expected = MetricsRegistry()
                for shard in range(fleet.n_shards):
                    status, body, _ = _get_raw(
                        fleet.shard_url(shard) + "/metrics.json"
                    )
                    assert status == 200
                    expected.merge(
                        MetricsRegistry.from_state(json.loads(body))
                    )

                status, body, _ = _get_raw(router.url + "/metrics.json")
                assert status == 200
                merged = MetricsRegistry.from_state(json.loads(body))
                merged_families = merged.state_dict()["families"]
                expected_families = expected.state_dict()["families"]
                # Counters must agree bit-exactly with the client-side
                # tree-merge (the fleet saw no traffic in between).
                for family, payload in expected_families.items():
                    if payload["type"] != "counter":
                        continue
                    assert merged_families[family] == payload, family
                # ... and with what the client actually ingested.
                rows_by_monitor = {
                    series["labels"]["monitor"]: series["value"]
                    for series in merged_families[
                        "repro_observe_rows_total"
                    ]["series"]
                }
                assert rows_by_monitor == {name: 100 for name in names}
                batches_by_monitor = {
                    series["labels"]["monitor"]: series["value"]
                    for series in merged_families[
                        "repro_observe_batches_total"
                    ]["series"]
                }
                assert batches_by_monitor == {name: 4 for name in names}

                # The text page renders the same registry, with every
                # shard marked up.
                status, text, _ = _get_raw(router.url + "/metrics")
                assert status == 200
                for shard in range(fleet.n_shards):
                    assert (
                        f'repro_fleet_shard_up{{shard="{shard:02d}"}} 1'
                        in text
                    )
                for name in names:
                    assert (
                        f'repro_observe_rows_total{{monitor="{name}"}} 100'
                        in text
                    )
            fleet.stop()

    def test_kill_a_shard_at_every_ingest_boundary(self, tmp_path):
        # The acceptance criterion: SIGKILL the owning shard before,
        # during, and after acked batches while the client feeds; once
        # retries converge, the fleet's epsilon AND posterior must be
        # bit-identical to a single process that never crashed, with no
        # acked batch lost or double-counted.
        fleet_dir = tmp_path / "fleet"
        name = names_for_shards(2, prefix="kill")[0]
        target = shard_for(name, 2)
        config = monitor_config(name, posterior_samples=200, seed=11)
        batches = [synthetic_rows(40, seed=100 + index) for index in range(9)]

        with FleetSupervisor(fleet_dir, 2, policy=FAST_POLICY) as fleet:
            with FleetRouter(fleet) as router:
                client = MonitorClient(router.url, retries=6)
                # create goes through the same retry discipline as the
                # batches (the shard may be mid-restart at any time)
                deadline_at = time.monotonic() + 30.0
                while True:
                    try:
                        client.create(config)
                        break
                    except MonitorClientError as error:
                        if (
                            not (
                                error.transient
                                or error.status in (429, 503)
                            )
                            or time.monotonic() > deadline_at
                        ):
                            raise
                        time.sleep(0.05)
                results, kills = feed_fleet_with_kills(
                    client,
                    name,
                    batches,
                    kill=lambda: fleet.kill_shard(target),
                    boundaries=("before", "mid", "after"),
                    batch_id_prefix="kill",
                )
                assert kills == 9
                report = report_until_acked(client, name)
            supervisor = fleet.shard_supervisor(target)
            assert supervisor.restarts >= 1  # the kills really landed
            fleet.stop()

        # The never-crashed reference: same config, same batches, one
        # in-process registry.
        reference = MonitorRegistry.open(tmp_path / "reference")
        reference.create_from_config(MonitorConfig.from_dict(config))
        for index, rows in enumerate(batches):
            reference.observe(name, rows, batch_id=f"kill-{index:04d}")
        expected = reference.report(name).to_dict()
        reference.close()

        assert report["rows_seen"] == expected["rows_seen"] == 9 * 40
        assert report["batches"] == expected["batches"] == 9
        assert report["epsilon"] == expected["epsilon"]  # bit-identical
        assert report["posterior"] == expected["posterior"]
        # Every ack the client saw names a real, exactly-once batch.
        applied = [r for r in results if not r.get("duplicate")]
        assert len(applied) + sum(
            1 for r in results if r.get("duplicate")
        ) == 9

    def test_banner_prints_before_wal_replay(self, tmp_path):
        # Seed a shard data dir with an un-checkpointed WAL so the
        # restart has replay work to do; the worker must print its
        # banner (and answer /healthz "starting"/"ok") regardless.
        data_dir = tmp_path / "shard-data"
        registry = MonitorRegistry.open(data_dir)
        registry.create_from_config(self.seed_config())
        for seed in range(3):
            registry.observe("banner", synthetic_rows(50, seed=seed))
        del registry  # kill -9: WAL left un-checkpointed

        process = ShardProcess(0, data_dir, banner_timeout=60.0)
        url = process.start()
        try:
            assert url.startswith("http://127.0.0.1:")
            first_line = process.tail()[0]
            assert first_line.startswith(BANNER_PREFIX)

            def resumed():
                try:
                    with urllib.request.urlopen(
                        f"{url}/healthz", timeout=5
                    ) as response:
                        return (
                            json.loads(response.read())["status"] == "ok"
                        )
                except (urllib.error.URLError, ConnectionError):
                    return False

            wait_until(resumed, message="WAL replay to finish")
            with urllib.request.urlopen(
                f"{url}/monitors/banner/report", timeout=5
            ) as response:
                report = json.loads(response.read())
            assert report["rows_seen"] == 150  # replay restored them
        finally:
            process.terminate(grace=10.0)

    @staticmethod
    def seed_config() -> MonitorConfig:
        return MonitorConfig(
            name="banner", protected=("gender", "race"), outcome="hired"
        )
