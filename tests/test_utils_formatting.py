"""Tests for repro.utils.formatting."""

import math

import pytest

from repro.utils.formatting import format_float, render_markdown_table, render_table


class TestFormatFloat:
    def test_float_rounding(self):
        assert format_float(1.23456, 3) == "1.235"

    def test_int_passthrough(self):
        assert format_float(7) == "7"

    def test_string_passthrough(self):
        assert format_float("abc") == "abc"

    def test_nan_and_inf(self):
        assert format_float(math.nan) == "nan"
        assert format_float(math.inf) == "inf"
        assert format_float(-math.inf) == "-inf"


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["name", "value"], [["a", 1.5], ["bb", 22.25]], digits=2)
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "----" in lines[1]
        assert "22.25" in lines[2 + 1]

    def test_title(self):
        text = render_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError, match="cells"):
            render_table(["a", "b"], [[1]])

    def test_empty_body(self):
        text = render_table(["a"], [])
        assert len(text.splitlines()) == 2


class TestRenderMarkdownTable:
    def test_structure(self):
        text = render_markdown_table(["a", "b"], [[1, 2]])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "| --- | --- |"
        assert lines[2] == "| 1 | 2 |"

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_markdown_table(["a"], [[1, 2]])
