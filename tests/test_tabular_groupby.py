"""Tests for repro.tabular.groupby."""

import numpy as np
import pytest

from repro.exceptions import SchemaError, ValidationError
from repro.tabular.groupby import group_by
from repro.tabular.table import Table


class TestGrouping:
    def test_single_key_sizes(self, hiring_table):
        grouped = group_by(hiring_table, "gender")
        assert grouped.sizes() == {("A",): 8, ("B",): 8}

    def test_multi_key_sizes(self, hiring_table):
        grouped = group_by(hiring_table, ["gender", "race"])
        assert grouped.sizes() == {
            ("A", "X"): 4,
            ("A", "Y"): 4,
            ("B", "X"): 4,
            ("B", "Y"): 4,
        }

    def test_group_subtable(self, hiring_table):
        grouped = group_by(hiring_table, ["gender", "race"])
        sub = grouped.group(("A", "X"))
        assert sub.n_rows == 4
        assert set(sub.column("hired").to_list()) == {"yes", "no"}

    def test_indices_cover_table(self, hiring_table):
        grouped = group_by(hiring_table, ["gender"])
        all_indices = np.concatenate(
            [grouped.indices(key) for key in grouped.group_keys()]
        )
        assert sorted(all_indices.tolist()) == list(range(16))

    def test_unknown_group_raises(self, hiring_table):
        grouped = group_by(hiring_table, "gender")
        with pytest.raises(KeyError):
            grouped.indices(("Z",))

    def test_only_observed_groups_present(self):
        table = Table.from_dict({"g": ["a", "a"], "v": [1.0, 2.0]})
        grouped = group_by(table, "g")
        assert grouped.group_keys() == [("a",)]

    def test_numeric_key_rejected(self, numeric_table):
        with pytest.raises(SchemaError, match="categorical"):
            group_by(numeric_table, "x")

    def test_empty_keys_rejected(self, hiring_table):
        with pytest.raises(ValidationError):
            group_by(hiring_table, [])

    def test_iteration(self, hiring_table):
        grouped = group_by(hiring_table, "gender")
        seen = {key for key, _ in grouped}
        assert seen == {("A",), ("B",)}
        assert len(grouped) == 2


class TestAggregation:
    def test_mean(self, numeric_table):
        grouped = group_by(numeric_table, "group")
        assert grouped.mean("x") == {("a",): 1.5, ("b",): 4.0}

    def test_mean_of_categorical_rejected(self, hiring_table):
        grouped = group_by(hiring_table, "gender")
        with pytest.raises(SchemaError):
            grouped.mean("race")

    def test_aggregate_custom(self, numeric_table):
        grouped = group_by(numeric_table, "group")
        assert grouped.aggregate("x", np.max) == {("a",): 2.0, ("b",): 5.0}

    def test_rate_matches_definition(self, hiring_table):
        """GroupBy.rate is exactly P_Data(y | s) of Definition 4.2."""
        grouped = group_by(hiring_table, ["gender", "race"])
        rates = grouped.rate("hired", "yes")
        assert rates[("A", "X")] == pytest.approx(0.75)
        assert rates[("A", "Y")] == pytest.approx(0.25)
        assert rates[("B", "X")] == pytest.approx(0.5)
