"""Tests for repro.tabular.schema."""

import pytest

from repro.exceptions import SchemaError, ValidationError
from repro.tabular.schema import Field, Schema
from repro.tabular.table import Table


class TestField:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError):
            Field("x", "floaty")

    def test_levels_only_for_categorical(self):
        with pytest.raises(ValidationError):
            Field("x", "numeric", levels=("a",))

    def test_build_numeric(self):
        column = Field("x", "numeric").build_column(["1.5", "2"])
        assert column.values.tolist() == [1.5, 2.0]

    def test_build_numeric_bad_value(self):
        with pytest.raises(SchemaError, match="non-numeric"):
            Field("x", "numeric").build_column(["abc"])

    @pytest.mark.parametrize(
        "raw,expected",
        [("true", True), ("1", True), ("no", False), ("F", False)],
    )
    def test_build_boolean(self, raw, expected):
        column = Field("b", "boolean").build_column([raw])
        assert column.values.tolist() == [expected]

    def test_build_boolean_bad_value(self):
        with pytest.raises(SchemaError):
            Field("b", "boolean").build_column(["maybe"])

    def test_build_categorical_with_levels(self):
        field = Field("c", "categorical", levels=("lo", "hi"))
        column = field.build_column(["hi", "lo"])
        assert column.levels == ("lo", "hi")


class TestSchema:
    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Field("a", "numeric"), Field("a", "numeric")])

    def test_lookup(self):
        schema = Schema([Field("a", "numeric"), Field("b", "categorical")])
        assert schema.field("b").kind == "categorical"
        assert "a" in schema
        assert len(schema) == 2

    def test_unknown_field(self):
        schema = Schema([Field("a", "numeric")])
        with pytest.raises(SchemaError):
            schema.field("zzz")

    def test_subset(self):
        schema = Schema([Field("a", "numeric"), Field("b", "categorical")])
        assert schema.subset(["b"]).names == ["b"]

    def test_validate_table_accepts(self):
        schema = Schema([Field("x", "numeric"), Field("c", "categorical")])
        table = Table.from_dict({"x": [1.0], "c": ["a"]})
        schema.validate_table(table)

    def test_validate_table_name_mismatch(self):
        schema = Schema([Field("x", "numeric")])
        table = Table.from_dict({"y": [1.0]})
        with pytest.raises(SchemaError, match="names"):
            schema.validate_table(table)

    def test_validate_table_kind_mismatch(self):
        schema = Schema([Field("x", "categorical")])
        table = Table.from_dict({"x": [1.0]})
        with pytest.raises(SchemaError, match="kind"):
            schema.validate_table(table)

    def test_validate_table_level_mismatch(self):
        schema = Schema([Field("c", "categorical", levels=("a", "b"))])
        table = Table.from_dict({"c": ["a"]})
        with pytest.raises(SchemaError, match="levels"):
            schema.validate_table(table)
