"""Tests for repro.data.generators and repro.data.adult."""

import pytest

from repro.data.adult import (
    ADULT_COLUMNS,
    AdultPreprocessing,
    load_adult,
    preprocess_adult,
)
from repro.data.generators import expand_cells_to_table, sample_outcome_table
from repro.exceptions import ValidationError


class TestExpandCells:
    def test_exact_counts(self):
        table = expand_cells_to_table(
            {("a",): [2, 3], ("b",): [1, 0]},
            attribute_names=["g"],
            outcome_name="y",
            outcome_levels=["no", "yes"],
        )
        assert table.n_rows == 6
        counts = table.value_counts("y")
        assert counts == {"no": 3, "yes": 3}

    def test_crosstab_roundtrip(self):
        from repro.tabular.crosstab import crosstab

        cells = {("a", "x"): [5, 2], ("b", "y"): [0, 7]}
        table = expand_cells_to_table(
            cells, ["g", "h"], "y", ["neg", "pos"], shuffle_seed=3
        )
        contingency = crosstab(table, ["g", "h"], "y")
        assert contingency.cell(("a", "x"), "pos") == 2
        assert contingency.cell(("b", "y"), "pos") == 7

    def test_shuffle_preserves_counts(self):
        cells = {("a",): [10, 10]}
        plain = expand_cells_to_table(cells, ["g"], "y", ["n", "p"])
        shuffled = expand_cells_to_table(cells, ["g"], "y", ["n", "p"], shuffle_seed=1)
        assert plain.value_counts("y") == shuffled.value_counts("y")

    def test_arity_checked(self):
        with pytest.raises(ValidationError):
            expand_cells_to_table({("a", "b"): [1, 1]}, ["g"], "y", ["n", "p"])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            expand_cells_to_table({}, ["g"], "y", ["n", "p"])
        with pytest.raises(ValidationError):
            expand_cells_to_table({("a",): [0, 0]}, ["g"], "y", ["n", "p"])

    def test_negative_counts_rejected(self):
        with pytest.raises(ValidationError):
            expand_cells_to_table({("a",): [-1, 2]}, ["g"], "y", ["n", "p"])


class TestSampleOutcomeTable:
    def test_rates_approximate(self):
        table = sample_outcome_table(
            cell_sizes={("a",): 5000, ("b",): 5000},
            positive_rates={("a",): 0.2, ("b",): 0.6},
            attribute_names=["g"],
            seed=0,
        )
        from repro.tabular.groupby import group_by

        rates = group_by(table, "g").rate("outcome", "positive")
        assert rates[("a",)] == pytest.approx(0.2, abs=0.02)
        assert rates[("b",)] == pytest.approx(0.6, abs=0.02)

    def test_missing_rate_rejected(self):
        with pytest.raises(ValidationError):
            sample_outcome_table(
                {("a",): 10}, {}, attribute_names=["g"], seed=0
            )

    def test_bad_rate_rejected(self):
        with pytest.raises(ValidationError):
            sample_outcome_table(
                {("a",): 10}, {("a",): 1.5}, attribute_names=["g"], seed=0
            )

    def test_deterministic(self):
        kwargs = dict(
            cell_sizes={("a",): 100},
            positive_rates={("a",): 0.5},
            attribute_names=["g"],
        )
        first = sample_outcome_table(seed=9, **kwargs)
        second = sample_outcome_table(seed=9, **kwargs)
        assert first.to_dict() == second.to_dict()


ADULT_SAMPLE = (
    "39, State-gov, 77516, Bachelors, 13, Never-married, Adm-clerical,"
    " Not-in-family, White, Male, 2174, 0, 40, United-States, <=50K\n"
    "50, Self-emp-not-inc, 83311, Bachelors, 13, Married-civ-spouse,"
    " Exec-managerial, Husband, Amer-Indian-Eskimo, Male, 0, 0, 13,"
    " Cuba, >50K\n"
    "28, Private, 338409, Bachelors, 13, Married-civ-spouse, Prof-specialty,"
    " Wife, Black, Female, 0, 0, 40, ?, <=50K\n"
)

ADULT_TEST_SAMPLE = (
    "|1x3 Cross validator\n"
    "25, Private, 226802, 11th, 7, Never-married, Machine-op-inspct,"
    " Own-child, Other, Male, 0, 0, 40, United-States, <=50K.\n"
)


class TestAdultLoader:
    def test_load_train_style(self, tmp_path):
        path = tmp_path / "adult.data"
        path.write_text(ADULT_SAMPLE)
        table = load_adult(path)
        assert table.n_rows == 3
        assert table.column_names == ADULT_COLUMNS
        assert table.column("income").to_list() == ["<=50K", ">50K", "<=50K"]

    def test_load_test_style_strips_periods_and_header(self, tmp_path):
        path = tmp_path / "adult.test"
        path.write_text(ADULT_TEST_SAMPLE)
        table = load_adult(path)
        assert table.n_rows == 1
        assert table.column("income").to_list() == ["<=50K"]

    def test_preprocess_binarizes_nationality(self, tmp_path):
        path = tmp_path / "adult.data"
        path.write_text(ADULT_SAMPLE)
        table = preprocess_adult(load_adult(path))
        assert table.column("nationality").to_list() == [
            "United-States",
            "Other",
            "Other",
        ]

    def test_preprocess_merges_races(self, tmp_path):
        path = tmp_path / "adult.data"
        path.write_text(ADULT_SAMPLE)
        table = preprocess_adult(load_adult(path))
        races = table.column("race").to_list()
        assert races[1] == "Other"  # Amer-Indian-Eskimo merged
        assert "sex" not in table
        assert "gender" in table

    def test_preprocess_options(self, tmp_path):
        path = tmp_path / "adult.data"
        path.write_text(ADULT_SAMPLE)
        options = AdultPreprocessing(
            merge_small_races=False, binarize_nationality=False
        )
        table = preprocess_adult(load_adult(path), options)
        assert "Amer-Indian-Eskimo" in table.column("race").to_list()
        assert "Cuba" in table.column("nationality").to_list()
