"""Property-based tests of the privacy and utility guarantees (Eqs 4-5)
and of the tabular engine's algebraic laws."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.core.epsilon import epsilon_from_probabilities
from repro.core.privacy import (
    expected_group_utilities,
    posterior_group_probabilities,
    privacy_violations,
)
from repro.tabular.crosstab import crosstab
from repro.tabular.table import Table


def probability_matrices(n_groups=3, n_outcomes=2):
    return npst.arrays(
        dtype=np.float64,
        shape=(n_groups, n_outcomes),
        elements=st.floats(0.01, 1.0),
    ).map(lambda raw: raw / raw.sum(axis=1, keepdims=True))


def priors(n_groups=3):
    return npst.arrays(
        dtype=np.float64, shape=(n_groups,), elements=st.floats(0.05, 1.0)
    ).map(lambda raw: raw / raw.sum())


class TestPrivacyProperties:
    @given(probability_matrices(), priors())
    @settings(max_examples=200, deadline=None)
    def test_equation_four_always_holds(self, probs, prior):
        """Eq 4: posterior odds shift bounded by the measured epsilon, for
        every prior, outcome, and group pair."""
        result = epsilon_from_probabilities(probs, validate=False)
        assert privacy_violations(result, prior, tolerance=1e-7) == []

    @given(probability_matrices(), priors())
    @settings(max_examples=200, deadline=None)
    def test_posterior_columns_normalised(self, probs, prior):
        posterior = posterior_group_probabilities(probs, prior)
        sums = np.nansum(posterior, axis=0)
        assert np.allclose(sums[~np.isnan(posterior).all(axis=0)], 1.0)

    @given(
        probability_matrices(n_groups=4, n_outcomes=3),
        npst.arrays(
            dtype=np.float64, shape=(3,), elements=st.floats(0.0, 10.0)
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_equation_five_utility_bound(self, probs, utilities):
        """Eq 5: E[u|si] <= exp(eps) E[u|sj] for any non-negative utility."""
        result = epsilon_from_probabilities(probs, validate=False)
        expected = expected_group_utilities(probs, utilities)
        bound = math.exp(result.epsilon)
        for i in range(len(expected)):
            for j in range(len(expected)):
                if expected[j] > 0:
                    assert expected[i] <= bound * expected[j] * (1 + 1e-9)


def small_tables():
    """Random small categorical tables for relational-law checks."""
    return st.lists(
        st.tuples(
            st.sampled_from(["a", "b", "c"]),
            st.sampled_from(["x", "y"]),
            st.sampled_from(["n", "p"]),
        ),
        min_size=2,
        max_size=40,
    ).map(lambda rows: Table.from_rows(["g", "h", "y"], rows))


class TestTabularLaws:
    @given(small_tables())
    @settings(max_examples=150, deadline=None)
    def test_crosstab_total_is_row_count(self, table):
        contingency = crosstab(table, ["g", "h"], "y")
        assert contingency.total() == table.n_rows

    @given(small_tables())
    @settings(max_examples=150, deadline=None)
    def test_marginalisation_commutes_with_counting(self, table):
        """crosstab(g) == marginalize(crosstab(g, h), [g])."""
        direct = crosstab(table, ["g"], "y")
        via_marginal = crosstab(table, ["g", "h"], "y").marginalize(["g"])
        for label in direct.group_labels():
            for outcome in direct.outcome_levels:
                assert direct.cell(label, outcome) == via_marginal.cell(
                    label, outcome
                )

    @given(small_tables(), st.integers(0, 2**32 - 1))
    @settings(max_examples=100, deadline=None)
    def test_shuffle_preserves_counts(self, table, seed):
        shuffled = table.shuffle(np.random.default_rng(seed))
        assert shuffled.value_counts("y") == table.value_counts("y")
        original = crosstab(table, ["g", "h"], "y")
        after = crosstab(shuffled, ["g", "h"], "y")
        assert np.array_equal(original.counts, after.counts)

    @given(small_tables())
    @settings(max_examples=100, deadline=None)
    def test_filter_partition(self, table):
        mask = table.column("g").equals_mask("a")
        kept = table.filter(mask)
        dropped = table.filter(~mask)
        assert kept.n_rows + dropped.n_rows == table.n_rows

    @given(small_tables())
    @settings(max_examples=100, deadline=None)
    def test_groupby_sizes_sum_to_rows(self, table):
        from repro.tabular.groupby import group_by

        sizes = group_by(table, ["g", "h"]).sizes()
        assert sum(sizes.values()) == table.n_rows
