"""Tests for repro.core.privacy (Equations 4 and 5)."""

import math

import numpy as np
import pytest

from repro.core.epsilon import epsilon_from_probabilities
from repro.core.privacy import (
    expected_group_utilities,
    posterior_group_probabilities,
    posterior_odds_interval,
    privacy_violations,
    utility_disparity,
    utility_disparity_bound,
)
from repro.exceptions import ValidationError


class TestPosteriorOddsInterval:
    def test_basic(self):
        low, high = posterior_odds_interval(math.log(2), prior_odds=1.0)
        assert low == pytest.approx(0.5)
        assert high == pytest.approx(2.0)

    def test_scales_with_prior(self):
        low, high = posterior_odds_interval(0.0, prior_odds=3.0)
        assert low == high == 3.0

    def test_infinite_epsilon(self):
        low, high = posterior_odds_interval(math.inf, prior_odds=1.0)
        assert low == 0.0
        assert high == math.inf


class TestPosteriorGroupProbabilities:
    def test_bayes_rule(self):
        outcome_probs = np.array([[0.8, 0.2], [0.4, 0.6]])
        prior = np.array([0.5, 0.5])
        posterior = posterior_group_probabilities(outcome_probs, prior)
        # P(s1 | y0) = 0.8*0.5 / (0.8*0.5 + 0.4*0.5) = 2/3.
        assert posterior[0, 0] == pytest.approx(2.0 / 3.0)
        assert np.allclose(posterior.sum(axis=0), 1.0)

    def test_impossible_outcome_is_nan(self):
        posterior = posterior_group_probabilities(
            np.array([[1.0, 0.0], [1.0, 0.0]]), np.array([0.5, 0.5])
        )
        assert np.isnan(posterior[:, 1]).all()

    def test_prior_validated(self):
        with pytest.raises(ValidationError):
            posterior_group_probabilities(
                np.array([[0.5, 0.5]]), np.array([0.7])
            )


class TestPrivacyGuarantee:
    def test_equation_four_holds_for_measured_epsilon(self):
        """The posterior odds shift is bounded by the measured epsilon."""
        probs = np.array([[0.7, 0.3], [0.2, 0.8], [0.5, 0.5]])
        result = epsilon_from_probabilities(probs)
        prior = np.array([0.2, 0.5, 0.3])
        assert privacy_violations(result, prior) == []

    def test_violations_detected_for_understated_epsilon(self):
        probs = np.array([[0.7, 0.3], [0.2, 0.8]])
        result = epsilon_from_probabilities(probs)
        # Forge a result that claims a much smaller epsilon.
        forged = epsilon_from_probabilities(probs)
        object.__setattr__(forged, "epsilon", 0.01)
        assert privacy_violations(forged, np.array([0.5, 0.5]))


class TestUtilityBound:
    def test_bound_value(self):
        assert utility_disparity_bound(math.log(3)) == pytest.approx(3.0)
        assert utility_disparity_bound(math.inf) == math.inf

    def test_expected_utilities(self):
        probs = np.array([[0.7, 0.3], [0.4, 0.6]])
        utilities = np.array([0.0, 1.0])
        expected = expected_group_utilities(probs, utilities)
        assert expected.tolist() == [0.3, 0.6]

    def test_negative_utility_rejected(self):
        with pytest.raises(ValidationError, match="non-negative"):
            expected_group_utilities(
                np.array([[0.5, 0.5]]), np.array([-1.0, 1.0])
            )

    def test_loan_example_from_paper(self):
        """A ln(3)-DF approval process can award at most 3x the expected
        utility (Section 3.3's randomized-response calibration)."""
        probs = np.array([[0.75, 0.25], [0.25, 0.75]])  # exactly ln(3)-DF
        result = epsilon_from_probabilities(probs)
        assert result.epsilon == pytest.approx(math.log(3))
        disparity = utility_disparity(result, np.array([0.0, 1.0]))
        assert disparity.ratio == pytest.approx(3.0)
        assert disparity.satisfies_bound()

    def test_disparity_holds_for_any_nonnegative_utility(self, rng):
        probs = np.array([[0.6, 0.1, 0.3], [0.3, 0.3, 0.4], [0.25, 0.25, 0.5]])
        result = epsilon_from_probabilities(probs)
        for _ in range(50):
            utilities = rng.random(3) * 10
            disparity = utility_disparity(result, utilities)
            assert disparity.satisfies_bound(tolerance=1e-9)

    def test_single_group_rejected(self):
        result = epsilon_from_probabilities(
            [[0.5, 0.5], [np.nan, np.nan]]
        )
        with pytest.raises(ValidationError):
            utility_disparity(result, np.array([0.0, 1.0]))
