"""Tests for repro.core.streaming (the mergeable contingency accumulator)."""

import numpy as np
import pytest

from repro.core.streaming import StreamingContingency, canonical_level_order
from repro.exceptions import SchemaError, ValidationError
from repro.tabular.crosstab import ContingencyTable
from repro.tabular.table import Table

ROWS = (
    [("A", "X", "yes")] * 3
    + [("A", "X", "no")] * 1
    + [("A", "Y", "yes")] * 1
    + [("A", "Y", "no")] * 3
    + [("B", "X", "yes")] * 2
    + [("B", "X", "no")] * 2
    + [("B", "Y", "yes")] * 2
    + [("B", "Y", "no")] * 2
)


def reference_contingency(rows=ROWS) -> ContingencyTable:
    table = Table.from_rows(["gender", "race", "hired"], rows)
    return ContingencyTable.from_table(table, ["gender", "race"], "hired")


class TestUpdateAndSnapshot:
    def test_snapshot_matches_from_table_bitwise(self):
        accumulator = StreamingContingency(["gender", "race"], "hired")
        accumulator.update(ROWS)
        snapshot = accumulator.snapshot()
        reference = reference_contingency()
        assert snapshot.factor_names == reference.factor_names
        assert snapshot.factor_levels == reference.factor_levels
        assert snapshot.outcome_levels == reference.outcome_levels
        assert np.array_equal(snapshot.counts, reference.counts)
        assert snapshot.counts.dtype == reference.counts.dtype

    def test_arrival_order_does_not_matter(self):
        forward = StreamingContingency(["gender", "race"], "hired")
        forward.update(ROWS)
        backward = StreamingContingency(["gender", "race"], "hired")
        backward.update(ROWS[::-1])
        assert np.array_equal(
            forward.snapshot().counts, backward.snapshot().counts
        )

    def test_incremental_equals_bulk(self):
        bulk = StreamingContingency(["gender", "race"], "hired").update(ROWS)
        incremental = StreamingContingency(["gender", "race"], "hired")
        for row in ROWS:
            incremental.update([row])
        assert np.array_equal(
            bulk.snapshot().counts, incremental.snapshot().counts
        )
        assert incremental.n_rows == len(ROWS)

    def test_pinned_levels_keep_declared_order(self):
        accumulator = StreamingContingency(
            ["gender", "race"],
            "hired",
            factor_levels=[("B", "A"), ("Y", "X")],
            outcome_levels=("yes", "no"),
        )
        accumulator.update(ROWS)
        snapshot = accumulator.snapshot()
        assert snapshot.factor_levels == [("B", "A"), ("Y", "X")]
        assert snapshot.outcome_levels == ("yes", "no")
        # Same data, different layout: cell lookups agree with reference.
        reference = reference_contingency()
        for group in reference.group_labels():
            for outcome in reference.outcome_levels:
                assert snapshot.cell(group, outcome) == reference.cell(
                    group, outcome
                )

    def test_pinned_axis_rejects_unseen_level(self):
        accumulator = StreamingContingency(
            ["gender"], "hired", factor_levels=[("A", "B")]
        )
        with pytest.raises(ValidationError):
            accumulator.update([("C", "yes")])

    def test_update_empty_is_noop(self):
        accumulator = StreamingContingency(["gender"], "hired")
        accumulator.update([])
        assert accumulator.n_rows == 0

    def test_bad_row_width_raises(self):
        accumulator = StreamingContingency(["gender", "race"], "hired")
        with pytest.raises(ValidationError):
            accumulator.update([("A", "yes")])

    def test_counts_view_is_read_only(self):
        accumulator = StreamingContingency(["gender"], "hired")
        accumulator.update([("A", "yes")])
        with pytest.raises(ValueError):
            accumulator.counts[0, 0] = 5


class TestRetract:
    def test_retract_unseen_row_raises(self):
        accumulator = StreamingContingency(["gender"], "hired")
        accumulator.update([("A", "yes")])
        with pytest.raises(ValidationError):
            accumulator.retract([("A", "no"), ("A", "yes")])

    def test_retract_more_than_counted_raises(self):
        accumulator = StreamingContingency(["gender"], "hired")
        accumulator.update([("A", "yes")])
        with pytest.raises(ValidationError):
            accumulator.retract([("A", "yes"), ("A", "yes")])

    def test_retract_keeps_levels_but_zeroes_counts(self):
        accumulator = StreamingContingency(["gender"], "hired")
        accumulator.update([("A", "yes"), ("B", "no")])
        accumulator.retract([("B", "no")])
        snapshot = accumulator.snapshot()
        assert snapshot.factor_levels == [("A", "B")]
        assert snapshot.cell(("B",), "no") == 0
        assert accumulator.n_rows == 1


class TestTableFastPath:
    def test_update_table_matches_row_path(self, hiring_table):
        by_rows = StreamingContingency(["gender", "race"], "hired").update(ROWS)
        by_table = StreamingContingency(["gender", "race"], "hired")
        by_table.update_table(hiring_table)
        assert np.array_equal(
            by_table.snapshot().counts, by_rows.snapshot().counts
        )

    def test_retract_table_inverts_update_table(self, hiring_table):
        accumulator = StreamingContingency(["gender", "race"], "hired")
        accumulator.update_table(hiring_table)
        accumulator.retract_table(hiring_table)
        assert accumulator.snapshot().counts.sum() == 0
        assert accumulator.n_rows == 0

    def test_non_categorical_column_raises(self, numeric_table):
        accumulator = StreamingContingency(["x"], "group")
        with pytest.raises(SchemaError):
            accumulator.update_table(numeric_table)


class TestMerge:
    def test_merge_mismatched_schema_raises(self):
        left = StreamingContingency(["gender"], "hired")
        with pytest.raises(SchemaError):
            left.merge(StreamingContingency(["race"], "hired"))
        with pytest.raises(SchemaError):
            left.merge(StreamingContingency(["gender"], "loan"))

    def test_merge_conflicting_pinned_levels_raise(self):
        left = StreamingContingency(
            ["gender"], "hired", factor_levels=[("A", "B")]
        )
        right = StreamingContingency(
            ["gender"], "hired", factor_levels=[("B", "A")]
        )
        with pytest.raises(SchemaError):
            left.merge(right)

    def test_merge_disjoint_levels(self):
        left = StreamingContingency(["gender"], "hired").update(
            [("A", "yes"), ("A", "no")]
        )
        right = StreamingContingency(["gender"], "hired").update(
            [("B", "no"), ("B", "no")]
        )
        merged = left.merge(right).snapshot()
        assert merged.factor_levels == [("A", "B")]
        assert merged.cell(("A",), "yes") == 1
        assert merged.cell(("B",), "no") == 2

    def test_merge_does_not_mutate_inputs(self):
        left = StreamingContingency(["gender"], "hired").update([("A", "yes")])
        right = StreamingContingency(["gender"], "hired").update([("B", "no")])
        left_before = left.snapshot().counts.copy()
        left.merge(right)
        assert np.array_equal(left.snapshot().counts, left_before)
        assert left.factor_levels == [("A",)]


class TestCheckpoint:
    def test_state_roundtrip(self):
        accumulator = StreamingContingency(["gender", "race"], "hired")
        accumulator.update(ROWS)
        restored = StreamingContingency.from_state(accumulator.state_dict())
        assert np.array_equal(
            restored.snapshot().counts, accumulator.snapshot().counts
        )
        assert restored.n_rows == accumulator.n_rows
        # The restored accumulator keeps streaming independently.
        restored.update([("A", "X", "yes")])
        assert restored.n_rows == accumulator.n_rows + 1

    def test_checkpoint_is_isolated_from_source(self):
        accumulator = StreamingContingency(["gender"], "hired")
        accumulator.update([("A", "yes")])
        state = accumulator.state_dict()
        accumulator.update([("A", "yes")])
        assert StreamingContingency.from_state(state).total() == 1

    def test_tampered_state_rejected(self):
        accumulator = StreamingContingency(["gender"], "hired")
        accumulator.update([("A", "yes")])
        state = accumulator.state_dict()
        state["counts"] = state["counts"][:, :0]
        with pytest.raises(ValidationError):
            StreamingContingency.from_state(state)
        state = accumulator.state_dict()
        state["counts"] = state["counts"] - 5
        with pytest.raises(ValidationError):
            StreamingContingency.from_state(state)

    def test_copy_preserves_pinning(self):
        accumulator = StreamingContingency(
            ["gender"], "hired", factor_levels=[("B", "A")]
        )
        accumulator.update([("A", "yes")])
        duplicate = accumulator.copy()
        assert duplicate.snapshot().factor_levels == [("B", "A")]
        with pytest.raises(ValidationError):
            duplicate.update([("C", "yes")])


class TestDirtyTracking:
    def test_drain_reports_touched_cells_once(self):
        accumulator = StreamingContingency(["gender", "race"], "hired")
        accumulator.update([("A", "X", "yes"), ("A", "X", "no"), ("B", "Y", "no")])
        dirty = accumulator.drain_dirty()
        assert sorted(dirty) == [(0, 0), (1, 1)]
        assert accumulator.drain_dirty() == []

    def test_retract_marks_dirty(self):
        accumulator = StreamingContingency(["gender"], "hired")
        accumulator.update([("A", "yes"), ("B", "no")])
        accumulator.drain_dirty()
        accumulator.retract([("B", "no")])
        assert accumulator.drain_dirty() == [(1,)]

    def test_schema_version_bumps_on_growth_only(self):
        accumulator = StreamingContingency(["gender"], "hired")
        version = accumulator.schema_version
        accumulator.update([("A", "yes")])
        grown = accumulator.schema_version
        assert grown > version
        accumulator.update([("A", "yes")])
        assert accumulator.schema_version == grown


class TestConstructorValidation:
    def test_no_factors_raises(self):
        with pytest.raises(ValidationError):
            StreamingContingency([], "hired")

    def test_duplicate_factors_raise(self):
        with pytest.raises(ValidationError):
            StreamingContingency(["a", "a"], "hired")

    def test_outcome_in_factors_raises(self):
        with pytest.raises(ValidationError):
            StreamingContingency(["a"], "a")

    def test_duplicate_pinned_levels_raise(self):
        with pytest.raises(ValidationError):
            StreamingContingency(["a"], "y", factor_levels=[("x", "x")])

    def test_factor_levels_length_mismatch_raises(self):
        with pytest.raises(ValidationError):
            StreamingContingency(["a", "b"], "y", factor_levels=[("x",)])


def test_canonical_level_order_matches_column_inference():
    values = ["b", "a", "c", "a"]
    inferred = Table.from_rows(["v", "w"], [(v, "x") for v in values])
    assert tuple(canonical_level_order(set(values))) == inferred.column("v").levels
