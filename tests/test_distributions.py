"""Tests for repro.distributions (base, gaussian, categorical, empirical)."""

import numpy as np
import pytest

from repro.distributions.base import UncertaintySet
from repro.distributions.categorical import JointCategorical
from repro.distributions.empirical import EmpiricalGroupDistribution
from repro.distributions.gaussian import GroupGaussianScores
from repro.exceptions import EmptyGroupError, ValidationError


class TestGroupGaussianScores:
    def test_paper_configuration(self):
        scores = GroupGaussianScores.paper_worked_example()
        assert scores.means.tolist() == [10.0, 12.0]
        assert scores.group_labels() == [(1,), (2,)]
        assert scores.group_probabilities().tolist() == [0.5, 0.5]

    def test_tail_probability(self):
        scores = GroupGaussianScores([0.0], [1.0])
        assert scores.tail_probability((1,), 0.0) == pytest.approx(0.5)

    def test_cdf_tail_complement(self):
        scores = GroupGaussianScores([3.0], [2.0])
        assert scores.cdf((1,), 4.0) + scores.tail_probability(
            (1,), 4.0
        ) == pytest.approx(1.0)

    def test_sampling_moments(self, rng):
        scores = GroupGaussianScores([10.0, 12.0], [1.0, 2.0])
        draws = scores.sample_features((2,), 50_000, rng)
        assert draws.mean() == pytest.approx(12.0, abs=0.05)
        assert draws.std() == pytest.approx(2.0, abs=0.05)

    def test_unknown_group(self, rng):
        scores = GroupGaussianScores([0.0], [1.0])
        with pytest.raises(EmptyGroupError):
            scores.sample_features((9,), 10, rng)

    def test_zero_probability_group_excluded(self, rng):
        scores = GroupGaussianScores([0.0, 1.0], [1.0, 1.0], probabilities=[1.0, 0.0])
        assert scores.positive_groups() == [(1,)]
        with pytest.raises(EmptyGroupError):
            scores.require_group((2,))

    def test_validation(self):
        with pytest.raises(ValidationError):
            GroupGaussianScores([0.0], [0.0])  # zero std
        with pytest.raises(ValidationError):
            GroupGaussianScores([0.0, 1.0], [1.0])  # shape mismatch
        with pytest.raises(ValidationError):
            GroupGaussianScores([0.0], [1.0], probabilities=[0.4])  # not 1


class TestJointCategorical:
    @pytest.fixture
    def joint(self) -> JointCategorical:
        table = np.array([[0.2, 0.2], [0.1, 0.5]])
        return JointCategorical(
            table, ["g1", "g2"], ["x1", "x2"], attribute_names=("group",)
        )

    def test_group_probabilities(self, joint):
        assert joint.group_probabilities().tolist() == [0.4, 0.6]

    def test_conditional(self, joint):
        assert joint.conditional_feature_probabilities(("g1",)).tolist() == [
            0.5,
            0.5,
        ]

    def test_sampling_distribution(self, joint, rng):
        draws = joint.sample_features(("g2",), 60_000, rng)
        fraction_x2 = (draws == "x2").mean()
        assert fraction_x2 == pytest.approx(0.5 / 0.6, abs=0.01)

    def test_exact_outcome_probabilities(self, joint):
        conditional = np.array([[1.0, 0.0], [0.0, 1.0]])
        result = joint.exact_outcome_probabilities(conditional)
        assert result[0].tolist() == [0.5, 0.5]
        assert result[1, 1] == pytest.approx(5.0 / 6.0)

    def test_marginalize_groups(self):
        table = np.array([[0.1, 0.1], [0.2, 0.2], [0.15, 0.05], [0.1, 0.1]])
        joint = JointCategorical(
            table,
            [("a", "x"), ("a", "y"), ("b", "x"), ("b", "y")],
            ["f1", "f2"],
            attribute_names=("first", "second"),
        )
        reduced = joint.marginalize_groups([0])
        assert reduced.attribute_names == ("first",)
        assert reduced.group_probabilities().tolist() == pytest.approx([0.6, 0.4])

    def test_validation(self):
        with pytest.raises(ValidationError):
            JointCategorical(np.array([[0.5, 0.6]]), ["g"], ["a", "b"])  # sum > 1
        with pytest.raises(ValidationError):
            JointCategorical(
                np.array([[0.5, 0.5]]), ["g"], ["a", "b"],
                attribute_names=("p", "q"),  # arity mismatch
            )


class TestEmpiricalGroupDistribution:
    def test_groups_and_probabilities(self, hiring_table):
        dist = EmpiricalGroupDistribution(hiring_table, ["gender", "race"])
        assert len(dist.group_labels()) == 4
        assert dist.group_probabilities().tolist() == [0.25] * 4

    def test_feature_columns_default(self, hiring_table):
        dist = EmpiricalGroupDistribution(hiring_table, ["gender"])
        assert dist.feature_columns == ["race", "hired"]

    def test_all_group_features(self, numeric_table):
        dist = EmpiricalGroupDistribution(
            numeric_table, ["group"], feature_columns=["x"]
        )
        features = dist.all_group_features(("b",))
        assert features[:, 0].tolist() == [3.0, 4.0, 5.0]

    def test_bootstrap_stays_within_group(self, numeric_table, rng):
        dist = EmpiricalGroupDistribution(
            numeric_table, ["group"], feature_columns=["x"]
        )
        draws = dist.sample_features(("a",), 500, rng)
        assert set(draws[:, 0].tolist()) <= {1.0, 2.0}

    def test_unknown_group(self, numeric_table, rng):
        dist = EmpiricalGroupDistribution(numeric_table, ["group"])
        with pytest.raises(EmptyGroupError):
            dist.sample_features(("zzz",), 5, rng)


class TestUncertaintySet:
    def test_point(self):
        theta = UncertaintySet.point(GroupGaussianScores([0.0], [1.0]))
        assert len(theta) == 1

    def test_iteration_and_indexing(self):
        members = [
            GroupGaussianScores([0.0], [1.0]),
            GroupGaussianScores([1.0], [1.0]),
        ]
        theta = UncertaintySet(members)
        assert list(theta) == members
        assert theta[1] is members[1]

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            UncertaintySet([])

    def test_mismatched_attributes_rejected(self):
        with pytest.raises(ValidationError):
            UncertaintySet(
                [
                    GroupGaussianScores([0.0], [1.0], attribute_name="a"),
                    GroupGaussianScores([0.0], [1.0], attribute_name="b"),
                ]
            )
