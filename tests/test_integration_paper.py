"""Integration tests: every headline number of the paper in one place.

Figure 2 and Table 1 are exact reproductions (closed form / fixed counts);
Table 2 and the test-split epsilon come from the calibrated synthetic Adult
data. The full Table 3 sweep lives in benchmarks/bench_table3.py (it trains
eight classifiers); here a scaled-down version checks the pipeline wiring
and the headline qualitative effect.
"""

import math

import numpy as np
import pytest

from repro.audit.feature_study import FeatureSelectionStudy
from repro.core.analytic import paper_worked_example
from repro.core.empirical import dataset_edf
from repro.core.estimators import DirichletEstimator
from repro.core.interpretation import RANDOMIZED_RESPONSE_EPSILON
from repro.core.subsets import subset_sweep
from repro.data.kidney import PAPER_TABLE1_EPSILONS, admissions_contingency
from repro.data.synthetic_adult import (
    OUTCOME,
    PAPER_TABLE2,
    PROTECTED,
    SyntheticAdult,
)
from repro.mechanisms.randomized_response import RandomizedResponse


class TestFigure2:
    def test_epsilon(self):
        assert paper_worked_example().epsilon == pytest.approx(2.337, abs=5e-4)


class TestTable1:
    def test_all_reported_epsilons(self):
        sweep = subset_sweep(admissions_contingency())
        assert sweep.full_epsilon == pytest.approx(1.511, abs=5e-4)
        assert sweep.epsilon("gender") == pytest.approx(0.2329, abs=5e-5)
        assert sweep.epsilon("race") == pytest.approx(0.8667, abs=5e-5)
        assert sweep.theorem_bound() == pytest.approx(3.022, abs=1e-3)
        for subset, target in PAPER_TABLE1_EPSILONS.items():
            assert sweep.epsilon(subset) == pytest.approx(target, abs=5e-4)


class TestTable2:
    @pytest.fixture(scope="class")
    def train(self):
        return SyntheticAdult(seed=0, features=False).train()

    def test_every_row(self, train):
        sweep = subset_sweep(train, protected=list(PROTECTED), outcome=OUTCOME)
        for subset, target in PAPER_TABLE2.items():
            assert sweep.epsilon(subset) == pytest.approx(target, abs=0.005)

    def test_ordering_matches_paper(self, train):
        """nationality < race < gender < (g,n) < (r,n) < (r,g) < all."""
        sweep = subset_sweep(train, protected=list(PROTECTED), outcome=OUTCOME)
        ordered = [subset for subset, _ in sweep.sorted_by_epsilon()]
        assert ordered == [
            ("nationality",),
            ("race",),
            ("gender",),
            ("gender", "nationality"),
            ("race", "nationality"),
            ("gender", "race"),
            ("gender", "race", "nationality"),
        ]

    def test_intersection_gap_observation(self, train):
        """'The inequity at the intersection of race and gender is
        substantially higher than that of either attribute alone.'"""
        sweep = subset_sweep(train, protected=list(PROTECTED), outcome=OUTCOME)
        assert sweep.epsilon(["race", "gender"]) > sweep.epsilon("race") + 0.5
        assert sweep.epsilon(["race", "gender"]) > sweep.epsilon("gender") + 0.5


class TestTestSplitEpsilon:
    def test_smoothed_epsilon_2_06(self):
        test = SyntheticAdult(seed=0, features=False).test()
        result = dataset_edf(
            test,
            protected=list(PROTECTED),
            outcome=OUTCOME,
            estimator=DirichletEstimator(1.0),
        )
        assert result.epsilon == pytest.approx(2.06, abs=0.005)


class TestSection33Calibration:
    def test_randomized_response_ln3(self):
        assert RandomizedResponse().epsilon() == pytest.approx(
            RANDOMIZED_RESPONSE_EPSILON
        )
        assert RANDOMIZED_RESPONSE_EPSILON == pytest.approx(math.log(3))


class TestTable3Pipeline:
    """Scaled-down Table 3: subsampled training set, two configurations."""

    @pytest.fixture(scope="class")
    def study(self):
        generator = SyntheticAdult(seed=0, features=True)
        rng = np.random.default_rng(0)
        train = generator.train()
        subsample = train.take(
            rng.choice(train.n_rows, size=6000, replace=False)
        )
        return FeatureSelectionStudy(
            subsample, generator.test(), protected=PROTECTED, outcome=OUTCOME
        )

    def test_error_rate_in_band(self, study):
        row = study.run_configuration(())
        assert 10.0 < row.error_percent < 20.0

    def test_race_feature_raises_epsilon(self, study):
        """The paper's headline Table 3 finding."""
        without = study.run_configuration(())
        with_race = study.run_configuration(("race",))
        assert with_race.epsilon > without.epsilon

    def test_data_epsilon_is_paper_value(self, study):
        assert study.data_epsilon() == pytest.approx(2.06, abs=0.005)
