"""Tests for repro.learn.pipeline and repro.tabular.describe."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.learn.logistic_regression import LogisticRegression
from repro.learn.pipeline import Pipeline
from repro.learn.preprocessing import StandardScaler, TableVectorizer
from repro.tabular.column import Column
from repro.tabular.describe import describe_column, describe_table
from repro.tabular.table import Table


@pytest.fixture
def labelled_table() -> Table:
    rng = np.random.default_rng(0)
    n = 400
    score = rng.normal(size=n)
    city = rng.choice(["x", "y"], size=n).tolist()
    label = np.where(score + (np.asarray(city) == "y") * 0.5 > 0, "p", "n")
    return Table.from_dict(
        {"score": score.tolist(), "city": city, "label": label.tolist()}
    )


class TestPipeline:
    def test_vectorizer_plus_lr(self, labelled_table):
        pipeline = Pipeline(
            [
                ("features", TableVectorizer(exclude=["label"])),
                ("model", LogisticRegression()),
            ]
        )
        y = labelled_table.column("label").to_list()
        pipeline.fit(labelled_table, y)
        assert pipeline.score(labelled_table, y) > 0.8
        probs = pipeline.predict_proba(labelled_table)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert pipeline.classes_ == ("n", "p")

    def test_array_transform_chain(self, rng):
        X = rng.normal(5.0, 2.0, size=(200, 2))
        y = (X[:, 0] > 5.0).astype(int)
        pipeline = Pipeline(
            [("scale", StandardScaler()), ("model", LogisticRegression())]
        )
        pipeline.fit(X, y)
        assert pipeline.score(X, y) > 0.9
        # The transform is applied at prediction time too.
        assert pipeline.transform(X).mean() == pytest.approx(0.0, abs=1e-9)

    def test_fit_params_forwarded(self, labelled_table):
        from repro.learn.fair_logistic import FairLogisticRegression

        pipeline = Pipeline(
            [
                ("features", TableVectorizer(exclude=["label", "city"])),
                ("model", FairLogisticRegression(fairness_weight=0.1)),
            ]
        )
        y = labelled_table.column("label").to_list()
        groups = labelled_table.column("city").to_list()
        pipeline.fit(labelled_table, y, groups=groups)
        assert pipeline.predict(labelled_table).shape == (400,)

    def test_works_as_classifier_mechanism(self, labelled_table):
        from repro.mechanisms.classifier import ClassifierMechanism

        pipeline = Pipeline(
            [
                ("features", TableVectorizer(exclude=["label"])),
                ("model", LogisticRegression()),
            ]
        )
        y = labelled_table.column("label").to_list()
        pipeline.fit(labelled_table, y)
        mechanism = ClassifierMechanism(pipeline)
        probs = mechanism.outcome_probabilities(labelled_table)
        assert probs.shape == (400, 2)

    def test_unfitted_rejected(self, labelled_table):
        pipeline = Pipeline([("model", LogisticRegression())])
        with pytest.raises(NotFittedError):
            pipeline.predict(np.zeros((1, 1)))

    def test_validation(self):
        with pytest.raises(ValidationError):
            Pipeline([])
        with pytest.raises(ValidationError):
            Pipeline([("a", LogisticRegression()), ("a", LogisticRegression())])
        with pytest.raises(ValidationError, match="transform"):
            Pipeline(
                [("notransform", object()), ("model", LogisticRegression())]
            )
        with pytest.raises(ValidationError, match="classifier"):
            Pipeline([("scale", StandardScaler())])

    def test_named_steps(self):
        model = LogisticRegression()
        pipeline = Pipeline([("model", model)])
        assert pipeline.named_steps["model"] is model


class TestDescribe:
    def test_numeric_summary(self):
        column = Column.numeric("x", [1.0, 2.0, 3.0])
        summary = describe_column(column)
        assert summary.numeric_range == (1.0, 2.0, 3.0)
        assert summary.level_counts is None

    def test_categorical_summary_sorted_by_frequency(self):
        column = Column.categorical("c", ["b", "a", "b", "b"])
        summary = describe_column(column)
        assert list(summary.level_counts) == ["b", "a"]
        assert summary.level_counts["b"] == 3

    def test_boolean_summary(self):
        column = Column.boolean("flag", [True, False, True])
        summary = describe_column(column)
        assert summary.level_counts[True] == 2

    def test_describe_table_renders(self, labelled_table):
        text = describe_table(labelled_table)
        assert "400 rows x 3 columns" in text
        assert "score" in text
        assert "categorical" in text

    def test_empty_numeric(self):
        column = Column.numeric("x", [])
        summary = describe_column(column)
        assert summary.count == 0
