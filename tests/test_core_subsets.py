"""Tests for repro.core.subsets (Theorem 3.1/3.2 machinery, Table 2)."""

import math

import pytest

from repro.core.subsets import (
    all_nonempty_subsets,
    subset_sweep,
    theorem_subset_bound,
)
from repro.exceptions import ValidationError
from repro.tabular.crosstab import crosstab
from repro.tabular.table import Table


class TestAllNonemptySubsets:
    def test_counts(self):
        assert len(all_nonempty_subsets(["a", "b", "c"])) == 7

    def test_order_smallest_first(self):
        subsets = all_nonempty_subsets(["a", "b"])
        assert subsets == [("a",), ("b",), ("a", "b")]

    def test_empty_input(self):
        assert all_nonempty_subsets([]) == []


class TestSubsetSweep:
    def test_sweep_covers_all_subsets(self, hiring_table):
        sweep = subset_sweep(
            hiring_table, protected=["gender", "race"], outcome="hired"
        )
        assert set(sweep.results) == {("gender",), ("race",), ("gender", "race")}

    def test_full_epsilon(self, hiring_table):
        sweep = subset_sweep(
            hiring_table, protected=["gender", "race"], outcome="hired"
        )
        assert sweep.full_epsilon == pytest.approx(math.log(3))

    def test_marginal_epsilons(self, hiring_table):
        sweep = subset_sweep(
            hiring_table, protected=["gender", "race"], outcome="hired"
        )
        assert sweep.epsilon("gender") == 0.0
        # Race X: 5/8 hired, Y: 3/8 -> log(5/3) on yes.
        assert sweep.epsilon(["race"]) == pytest.approx(math.log(5.0 / 3.0))

    def test_order_insensitive_lookup(self, hiring_table):
        sweep = subset_sweep(
            hiring_table, protected=["gender", "race"], outcome="hired"
        )
        assert sweep.epsilon(["race", "gender"]) == sweep.full_epsilon

    def test_unknown_attribute_rejected(self, hiring_table):
        sweep = subset_sweep(
            hiring_table, protected=["gender", "race"], outcome="hired"
        )
        with pytest.raises(ValidationError):
            sweep.epsilon(["height"])

    def test_theorem_bound(self, hiring_table):
        sweep = subset_sweep(
            hiring_table, protected=["gender", "race"], outcome="hired"
        )
        assert sweep.theorem_bound() == pytest.approx(2 * math.log(3))
        assert theorem_subset_bound(1.5) == 3.0

    def test_no_theorem_violations(self, hiring_table):
        sweep = subset_sweep(
            hiring_table, protected=["gender", "race"], outcome="hired"
        )
        assert sweep.theorem_violations() == []

    def test_no_monotonicity_violations_for_mle(self, hiring_table):
        sweep = subset_sweep(
            hiring_table, protected=["gender", "race"], outcome="hired"
        )
        assert sweep.monotonicity_violations() == []

    def test_accepts_contingency(self, hiring_table):
        contingency = crosstab(hiring_table, ["gender", "race"], "hired")
        sweep = subset_sweep(contingency)
        assert sweep.full_epsilon == pytest.approx(math.log(3))

    def test_contingency_plus_names_rejected(self, hiring_table):
        contingency = crosstab(hiring_table, ["gender"], "hired")
        with pytest.raises(ValidationError):
            subset_sweep(contingency, protected=["gender"], outcome="hired")

    def test_rows_sorted_by_epsilon(self, hiring_table):
        sweep = subset_sweep(
            hiring_table, protected=["gender", "race"], outcome="hired"
        )
        epsilons = [row[1] for row in sweep.to_rows()]
        assert epsilons == sorted(epsilons)

    def test_to_text(self, hiring_table):
        sweep = subset_sweep(
            hiring_table, protected=["gender", "race"], outcome="hired"
        )
        text = sweep.to_text()
        assert "gender, race" in text
        assert "epsilon" in text.lower()


class TestSimpsonsReversalSafety:
    """A Simpson's reversal cannot push a marginal epsilon past 2x the
    intersectional epsilon (the motivating property of Theorem 3.1)."""

    def test_reversal_table(self):
        # Admissions reverse between genders when aggregating over race.
        table = Table.from_dict(
            {
                "gender": ["A"] * 20 + ["B"] * 20,
                "race": ["1"] * 16 + ["2"] * 4 + ["1"] * 4 + ["2"] * 16,
                "admit": (
                    ["yes"] * 15 + ["no"] * 1      # A,1: 15/16
                    + ["yes"] * 1 + ["no"] * 3     # A,2: 1/4
                    + ["yes"] * 3 + ["no"] * 1     # B,1: 3/4
                    + ["yes"] * 2 + ["no"] * 14    # B,2: 2/16
                ),
            }
        )
        sweep = subset_sweep(table, protected=["gender", "race"], outcome="admit")
        assert sweep.theorem_violations() == []
        assert sweep.epsilon("gender") <= 2 * sweep.full_epsilon
        assert sweep.epsilon("race") <= 2 * sweep.full_epsilon
